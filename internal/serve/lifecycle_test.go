package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"shmd/internal/chaos"
	"shmd/internal/journal"
	"shmd/internal/trace"
)

// fastLifecycle is a test lifecycle config with millisecond backoffs.
func fastLifecycle() LifecycleConfig {
	return LifecycleConfig{
		Enabled:           true,
		RespawnBackoff:    time.Millisecond,
		RespawnMaxBackoff: 20 * time.Millisecond,
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestQuarantineRespawn kills slot 0's voltage plane permanently and
// proves the pool pulls it from rotation and rebuilds it at the next
// generation, without ever violating the exclusivity invariant.
func TestQuarantineRespawn(t *testing.T) {
	p := newTestPool(t, PoolConfig{
		Size:        1,
		ChaosConfig: &chaos.Config{Seed: 9},
		Lifecycle:   fastLifecycle(),
		Logf:        t.Logf,
	})
	defer p.Close()
	windows := testWindows(t, trace.Trojan, 0, 4)

	slot, err := p.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if slot.Gen != 0 {
		t.Fatalf("boot slot gen = %d", slot.Gen)
	}
	env := slot.Det.Regulator().(*chaos.Env)
	if err := env.Trigger(chaos.Rule{Kind: chaos.PermanentMSR}); err != nil {
		t.Fatal(err)
	}
	// Fail-safe still answers on the dead plane.
	if _, err := slot.Sup.DetectProgram(windows); err != nil {
		t.Fatal(err)
	}
	p.Release(slot) // dead plane → quarantine, not park

	if got := p.Quarantines(); got != 1 {
		t.Errorf("quarantines = %d, want 1", got)
	}
	waitFor(t, 5*time.Second, "respawn", func() bool {
		return p.Respawns() >= 1 && p.QuarantinedNow() == 0
	})

	fresh, err := p.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Release(fresh)
	if fresh.Gen != 1 {
		t.Errorf("respawned slot gen = %d, want 1", fresh.Gen)
	}
	if fresh.Lifecycle() != SlotActive {
		t.Errorf("respawned slot lifecycle = %v", fresh.Lifecycle())
	}
	if deadPlane(fresh) {
		t.Error("respawned slot inherited the dead plane")
	}
	if _, err := fresh.Sup.DetectProgram(windows); err != nil {
		t.Errorf("detection on respawned slot: %v", err)
	}
	if got := p.DoubleCheckouts(); got != 0 {
		t.Errorf("double checkouts = %d", got)
	}
}

// TestHealthzRecoversAfterRespawn is the acceptance path: a permanent
// fault degrades /healthz to 503, and the lifecycle heals it back to
// 200 without a process restart.
func TestHealthzRecoversAfterRespawn(t *testing.T) {
	srv := newTestServer(t, Config{
		Pool: PoolConfig{
			Size:        1,
			ChaosConfig: &chaos.Config{Seed: 9},
			Lifecycle:   fastLifecycle(),
		},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	env := srv.Pool().Slots()[0].Det.Regulator().(*chaos.Env)
	if err := env.Trigger(chaos.Rule{Kind: chaos.PermanentMSR}); err != nil {
		t.Fatal(err)
	}
	// This request trips the breaker and, at release, quarantines the
	// slot.
	resp, raw := postDetect(t, ts, detectBody(t, testWindows(t, trace.Trojan, 0, 4)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("detect on dead plane = %d (%s)", resp.StatusCode, raw)
	}

	healthz := func() (int, HealthReport) {
		r, err := ts.Client().Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		var hr HealthReport
		if err := json.NewDecoder(r.Body).Decode(&hr); err != nil {
			t.Fatal(err)
		}
		return r.StatusCode, hr
	}

	waitFor(t, 5*time.Second, "healthz recovery", func() bool {
		code, _ := healthz()
		return code == http.StatusOK
	})
	code, hr := healthz()
	if code != http.StatusOK || hr.Status != "ok" {
		t.Fatalf("healthz after respawn = %d %q", code, hr.Status)
	}
	if hr.Respawns < 1 {
		t.Errorf("healthz respawns = %d, want >= 1", hr.Respawns)
	}
	if hr.Quarantined != 0 {
		t.Errorf("healthz quarantined = %d, want 0", hr.Quarantined)
	}
	if hr.Sessions[0].Generation != 1 {
		t.Errorf("session generation = %d, want 1", hr.Sessions[0].Generation)
	}

	// The healed pool serves protected decisions again.
	resp, raw = postDetect(t, ts, detectBody(t, testWindows(t, trace.Trojan, 0, 4)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("detect after respawn = %d (%s)", resp.StatusCode, raw)
	}
	var dr DetectResponse
	if err := json.Unmarshal(raw, &dr); err != nil {
		t.Fatal(err)
	}
	if dr.Results[0].Unprotected {
		t.Error("respawned slot still serving unprotected decisions")
	}
}

// TestHedgedDispatch forces an immediate hedge on every request and
// proves hedging never breaks the exclusivity invariant.
func TestHedgedDispatch(t *testing.T) {
	srv := newTestServer(t, Config{
		Pool:       PoolConfig{Size: 2},
		HedgeAfter: time.Nanosecond,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := detectBody(t, testWindows(t, trace.Trojan, 0, 4))
	for i := 0; i < 8; i++ {
		resp, raw := postDetect(t, ts, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d = %d (%s)", i, resp.StatusCode, raw)
		}
		var dr DetectResponse
		if err := json.Unmarshal(raw, &dr); err != nil {
			t.Fatal(err)
		}
		if len(dr.Results) != 1 {
			t.Fatalf("request %d: %d results", i, len(dr.Results))
		}
	}
	ts.Close()
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := srv.Pool().DoubleCheckouts(); got != 0 {
		t.Fatalf("double checkouts under hedging = %d", got)
	}
	if srv.Metrics().Hedges() == 0 {
		t.Error("no hedged dispatches recorded despite 1ns hedge budget")
	}
	if srv.Metrics().HedgeWins() > srv.Metrics().Hedges() {
		t.Errorf("hedge wins %d > hedges %d", srv.Metrics().HedgeWins(), srv.Metrics().Hedges())
	}
}

// TestAcquireFailFast proves an already-cancelled context never
// consumes a parked slot and surfaces as a typed AcquireError.
func TestAcquireFailFast(t *testing.T) {
	p := newTestPool(t, PoolConfig{Size: 2})
	defer p.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	slot, err := p.Acquire(ctx)
	if slot != nil {
		t.Fatal("acquired a slot on a cancelled context")
	}
	var ae *AcquireError
	if !errors.As(err, &ae) {
		t.Fatalf("err = %T (%v), want *AcquireError", err, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, does not unwrap to context.Canceled", err)
	}
	if got := len(p.slots); got != 2 {
		t.Errorf("parked slots after fail-fast = %d, want 2", got)
	}
}

// TestDeadline exercises the X-Detect-Deadline-Ms header: rejection of
// garbage values, and a 503 with Retry-After when the deadline expires
// while the request is queued behind a busy pool.
func TestDeadline(t *testing.T) {
	srv := newTestServer(t, Config{Pool: PoolConfig{Size: 1}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()
	body := detectBody(t, testWindows(t, trace.Trojan, 0, 4))

	post := func(deadline string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/detect", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if deadline != "" {
			req.Header.Set(deadlineHeader, deadline)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}

	for _, bad := range []string{"abc", "-5", "0", "1.5"} {
		if resp := post(bad); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("deadline %q = %d, want 400", bad, resp.StatusCode)
		}
	}
	if resp := post("30000"); resp.StatusCode != http.StatusOK {
		t.Errorf("generous deadline = %d, want 200", resp.StatusCode)
	}

	// Occupy the only slot so the next request waits out its deadline
	// in Acquire.
	slot, err := srv.Pool().Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	resp := post("20")
	srv.Pool().Release(slot)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("expired deadline = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 on expired deadline missing Retry-After")
	}
	if srv.Metrics().DeadlineExpirations() == 0 {
		t.Error("deadline expiration not counted")
	}
}

// TestPoolCloseRaces covers the close/checkout interleavings: Close
// with a slot checked out, double Close, and Release after Close must
// not panic, leak, or count a double checkout.
func TestPoolCloseRaces(t *testing.T) {
	p := newTestPool(t, PoolConfig{Size: 2, Lifecycle: fastLifecycle()})
	slot, err := p.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	closed := make(chan error, 2)
	go func() { closed <- p.Close() }()
	go func() { closed <- p.Close() }()
	for i := 0; i < 2; i++ {
		if err := <-closed; err != nil {
			t.Errorf("close %d: %v", i, err)
		}
	}
	p.Release(slot) // after Close: parks without quarantine, no panic
	if _, err := p.Acquire(context.Background()); !errors.Is(err, ErrPoolClosed) {
		t.Errorf("acquire after close = %v, want ErrPoolClosed", err)
	}
	if slot, ok := p.TryAcquire(); ok {
		t.Errorf("TryAcquire after close handed out slot %d", slot.ID)
	}
	if got := p.DoubleCheckouts(); got != 0 {
		t.Errorf("double checkouts = %d", got)
	}
	for _, s := range p.Slots() {
		if !s.Sup.Session().AtNominal() {
			t.Errorf("slot %d not at nominal after close", s.ID)
		}
	}
}

// calibrationCount sums CalibrateToRate invocations across a pool's
// regulators (the journal acceptance criterion's witness).
func calibrationCount(t *testing.T, p *Pool) uint64 {
	t.Helper()
	var total uint64
	for _, slot := range p.Slots() {
		c, ok := slot.Det.Regulator().(interface{ Calibrations() uint64 })
		if !ok {
			t.Fatalf("regulator %T does not count calibrations", slot.Det.Regulator())
		}
		total += c.Calibrations()
	}
	return total
}

// TestJournalSkipsRecalibration proves the crash-safe journal's whole
// point: a journal-backed restart reaches ready without a single
// CalibrateToRate call, while a corrupted journal is rejected, logged,
// and regenerated via a fresh calibration.
func TestJournalSkipsRecalibration(t *testing.T) {
	path := t.TempDir() + "/cal.journal"
	cfg := PoolConfig{Size: 2, ErrorRate: 0.1, Seed: 1, JournalPath: path, Logf: t.Logf}
	windows := testWindows(t, trace.Trojan, 0, 4)

	// Cold boot: at least one slot calibrates from scratch and the
	// journal file appears.
	p1, err := NewPool(testHMD(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := calibrationCount(t, p1); got == 0 {
		t.Error("cold boot ran no calibration")
	}
	if err := p1.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := journal.Load(path); err != nil {
		t.Fatalf("journal after cold boot: %v", err)
	}

	// Warm restart: every slot boots from the journaled depth; zero
	// calibrations anywhere.
	p2, err := NewPool(testHMD(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := calibrationCount(t, p2); got != 0 {
		t.Errorf("journal-backed restart ran %d calibrations, want 0", got)
	}
	slot, err := p2.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	v, err := slot.Sup.DetectProgram(windows)
	if err != nil {
		t.Fatal(err)
	}
	if v.Unprotected {
		t.Error("journal-booted slot served unprotected")
	}
	p2.Release(slot)
	if err := p2.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one CRC trailer byte: the journal must be rejected, the pool
	// must recalibrate, and a valid journal must be regenerated.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	p3, err := NewPool(testHMD(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p3.Close()
	if got := calibrationCount(t, p3); got == 0 {
		t.Error("corrupted journal was trusted: no recalibration")
	}
	if _, err := journal.Load(path); err != nil {
		t.Errorf("journal not regenerated after corruption: %v", err)
	}
}

// TestJournalStaleEntry ages a journal entry out and proves the pool
// recalibrates instead of trusting it.
func TestJournalStaleEntry(t *testing.T) {
	path := t.TempDir() + "/cal.journal"
	cfg := PoolConfig{Size: 1, ErrorRate: 0.1, Seed: 1, JournalPath: path, Logf: t.Logf}
	p1, err := NewPool(testHMD(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := p1.Close(); err != nil {
		t.Fatal(err)
	}

	cfg.JournalMaxAge = time.Nanosecond
	p2, err := NewPool(testHMD(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if got := calibrationCount(t, p2); got == 0 {
		t.Error("stale journal entry was trusted: no recalibration")
	}
}
