package serve

import (
	"errors"
	"time"

	"shmd/internal/core"
)

// LifecycleConfig tunes slot quarantine and respawn. The supervisor
// (core.Supervisor) already rides through transient faults; lifecycle
// management covers what the supervisor cannot fix in place — a dead
// regulator, a wedged voltage plane, a breaker that stays open, a
// canary that can no longer measure the fault rate. Such a slot is
// pulled from rotation (quarantined), force-rolled to nominal, torn
// down, and rebuilt from the base detector with a freshly derived
// fault stream (respawned), under capped exponential backoff.
type LifecycleConfig struct {
	// Enabled turns quarantine/respawn on. Off by default: embedders
	// that inspect slot objects (tests, demos) keep stable slots.
	Enabled bool
	// QuarantineAfter is how many consecutive releases may observe the
	// breaker open before the slot is quarantined (default 3). A dead
	// plane or a wedged voltage rail quarantines immediately.
	QuarantineAfter int
	// CanaryFailBudget is the consecutive-canary-failure streak that
	// quarantines a slot (default 3): the plane can no longer even be
	// measured.
	CanaryFailBudget int
	// RespawnBackoff is the delay before the first rebuild attempt; it
	// doubles per failed attempt up to RespawnMaxBackoff (defaults
	// 50ms and 5s).
	RespawnBackoff    time.Duration
	RespawnMaxBackoff time.Duration
}

// withDefaults fills unset fields.
func (cfg LifecycleConfig) withDefaults() LifecycleConfig {
	if cfg.QuarantineAfter == 0 {
		cfg.QuarantineAfter = 3
	}
	if cfg.CanaryFailBudget == 0 {
		cfg.CanaryFailBudget = 3
	}
	if cfg.RespawnBackoff == 0 {
		cfg.RespawnBackoff = 50 * time.Millisecond
	}
	if cfg.RespawnMaxBackoff == 0 {
		cfg.RespawnMaxBackoff = 5 * time.Second
	}
	return cfg
}

// deadPlane reports whether the slot's voltage plane has failed
// permanently (a chaos.Env whose regulator died). Ideal regulators
// never report dead.
func deadPlane(slot *Slot) bool {
	d, ok := slot.Det.Regulator().(interface{ Dead() bool })
	return ok && d.Dead()
}

// shouldQuarantine evaluates the terminal-degradation policy at
// release time, while the caller still exclusively owns the slot.
func (p *Pool) shouldQuarantine(slot *Slot) bool {
	lc := p.cfg.Lifecycle
	if !lc.Enabled || p.closed.Load() {
		return false
	}
	// A permanently dead plane can never heal in place.
	if deadPlane(slot) {
		p.logf("serve: slot %d gen %d: voltage plane dead, quarantining", slot.ID, slot.Gen)
		return true
	}
	// A wedged plane: the supervisor's fail-safe could not return the
	// rail to nominal. Give it one more direct attempt before giving up
	// on the slot.
	if !slot.Sup.Session().AtNominal() {
		if err := slot.Sup.Session().ForceNominal(); err != nil || !slot.Sup.Session().AtNominal() {
			p.logf("serve: slot %d gen %d: voltage plane wedged off nominal, quarantining", slot.ID, slot.Gen)
			return true
		}
	}
	h := slot.Sup.Health()
	if h.CanaryFailStreak >= uint64(lc.CanaryFailBudget) {
		p.logf("serve: slot %d gen %d: %d consecutive canary failures, quarantining", slot.ID, slot.Gen, h.CanaryFailStreak)
		return true
	}
	if slot.Sup.State() == core.Degraded {
		slot.degradedReleases++
		if slot.degradedReleases >= lc.QuarantineAfter {
			p.logf("serve: slot %d gen %d: breaker open for %d consecutive releases, quarantining", slot.ID, slot.Gen, slot.degradedReleases)
			return true
		}
	} else {
		slot.degradedReleases = 0
	}
	return false
}

// quarantine pulls an exclusively-owned slot out of rotation and
// schedules its respawn. The slot is never parked again (its busy flag
// stays raised), so the exclusivity invariant cannot be violated by a
// late checkout of a dying session.
func (p *Pool) quarantine(slot *Slot) {
	slot.lifecycle.Store(int32(SlotQuarantined))
	p.quarantines.Add(1)
	p.quarantinedNow.Add(1)
	// Force-roll the dying slot to nominal, best effort: a dead
	// regulator rejects the write but verifiably never left nominal.
	_ = slot.Sup.Session().ForceNominal()
	p.respawnWG.Add(1)
	go p.respawn(slot)
}

// respawn tears the quarantined slot down and rebuilds its index from
// the base detector with a freshly derived fault stream, retrying
// under capped exponential backoff until the rebuild succeeds or the
// pool closes. The rebuilt slot re-enters rotation atomically.
func (p *Pool) respawn(old *Slot) {
	defer p.respawnWG.Done()
	old.lifecycle.Store(int32(SlotRespawning))
	lc := p.cfg.Lifecycle
	backoff := lc.RespawnBackoff
	gen := old.Gen + 1
	for attempt := 0; ; attempt++ {
		select {
		case <-time.After(backoff):
		case <-p.stop:
			return
		}
		backoff *= 2
		if backoff > lc.RespawnMaxBackoff {
			backoff = lc.RespawnMaxBackoff
		}
		if p.closed.Load() {
			return
		}
		// Respawns keep the old slot's model version: a hardware death
		// must never silently change which model a slot serves.
		slot, err := p.buildSlot(old.ID, gen, old.Model)
		if err != nil {
			p.logf("serve: slot %d gen %d: respawn attempt %d failed: %v", old.ID, gen, attempt+1, err)
			continue
		}
		p.mu.Lock()
		p.all[old.ID] = slot
		p.mu.Unlock()
		p.respawns.Add(1)
		p.quarantinedNow.Add(-1)
		p.logf("serve: slot %d respawned at gen %d after %d attempt(s)", old.ID, gen, attempt+1)
		if p.closed.Load() {
			// Closed while rebuilding: leave the fresh slot at nominal
			// and unparked; Acquire refuses anyway.
			_ = slot.Sup.Session().ForceNominal()
			return
		}
		p.slots <- slot // capacity Size; the old slot was never re-parked
		return
	}
}

// permanentErr mirrors core's classification of unrecoverable faults:
// any error in the chain advertising Permanent() == true.
func permanentErr(err error) bool {
	var pe interface{ Permanent() bool }
	return errors.As(err, &pe) && pe.Permanent()
}
