package backoff

import (
	"sync"
	"testing"
	"time"
)

func TestSecondsBounds(t *testing.T) {
	j := New(1)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		s := j.Seconds(2, 5)
		if s < 2 || s > 5 {
			t.Fatalf("Seconds(2,5) = %d outside [2,5]", s)
		}
		seen[s] = true
	}
	for want := 2; want <= 5; want++ {
		if !seen[want] {
			t.Errorf("Seconds(2,5) never drew %d in 1000 tries", want)
		}
	}
}

func TestSecondsDegenerate(t *testing.T) {
	j := New(1)
	if got := j.Seconds(3, 3); got != 3 {
		t.Errorf("Seconds(3,3) = %d, want 3", got)
	}
	if got := j.Seconds(5, 2); got != 5 {
		t.Errorf("Seconds(5,2) = %d, want 5", got)
	}
	if got := j.Seconds(0, 0); got != 1 {
		t.Errorf("Seconds(0,0) = %d, want clamp to 1", got)
	}
	if got := j.Seconds(-4, -1); got != 1 {
		t.Errorf("Seconds(-4,-1) = %d, want clamp to 1", got)
	}
}

func TestSecondsReproducible(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if x, y := a.Seconds(1, 10), b.Seconds(1, 10); x != y {
			t.Fatalf("draw %d diverged: %d vs %d under equal seeds", i, x, y)
		}
	}
}

func TestBackoffEnvelope(t *testing.T) {
	j := New(7)
	base, max := 100*time.Millisecond, time.Second
	for attempt := 0; attempt < 8; attempt++ {
		det := base << uint(attempt)
		if det > max || det <= 0 {
			det = max
		}
		for i := 0; i < 200; i++ {
			d := j.Backoff(base, max, attempt)
			if d < det/2 || d >= det {
				t.Fatalf("attempt %d: delay %v outside [%v, %v)", attempt, d, det/2, det)
			}
		}
	}
}

func TestBackoffDegenerate(t *testing.T) {
	j := New(7)
	if d := j.Backoff(0, time.Second, 3); d != 0 {
		t.Errorf("zero base gave %v, want 0", d)
	}
	// Overflowing shift clamps to max rather than going negative.
	if d := j.Backoff(time.Second, 4*time.Second, 62); d < 2*time.Second || d >= 4*time.Second {
		t.Errorf("overflow attempt gave %v, want within [2s, 4s)", d)
	}
	if d := j.Backoff(1, 1, 0); d != 1 {
		t.Errorf("1ns base gave %v, want 1ns passthrough", d)
	}
}

func TestIntn(t *testing.T) {
	j := New(3)
	if got := j.Intn(0); got != 0 {
		t.Errorf("Intn(0) = %d, want 0", got)
	}
	if got := j.Intn(-5); got != 0 {
		t.Errorf("Intn(-5) = %d, want 0", got)
	}
	for i := 0; i < 100; i++ {
		if got := j.Intn(4); got < 0 || got > 3 {
			t.Fatalf("Intn(4) = %d outside [0,4)", got)
		}
	}
}

func TestConcurrentDraws(t *testing.T) {
	j := New(9)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				_ = j.Seconds(1, 5)
				_ = j.Backoff(time.Millisecond, 10*time.Millisecond, i%6)
				_ = j.Intn(7)
			}
		}()
	}
	wg.Wait()
}

// TestRetryAfter pins the shared overload hint every shed path draws
// from: serve's HTTP 429, the wire ERROR(429) retry tail, the
// router's brownout 503, and tenant-QoS rejections all call
// RetryAfter, so this table is the single policy contract.
func TestRetryAfter(t *testing.T) {
	cases := []struct {
		name  string
		seed  int64
		draws int
	}{
		{name: "seed 1", seed: 1, draws: 64},
		{name: "seed 42", seed: 42, draws: 64},
		{name: "seed clockish", seed: 1700000000, draws: 64},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			j := New(tc.seed)
			seen := map[int]bool{}
			for i := 0; i < tc.draws; i++ {
				got := j.RetryAfter()
				if got < RetryAfterMin || got > RetryAfterMax {
					t.Fatalf("draw %d: RetryAfter() = %d outside [%d, %d]",
						i, got, RetryAfterMin, RetryAfterMax)
				}
				seen[got] = true
			}
			// 64 draws over a 3-value window miss a value with
			// probability (2/3)^64 ≈ 6e-12 — the hint must actually
			// jitter, not collapse to a constant.
			if len(seen) != RetryAfterMax-RetryAfterMin+1 {
				t.Fatalf("draws covered %v, want the full window", seen)
			}
			// Same seed, same schedule: the property tests rely on it.
			j2 := New(tc.seed)
			for i := 0; i < tc.draws; i++ {
				j2.RetryAfter()
			}
			if a, b := j.RetryAfter(), j2.RetryAfter(); a != b {
				t.Fatalf("same seed diverged: %d vs %d", a, b)
			}
		})
	}
}
