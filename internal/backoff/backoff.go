// Package backoff provides bounded, seedable randomized delays for
// retry and load-shedding paths.
//
// Fixed retry hints synchronize clients: every 429 carrying
// "Retry-After: 1" tells every shed client to come back at the same
// instant, turning one overload spike into a train of them. Jittering
// the hint inside a bounded window de-correlates the herd. The same
// applies to the router's retry backoff — equal jitter (half the
// deterministic delay plus a uniform draw over the other half) keeps
// the expected delay schedule while spreading the actual instants.
//
// All randomness flows through a Jitter, which is explicitly seeded:
// production callers seed from the clock once at startup, tests pin a
// seed and get a reproducible schedule. A Jitter is safe for
// concurrent use.
package backoff

import (
	"math/rand"
	"sync"
	"time"
)

// Jitter is a bounded random-delay source. The zero value is not
// usable; construct with New.
type Jitter struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// New builds a Jitter from an explicit seed. Equal seeds produce
// equal draw sequences, which is what makes shed/retry schedules
// assertable in tests.
func New(seed int64) *Jitter {
	return &Jitter{rng: rand.New(rand.NewSource(seed))}
}

// Seconds draws a whole-second Retry-After hint uniformly from
// [min, max] inclusive, for 429/503 shed responses. Degenerate bounds
// collapse sanely: max <= min returns min (and at least 1 — a zero
// hint tells the client to hammer immediately).
func (j *Jitter) Seconds(min, max int) int {
	if min < 1 {
		min = 1
	}
	if max <= min {
		return min
	}
	return min + j.intn(max-min+1)
}

// The shared overload-hint window. Every shed path in the system —
// serve's HTTP 429, the wire ERROR(429) frame, the router's brownout
// 503, and tenant-QoS rejections — draws its Retry-After hint from
// this one window via RetryAfter, so all transports advertise the
// same de-correlated backoff policy and a policy change is one edit.
const (
	// RetryAfterMin / RetryAfterMax bound the hint in whole seconds.
	RetryAfterMin = 1
	RetryAfterMax = 3
)

// RetryAfter draws the system-wide overload hint: a whole-second
// Retry-After value uniform on [RetryAfterMin, RetryAfterMax].
func (j *Jitter) RetryAfter() int {
	return j.Seconds(RetryAfterMin, RetryAfterMax)
}

// Backoff returns the equal-jitter delay for the given retry attempt
// (0-based): half the exponential delay base<<attempt (capped at max)
// is deterministic, the other half is drawn uniformly. The expected
// value is 3/4 of the deterministic schedule; the spread keeps
// concurrent retriers from re-colliding.
func (j *Jitter) Backoff(base, max time.Duration, attempt int) time.Duration {
	if base <= 0 {
		return 0
	}
	d := base << uint(attempt)
	if d > max || d <= 0 {
		d = max
	}
	if d <= 1 {
		return d
	}
	half := d / 2
	return half + time.Duration(j.int63n(int64(d-half)))
}

// Intn draws from [0, n) like rand.Intn, under the Jitter's lock and
// seed. n <= 0 returns 0 instead of panicking — callers feed it
// live-derived counts that can legitimately be empty.
func (j *Jitter) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return j.intn(n)
}

func (j *Jitter) intn(n int) int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.rng.Intn(n)
}

func (j *Jitter) int63n(n int64) int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.rng.Int63n(n)
}
