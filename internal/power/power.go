// Package power provides the analytic cost models behind the paper's
// performance evaluation (Section VIII): CPU power as a function of
// supply voltage (Fig 7), per-detection latency for Stochastic-HMD and
// the RHMD constructions (the 7 / 7.7 / 7.8 µs comparison), per-
// detection energy, and the TRNG/PRNG noise-injection overhead
// comparison (the ≈62×/≈112× and ≈4×/≈5.7× factors).
//
// The paper measures these on an i7-5557U with Intel Power Gadget; we
// replace the measurements with standard first-order models whose
// constants are calibrated to the paper's reported operating points
// and documented inline. Shapes (who wins, crossover trends) follow
// from the model structure, not from the calibration.
package power

import (
	"fmt"
	"time"

	"shmd/internal/volt"
)

// CPUModel decomposes the detection core-complex power at nominal
// voltage into a voltage-independent component (uncore fabric, PLL —
// FixedW), switching power (DynamicW, ∝ V²f at fixed f), and leakage
// (LeakageW, super-linear in V, modeled as V^LeakExp).
type CPUModel struct {
	FixedW   float64
	DynamicW float64
	LeakageW float64
	// NominalV is the voltage the components are specified at.
	NominalV float64
	// LeakExp is the leakage voltage exponent (3: the product of the
	// linear V term and the ~quadratic DIBL-driven current growth).
	LeakExp float64
}

// DefaultCPU is calibrated to the paper's platform: ≈5 W core-complex
// power during always-on detection at 1.18 V, split so that the
// measured ~15-20% package saving at the −130 mV operating point and
// the >70% saving over RHMD at 0.68 V both fall out.
func DefaultCPU() CPUModel {
	return CPUModel{
		FixedW:   0.4,
		DynamicW: 3.6,
		LeakageW: 1.0,
		NominalV: volt.NominalVoltage,
		LeakExp:  3,
	}
}

// Validate reports whether the model is physically sensible.
func (m CPUModel) Validate() error {
	if m.FixedW < 0 || m.DynamicW <= 0 || m.LeakageW < 0 {
		return fmt.Errorf("power: non-positive components %+v", m)
	}
	if m.NominalV <= 0 {
		return fmt.Errorf("power: nominal voltage %v", m.NominalV)
	}
	if m.LeakExp < 1 {
		return fmt.Errorf("power: leakage exponent %v < 1", m.LeakExp)
	}
	return nil
}

// PowerAt returns the modeled power at a supply voltage.
func (m CPUModel) PowerAt(supplyV float64) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if supplyV <= 0 || supplyV > m.NominalV {
		return 0, fmt.Errorf("power: supply %v V outside (0, %v]", supplyV, m.NominalV)
	}
	r := supplyV / m.NominalV
	return m.FixedW + m.DynamicW*r*r + m.LeakageW*pow(r, m.LeakExp), nil
}

// NominalPower returns the power at the nominal voltage.
func (m CPUModel) NominalPower() float64 {
	return m.FixedW + m.DynamicW + m.LeakageW
}

// SavingsAt returns the fractional power saving at a supply voltage
// relative to nominal — the "savings over baseline HMD" curve of
// Fig 7.
func (m CPUModel) SavingsAt(supplyV float64) (float64, error) {
	p, err := m.PowerAt(supplyV)
	if err != nil {
		return 0, err
	}
	return 1 - p/m.NominalPower(), nil
}

// pow is a small positive-base power helper (avoids importing math for
// one call site and documents the intent).
func pow(base, exp float64) float64 {
	// Integer exponents cover the default model; fall back to the
	// identity base^exp = e^(exp·ln base) via repeated multiplication
	// for the common cases.
	switch exp {
	case 1:
		return base
	case 2:
		return base * base
	case 3:
		return base * base * base
	case 4:
		return base * base * base * base
	}
	// Rare non-integer exponent: binary-decompose the integer part and
	// approximate the fraction linearly between neighbours — accuracy
	// beyond two decimals is meaningless for a fitted constant.
	lo := int(exp)
	frac := exp - float64(lo)
	p := 1.0
	for i := 0; i < lo; i++ {
		p *= base
	}
	return p * ((1-frac)*1 + frac*base)
}

// LatencyModel converts a detection's MAC count into execution time at
// a fixed frequency. Undervolting does not change the cycle time —
// the paper: "scaling the voltage has no effect on the inference time
// ... since we are only scaling the CPU voltage but not frequency".
type LatencyModel struct {
	// FreqGHz is the core frequency (2.2 GHz in the characterization).
	FreqGHz float64
	// CyclesPerMAC is the average cost of one fixed-point
	// multiply-accumulate in FANN's scalar inner loop.
	CyclesPerMAC float64
	// FixedCycles covers per-inference overhead (feature load,
	// activation lookups, call overhead).
	FixedCycles float64
}

// DefaultLatency is calibrated so the reference detector (≈2.1k MACs)
// takes the paper's 7 µs per detection.
func DefaultLatency() LatencyModel {
	return LatencyModel{FreqGHz: volt.NominalFreqGHz, CyclesPerMAC: 7, FixedCycles: 400}
}

// Validate reports whether the model is usable.
func (l LatencyModel) Validate() error {
	if l.FreqGHz <= 0 || l.CyclesPerMAC <= 0 || l.FixedCycles < 0 {
		return fmt.Errorf("power: invalid latency model %+v", l)
	}
	return nil
}

// Inference returns the modeled time of one detection with the given
// MAC count.
func (l LatencyModel) Inference(macs int) (time.Duration, error) {
	if err := l.Validate(); err != nil {
		return 0, err
	}
	if macs < 0 {
		return 0, fmt.Errorf("power: negative MAC count %d", macs)
	}
	cycles := float64(macs)*l.CyclesPerMAC + l.FixedCycles
	ns := cycles / l.FreqGHz
	return time.Duration(ns * float64(time.Nanosecond)), nil
}
