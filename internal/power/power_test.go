package power

import (
	"math"
	"testing"
	"time"

	"shmd/internal/volt"
)

// referenceMACs is the MAC count of the reference 64-32-1 detector
// including bias multiplies.
const referenceMACs = 65*32 + 33

func TestCPUModelValidation(t *testing.T) {
	if err := DefaultCPU().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultCPU()
	bad.DynamicW = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero dynamic power must be invalid")
	}
	bad = DefaultCPU()
	bad.NominalV = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero nominal voltage must be invalid")
	}
	bad = DefaultCPU()
	bad.LeakExp = 0.5
	if err := bad.Validate(); err == nil {
		t.Error("sub-linear leakage must be invalid")
	}
}

func TestPowerAtNominal(t *testing.T) {
	m := DefaultCPU()
	p, err := m.PowerAt(m.NominalV)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-m.NominalPower()) > 1e-12 {
		t.Errorf("PowerAt(nominal) = %v, NominalPower = %v", p, m.NominalPower())
	}
	if _, err := m.PowerAt(0); err == nil {
		t.Error("zero voltage must error")
	}
	if _, err := m.PowerAt(m.NominalV + 0.1); err == nil {
		t.Error("overvolting must error")
	}
}

func TestPowerMonotoneInVoltage(t *testing.T) {
	m := DefaultCPU()
	prev := 0.0
	for v := 0.5; v <= m.NominalV; v += 0.01 {
		p, err := m.PowerAt(v)
		if err != nil {
			t.Fatal(err)
		}
		if p <= prev {
			t.Fatalf("power not increasing at %v V", v)
		}
		prev = p
	}
}

func TestOperatingPointSavings(t *testing.T) {
	// The paper's headline: ~15% power savings at the selected
	// operating point (−130 mV → 1.05 V).
	m := DefaultCPU()
	s, err := m.SavingsAt(volt.SupplyVoltageAt(130))
	if err != nil {
		t.Fatal(err)
	}
	if s < 0.12 || s > 0.25 {
		t.Errorf("savings at -130 mV = %v, want ≈0.15-0.20", s)
	}
}

func TestInferenceLatencyCalibration(t *testing.T) {
	// Section VIII: 7 µs per Stochastic-HMD detection.
	lat := DefaultLatency()
	d, err := lat.Inference(referenceMACs)
	if err != nil {
		t.Fatal(err)
	}
	if d < 6500*time.Nanosecond || d > 7500*time.Nanosecond {
		t.Errorf("inference time = %v, want ≈7 µs", d)
	}
	if _, err := lat.Inference(-1); err == nil {
		t.Error("negative MACs must error")
	}
	bad := DefaultLatency()
	bad.FreqGHz = 0
	if _, err := bad.Inference(10); err == nil {
		t.Error("zero frequency must error")
	}
}

func TestRHMDLatencyOrdering(t *testing.T) {
	// Section VIII: 7 µs vs 7.7 µs (RHMD-2F) vs 7.8 µs (RHMD-2F2P).
	cpu, lat := DefaultCPU(), DefaultLatency()
	st, err := StochasticCost(cpu, lat, referenceMACs, volt.SupplyVoltageAt(130))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RHMDCost(cpu, lat, referenceMACs, 2)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := RHMDCost(cpu, lat, referenceMACs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !(st.Time < r2.Time && r2.Time < r4.Time) {
		t.Errorf("latency ordering violated: %v, %v, %v", st.Time, r2.Time, r4.Time)
	}
	// RHMD-2F carries ≈10% overhead over Stochastic-HMD.
	overhead := float64(r2.Time-st.Time) / float64(st.Time)
	if overhead < 0.05 || overhead > 0.2 {
		t.Errorf("RHMD-2F latency overhead = %v, want ≈0.10", overhead)
	}
	if math.Abs(float64(r2.Time)-7700) > 400 {
		t.Errorf("RHMD-2F time = %v, want ≈7.7 µs", r2.Time)
	}
	if math.Abs(float64(r4.Time)-7800) > 400 {
		t.Errorf("RHMD-2F2P time = %v, want ≈7.8 µs", r4.Time)
	}
	if _, err := RHMDCost(cpu, lat, referenceMACs, 0); err == nil {
		t.Error("zero models must error")
	}
}

func TestUndervoltingDoesNotChangeLatency(t *testing.T) {
	cpu, lat := DefaultCPU(), DefaultLatency()
	deep, err := StochasticCost(cpu, lat, referenceMACs, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	shallow, err := StochasticCost(cpu, lat, referenceMACs, 1.15)
	if err != nil {
		t.Fatal(err)
	}
	if deep.Time != shallow.Time {
		t.Error("voltage scaling must not change inference time")
	}
	if deep.PowerW >= shallow.PowerW {
		t.Error("deeper undervolt must draw less power")
	}
}

func TestTRNGOverheadCalibration(t *testing.T) {
	// Section VIII: TRNG noise injection adds ≈62× time and ≈112×
	// energy over the plain baseline HMD.
	cpu, lat := DefaultCPU(), DefaultLatency()
	base, err := BaselineCost(cpu, lat, referenceMACs)
	if err != nil {
		t.Fatal(err)
	}
	trng, err := TRNGCost(cpu, lat, referenceMACs)
	if err != nil {
		t.Fatal(err)
	}
	tf, ef := Overhead(trng, base)
	if tf < 55 || tf > 70 {
		t.Errorf("TRNG time factor = %v, want ≈62", tf)
	}
	if ef < 95 || ef > 130 {
		t.Errorf("TRNG energy factor = %v, want ≈112", ef)
	}
}

func TestPRNGOverheadCalibration(t *testing.T) {
	// Section VIII: PRNG noise injection adds ≈4× time and ≈5.7×
	// energy.
	cpu, lat := DefaultCPU(), DefaultLatency()
	base, err := BaselineCost(cpu, lat, referenceMACs)
	if err != nil {
		t.Fatal(err)
	}
	prng, err := PRNGCost(cpu, lat, referenceMACs)
	if err != nil {
		t.Fatal(err)
	}
	tf, ef := Overhead(prng, base)
	if tf < 3.2 || tf > 4.8 {
		t.Errorf("PRNG time factor = %v, want ≈4", tf)
	}
	if ef < 4.6 || ef > 7.0 {
		t.Errorf("PRNG energy factor = %v, want ≈5.7", ef)
	}
	// The PRNG is far cheaper than the TRNG — the defense's point of
	// comparison — but both dwarf the free undervolting noise.
	trng, _ := TRNGCost(cpu, lat, referenceMACs)
	if prng.EnergyUJ >= trng.EnergyUJ {
		t.Error("PRNG must cost less than TRNG")
	}
}

func TestFig7Sweep(t *testing.T) {
	cpu, lat := DefaultCPU(), DefaultLatency()
	voltages := []float64{1.18, 1.08, 0.98, 0.88, 0.78, 0.68}
	pts, err := Fig7Sweep(cpu, lat, referenceMACs, voltages)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(voltages) {
		t.Fatalf("points = %d", len(pts))
	}
	// Savings grow monotonically as voltage drops; RHMD savings
	// dominate baseline savings at every point (RHMD costs more).
	for i, pt := range pts {
		if pt.SavingsVsRHMD <= pt.SavingsVsBase {
			t.Errorf("at %v V: RHMD savings %v must exceed baseline savings %v",
				pt.SupplyV, pt.SavingsVsRHMD, pt.SavingsVsBase)
		}
		if i > 0 && pt.SavingsVsBase <= pts[i-1].SavingsVsBase {
			t.Errorf("savings not monotone at %v V", pt.SupplyV)
		}
	}
	// At nominal voltage there is no saving vs the baseline.
	if math.Abs(pts[0].SavingsVsBase) > 1e-9 {
		t.Errorf("savings at nominal = %v", pts[0].SavingsVsBase)
	}
	// Paper: over 75% saving vs RHMD under 40% voltage scaling
	// (0.68 V); the model lands in that band.
	last := pts[len(pts)-1]
	if last.SavingsVsRHMD < 0.65 {
		t.Errorf("savings vs RHMD at 0.68 V = %v, want > 0.65", last.SavingsVsRHMD)
	}
}

func TestSavingsAndOverheadHelpers(t *testing.T) {
	a := Report{Time: time.Microsecond, EnergyUJ: 10}
	b := Report{Time: 2 * time.Microsecond, EnergyUJ: 40}
	if got := SavingsOver(a, b); got != 0.75 {
		t.Errorf("SavingsOver = %v", got)
	}
	tf, ef := Overhead(b, a)
	if tf != 2 || ef != 4 {
		t.Errorf("Overhead = %v, %v", tf, ef)
	}
	if SavingsOver(a, Report{}) != 0 {
		t.Error("zero denominator must give 0")
	}
	tf, ef = Overhead(a, Report{})
	if tf != 0 || ef != 0 {
		t.Error("zero denominator overhead must be 0")
	}
}
