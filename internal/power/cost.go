package power

import (
	"fmt"
	"time"
)

// Report is the modeled cost of one detection (a single inference over
// one observation window's features).
type Report struct {
	// Time is the inference latency.
	Time time.Duration
	// PowerW is the average power drawn while inferring.
	PowerW float64
	// EnergyUJ is the per-detection energy in microjoules.
	EnergyUJ float64
}

// newReport assembles a report from time and power.
func newReport(t time.Duration, powerW float64) Report {
	return Report{
		Time:     t,
		PowerW:   powerW,
		EnergyUJ: powerW * t.Seconds() * 1e6,
	}
}

// SavingsOver returns the fractional energy saving of a relative to b.
func SavingsOver(a, b Report) float64 {
	if b.EnergyUJ == 0 {
		return 0
	}
	return 1 - a.EnergyUJ/b.EnergyUJ
}

// Overhead returns the multiplicative factors (time, energy) of a
// relative to b — the Section VIII "≈62× performance and ≈112× energy"
// style comparison.
func Overhead(a, b Report) (timeFactor, energyFactor float64) {
	if b.Time > 0 {
		timeFactor = float64(a.Time) / float64(b.Time)
	}
	if b.EnergyUJ > 0 {
		energyFactor = a.EnergyUJ / b.EnergyUJ
	}
	return timeFactor, energyFactor
}

// BaselineCost models the unprotected HMD: nominal voltage, plain
// inference.
func BaselineCost(cpu CPUModel, lat LatencyModel, macs int) (Report, error) {
	t, err := lat.Inference(macs)
	if err != nil {
		return Report{}, err
	}
	if err := cpu.Validate(); err != nil {
		return Report{}, err
	}
	return newReport(t, cpu.NominalPower()), nil
}

// StochasticCost models Stochastic-HMD at a supply voltage: identical
// latency (voltage scaling leaves the cycle time untouched), lower
// power.
func StochasticCost(cpu CPUModel, lat LatencyModel, macs int, supplyV float64) (Report, error) {
	t, err := lat.Inference(macs)
	if err != nil {
		return Report{}, err
	}
	p, err := cpu.PowerAt(supplyV)
	if err != nil {
		return Report{}, err
	}
	return newReport(t, p), nil
}

// RHMD cost calibration (Section VIII inference-time measurements:
// 7 µs Stochastic-HMD, 7.7 µs RHMD-2F, 7.8 µs RHMD-2F2P):
//
//   - per-detection model switching adds a fixed selection cost plus a
//     per-model L1-pressure term — the paper attributes the overhead to
//     "its additional task of randomly selecting a model from its set
//     of base models; such random model selection also has impact on
//     L1 cache eviction";
//   - the cache churn also keeps the memory subsystem busier,
//     reflected as a small power premium.
const (
	rhmdSwitchBaseCycles     = 1200.0
	rhmdSwitchPerModelCycles = 170.0
	rhmdPowerPremium         = 1.15
)

// RHMDCost models one RHMD detection with the given base-detector
// count at nominal voltage (RHMD cannot undervolt: its defense is
// model switching, and its models assume exact arithmetic).
func RHMDCost(cpu CPUModel, lat LatencyModel, macs, numModels int) (Report, error) {
	if numModels < 1 {
		return Report{}, fmt.Errorf("power: RHMD with %d models", numModels)
	}
	t, err := lat.Inference(macs)
	if err != nil {
		return Report{}, err
	}
	if err := cpu.Validate(); err != nil {
		return Report{}, err
	}
	switchCycles := rhmdSwitchBaseCycles + rhmdSwitchPerModelCycles*float64(numModels)
	t += time.Duration(switchCycles / lat.FreqGHz * float64(time.Nanosecond))
	return newReport(t, cpu.NominalPower()*rhmdPowerPremium), nil
}

// Noise-injection (TRNG/PRNG) calibration. The alternative defense
// queries a random number source after *every* MAC:
//
//   - the TRNG (Intel DRNG) is an off-core block shared by all cores;
//     a query costs ≈440 cycles of stall (≈199 ns at 2.2 GHz), and the
//     uncore round-trip keeps the fabric active, raising average power
//     (factor 1.8 while stalled);
//   - the PRNG (Lewis-Goodman-Miller [25]) runs on-core: a multiply,
//     a modulo and a branch per query (≈21 cycles), with a mild power
//     premium from the fully-busy integer pipes.
//
// With the default latency model these constants land on the paper's
// reported ≈62×/≈112× (TRNG time/energy) and ≈4×/≈5.7× (PRNG) factors.
const (
	trngQueryCycles  = 440.0
	trngPowerFactor  = 1.8
	prngQueryCycles  = 21.0
	prngPowerFactor  = 1.45
	prngExtraQueryNJ = 0.0 // on-core: no off-core energy adder
	trngExtraQueryNJ = 0.0 // stall power factor already covers it
)

// TRNGCost models the noise-injection defense with one TRNG query per
// MAC at nominal voltage.
func TRNGCost(cpu CPUModel, lat LatencyModel, macs int) (Report, error) {
	return rngCost(cpu, lat, macs, trngQueryCycles, trngPowerFactor, trngExtraQueryNJ)
}

// PRNGCost models the same defense with the on-core LGM PRNG.
func PRNGCost(cpu CPUModel, lat LatencyModel, macs int) (Report, error) {
	return rngCost(cpu, lat, macs, prngQueryCycles, prngPowerFactor, prngExtraQueryNJ)
}

func rngCost(cpu CPUModel, lat LatencyModel, macs int, queryCycles, powerFactor, extraNJ float64) (Report, error) {
	t, err := lat.Inference(macs)
	if err != nil {
		return Report{}, err
	}
	if err := cpu.Validate(); err != nil {
		return Report{}, err
	}
	queryTime := time.Duration(float64(macs) * queryCycles / lat.FreqGHz * float64(time.Nanosecond))
	total := t + queryTime
	r := newReport(total, cpu.NominalPower()*powerFactor)
	r.EnergyUJ += float64(macs) * extraNJ / 1000
	return r, nil
}

// Fig7Point is one voltage sample of the Fig 7 sweep.
type Fig7Point struct {
	SupplyV          float64
	SavingsVsBase    float64
	SavingsVsRHMD    float64
	StochasticPowerW float64
}

// Fig7Sweep computes the power-savings curves of Fig 7 over a voltage
// range (1.18 V down to 0.68 V in the paper), comparing per-detection
// energy of the undervolted Stochastic-HMD against the baseline HMD
// and against RHMD-2F.
func Fig7Sweep(cpu CPUModel, lat LatencyModel, macs int, voltages []float64) ([]Fig7Point, error) {
	baseline, err := BaselineCost(cpu, lat, macs)
	if err != nil {
		return nil, err
	}
	rhmd, err := RHMDCost(cpu, lat, macs, 2)
	if err != nil {
		return nil, err
	}
	out := make([]Fig7Point, 0, len(voltages))
	for _, v := range voltages {
		st, err := StochasticCost(cpu, lat, macs, v)
		if err != nil {
			return nil, err
		}
		out = append(out, Fig7Point{
			SupplyV:          v,
			SavingsVsBase:    SavingsOver(st, baseline),
			SavingsVsRHMD:    SavingsOver(st, rhmd),
			StochasticPowerW: st.PowerW,
		})
	}
	return out, nil
}
