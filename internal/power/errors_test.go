package power

import (
	"math"
	"testing"
)

func TestPowHelper(t *testing.T) {
	cases := []struct {
		base, exp, want float64
	}{
		{2, 1, 2},
		{2, 2, 4},
		{2, 3, 8},
		{2, 4, 16},
		{0.5, 3, 0.125},
	}
	for _, tc := range cases {
		if got := pow(tc.base, tc.exp); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("pow(%v,%v) = %v, want %v", tc.base, tc.exp, got, tc.want)
		}
	}
	// Non-integer exponent: linear interpolation between neighbours.
	got := pow(0.8, 2.5)
	lo, hi := pow(0.8, 3), pow(0.8, 2)
	if got < lo || got > hi {
		t.Errorf("pow(0.8, 2.5) = %v outside [%v, %v]", got, lo, hi)
	}
}

func TestNonIntegerLeakExponent(t *testing.T) {
	m := DefaultCPU()
	m.LeakExp = 3.5
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	p, err := m.PowerAt(1.0)
	if err != nil {
		t.Fatal(err)
	}
	m3, m4 := DefaultCPU(), DefaultCPU()
	m3.LeakExp, m4.LeakExp = 3, 4
	p3, _ := m3.PowerAt(1.0)
	p4, _ := m4.PowerAt(1.0)
	if !(p4 <= p && p <= p3) {
		t.Errorf("fractional exponent power %v outside [%v, %v]", p, p4, p3)
	}
}

func TestCostFunctionsRejectInvalidModels(t *testing.T) {
	badCPU := DefaultCPU()
	badCPU.DynamicW = 0
	lat := DefaultLatency()
	if _, err := BaselineCost(badCPU, lat, 100); err == nil {
		t.Error("BaselineCost must reject an invalid CPU model")
	}
	if _, err := RHMDCost(badCPU, lat, 100, 2); err == nil {
		t.Error("RHMDCost must reject an invalid CPU model")
	}
	if _, err := TRNGCost(badCPU, lat, 100); err == nil {
		t.Error("TRNGCost must reject an invalid CPU model")
	}
	if _, err := PRNGCost(badCPU, lat, 100); err == nil {
		t.Error("PRNGCost must reject an invalid CPU model")
	}

	goodCPU := DefaultCPU()
	badLat := DefaultLatency()
	badLat.FreqGHz = 0
	if _, err := BaselineCost(goodCPU, badLat, 100); err == nil {
		t.Error("BaselineCost must reject an invalid latency model")
	}
	if _, err := StochasticCost(goodCPU, badLat, 100, 1.0); err == nil {
		t.Error("StochasticCost must reject an invalid latency model")
	}
	if _, err := RHMDCost(goodCPU, badLat, 100, 2); err == nil {
		t.Error("RHMDCost must reject an invalid latency model")
	}
	if _, err := rngCost(goodCPU, badLat, 100, 10, 1, 0); err == nil {
		t.Error("rngCost must reject an invalid latency model")
	}
}

func TestStochasticCostRejectsBadVoltage(t *testing.T) {
	cpu, lat := DefaultCPU(), DefaultLatency()
	if _, err := StochasticCost(cpu, lat, 100, 0); err == nil {
		t.Error("zero voltage must error")
	}
	if _, err := StochasticCost(cpu, lat, 100, 1.5); err == nil {
		t.Error("overvolting must error")
	}
}

func TestSavingsAtRejectsBadVoltage(t *testing.T) {
	m := DefaultCPU()
	if _, err := m.SavingsAt(0); err == nil {
		t.Error("zero voltage must error")
	}
	if _, err := m.SavingsAt(2); err == nil {
		t.Error("overvolting must error")
	}
}

func TestFig7SweepErrors(t *testing.T) {
	badCPU := DefaultCPU()
	badCPU.NominalV = 0
	if _, err := Fig7Sweep(badCPU, DefaultLatency(), 100, []float64{1.0}); err == nil {
		t.Error("invalid CPU must error")
	}
	if _, err := Fig7Sweep(DefaultCPU(), DefaultLatency(), 100, []float64{5.0}); err == nil {
		t.Error("out-of-range voltage must error")
	}
	pts, err := Fig7Sweep(DefaultCPU(), DefaultLatency(), 100, nil)
	if err != nil || len(pts) != 0 {
		t.Errorf("empty sweep: %v, %v", pts, err)
	}
}
