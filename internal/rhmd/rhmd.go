// Package rhmd reimplements RHMD [Khasawneh et al., MICRO 2017], the
// state-of-the-art randomization defense the paper compares against:
// an ensemble of diverse base HMDs — trained on different feature
// vectors and different detection periods — from which one detector is
// drawn at random for every decision window. Resilience grows with the
// number of distinct decision boundaries, at the cost of storing and
// hot-switching multiple models.
//
// The four constructions of Section VII-C are provided: RHMD-2F,
// RHMD-3F (two/three feature vectors), and RHMD-2F2P, RHMD-3F2P (the
// same crossed with two detection periods).
package rhmd

import (
	"fmt"
	"math/rand"

	"shmd/internal/dataset"
	"shmd/internal/features"
	"shmd/internal/hmd"
	"shmd/internal/rng"
	"shmd/internal/stats"
	"shmd/internal/trace"
)

// Construction names an RHMD variant.
type Construction int

// The evaluated constructions.
const (
	R2F Construction = iota
	R3F
	R2F2P
	R3F2P
)

// String implements fmt.Stringer.
func (c Construction) String() string {
	switch c {
	case R2F:
		return "RHMD-2F"
	case R3F:
		return "RHMD-3F"
	case R2F2P:
		return "RHMD-2F2P"
	case R3F2P:
		return "RHMD-3F2P"
	default:
		return fmt.Sprintf("RHMD(%d)", int(c))
	}
}

// Constructions lists all four variants in evaluation order.
func Constructions() []Construction {
	return []Construction{R2F, R3F, R2F2P, R3F2P}
}

// components returns the (feature set, period) pairs of a construction.
func (c Construction) components() ([]features.Set, []int, error) {
	switch c {
	case R2F:
		return []features.Set{features.SetInstrFreq, features.SetMemory},
			[]int{features.Period1}, nil
	case R3F:
		return []features.Set{features.SetInstrFreq, features.SetMemory, features.SetArchEvents},
			[]int{features.Period1}, nil
	case R2F2P:
		return []features.Set{features.SetInstrFreq, features.SetMemory},
			[]int{features.Period1, features.Period2}, nil
	case R3F2P:
		return []features.Set{features.SetInstrFreq, features.SetMemory, features.SetArchEvents},
			[]int{features.Period1, features.Period2}, nil
	default:
		return nil, nil, fmt.Errorf("rhmd: unknown construction %d", int(c))
	}
}

// FeatureSets returns the feature families the construction randomizes
// over (the attacker reverse-engineers using all of them).
func (c Construction) FeatureSets() ([]features.Set, error) {
	sets, _, err := c.components()
	return sets, err
}

// NumDetectors returns the base-detector count (feature sets ×
// periods), the denominator of the paper's Eq. (1) storage comparison.
func (c Construction) NumDetectors() (int, error) {
	sets, periods, err := c.components()
	if err != nil {
		return 0, err
	}
	return len(sets) * len(periods), nil
}

// RHMD is a trained construction.
type RHMD struct {
	construction Construction
	detectors    []*hmd.HMD
	threshold    float64
	rnd          *rand.Rand
}

// Config configures Train.
type Config struct {
	// Hidden/Epochs are passed through to every base detector.
	Hidden int
	Epochs int
	// Threshold applies to the program-level mean score (default 0.5).
	Threshold float64
	// TrainSeed diversifies base-detector initialization; SwitchSeed
	// drives the run-time random detector selection.
	TrainSeed  uint64
	SwitchSeed uint64
}

// Train fits every base detector of the construction on the training
// programs.
func Train(construction Construction, programs []dataset.TracedProgram, cfg Config) (*RHMD, error) {
	sets, periods, err := construction.components()
	if err != nil {
		return nil, err
	}
	if cfg.Threshold == 0 {
		cfg.Threshold = 0.5
	}
	if cfg.Threshold <= 0 || cfg.Threshold >= 1 {
		return nil, fmt.Errorf("rhmd: threshold %v outside (0,1)", cfg.Threshold)
	}
	r := &RHMD{
		construction: construction,
		threshold:    cfg.Threshold,
		rnd:          rng.NewRand(cfg.SwitchSeed, 0x2A0D, uint64(construction)),
	}
	for _, period := range periods {
		for _, set := range sets {
			det, err := hmd.Train(programs, hmd.Config{
				FeatureSet: set,
				Period:     period,
				Hidden:     cfg.Hidden,
				Epochs:     cfg.Epochs,
				Threshold:  cfg.Threshold,
				Seed:       rng.DeriveSeed(cfg.TrainSeed, uint64(set)+1, uint64(period)+1),
			})
			if err != nil {
				return nil, fmt.Errorf("rhmd: training %v/%v detector: %w", set, period, err)
			}
			r.detectors = append(r.detectors, det)
		}
	}
	return r, nil
}

// Construction returns the variant.
func (r *RHMD) Construction() Construction { return r.construction }

// Detectors returns the base detectors (read-only use).
func (r *RHMD) Detectors() []*hmd.HMD { return r.detectors }

// ScoreWindows implements hmd.Detector: for every decision window a
// base detector is drawn uniformly at random, and its score for that
// window is used. Windows are indexed at the base period; a period-2
// detector scores the aggregate of the pair containing the window.
func (r *RHMD) ScoreWindows(windows []trace.WindowCounts) []float64 {
	// Precompute every detector's window scores lazily: with few
	// windows per program it is cheaper and simpler to score all
	// detectors up front than to score per-draw.
	perDet := make([][]float64, len(r.detectors))
	for i, det := range r.detectors {
		perDet[i] = det.ScoreWindows(windows)
	}
	// One draw per base-period decision window.
	n := 0
	for _, s := range perDet {
		if len(s) > n {
			n = len(s)
		}
	}
	out := make([]float64, 0, n)
	for w := 0; w < n; w++ {
		d := r.rnd.Intn(len(r.detectors))
		scores := perDet[d]
		// Map the base-window index onto this detector's period
		// granularity.
		idx := w * len(scores) / n
		if idx >= len(scores) {
			idx = len(scores) - 1
		}
		out = append(out, scores[idx])
	}
	return out
}

// DetectProgram implements hmd.Detector.
func (r *RHMD) DetectProgram(windows []trace.WindowCounts) hmd.Decision {
	scores := r.ScoreWindows(windows)
	mean := stats.Mean(scores)
	return hmd.Decision{Malware: mean >= r.threshold, Score: mean}
}

var _ hmd.Detector = (*RHMD)(nil)

// StorageBytes returns the summed serialized size of all base models —
// the Section VIII memory-footprint comparison.
func (r *RHMD) StorageBytes() int64 {
	var total int64
	for _, det := range r.detectors {
		total += det.Network().SavedSize()
	}
	return total
}

// StorageSavings evaluates the paper's Eq. (1): the fraction of RHMD
// model storage a single-detector Stochastic-HMD saves.
func StorageSavings(numBaseDetectors int) (float64, error) {
	if numBaseDetectors < 1 {
		return 0, fmt.Errorf("rhmd: detector count %d < 1", numBaseDetectors)
	}
	return float64(numBaseDetectors-1) / float64(numBaseDetectors), nil
}
