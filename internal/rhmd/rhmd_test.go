package rhmd

import (
	"sync"
	"testing"

	"shmd/internal/dataset"
	"shmd/internal/hmd"
)

var (
	fixtureOnce sync.Once
	fixtureData *dataset.Dataset
	fixtureR2F  *RHMD
	fixtureErr  error
)

func fixtures(t *testing.T) (*dataset.Dataset, *RHMD) {
	t.Helper()
	fixtureOnce.Do(func() {
		fixtureData, fixtureErr = dataset.Generate(dataset.QuickConfig(1))
		if fixtureErr != nil {
			return
		}
		split, err := fixtureData.ThreeFold(0)
		if err != nil {
			fixtureErr = err
			return
		}
		fixtureR2F, fixtureErr = Train(R2F, fixtureData.Select(split.VictimTrain), Config{
			Epochs: 40, TrainSeed: 1, SwitchSeed: 2,
		})
	})
	if fixtureErr != nil {
		t.Fatal(fixtureErr)
	}
	return fixtureData, fixtureR2F
}

func TestConstructionMetadata(t *testing.T) {
	cases := []struct {
		c         Construction
		name      string
		detectors int
		sets      int
	}{
		{R2F, "RHMD-2F", 2, 2},
		{R3F, "RHMD-3F", 3, 3},
		{R2F2P, "RHMD-2F2P", 4, 2},
		{R3F2P, "RHMD-3F2P", 6, 3},
	}
	for _, tc := range cases {
		if tc.c.String() != tc.name {
			t.Errorf("name = %q, want %q", tc.c.String(), tc.name)
		}
		n, err := tc.c.NumDetectors()
		if err != nil || n != tc.detectors {
			t.Errorf("%v detectors = %d err=%v, want %d", tc.c, n, err, tc.detectors)
		}
		sets, err := tc.c.FeatureSets()
		if err != nil || len(sets) != tc.sets {
			t.Errorf("%v sets = %d err=%v, want %d", tc.c, len(sets), err, tc.sets)
		}
	}
	if Construction(9).String() != "RHMD(9)" {
		t.Error("unknown construction name")
	}
	if _, err := Construction(9).NumDetectors(); err == nil {
		t.Error("unknown construction must error")
	}
	if len(Constructions()) != 4 {
		t.Error("four constructions expected")
	}
}

func TestTrainValidation(t *testing.T) {
	d, _ := fixtures(t)
	if _, err := Train(Construction(9), d.Programs[:4], Config{}); err == nil {
		t.Error("unknown construction must error")
	}
	if _, err := Train(R2F, d.Programs[:4], Config{Threshold: -1}); err == nil {
		t.Error("bad threshold must error")
	}
	if _, err := Train(R2F, nil, Config{}); err == nil {
		t.Error("empty training set must error")
	}
}

func TestR2FHasTwoDetectors(t *testing.T) {
	_, r := fixtures(t)
	if len(r.Detectors()) != 2 {
		t.Fatalf("detectors = %d", len(r.Detectors()))
	}
	if r.Construction() != R2F {
		t.Error("construction mismatch")
	}
}

func TestRHMDAccuracy(t *testing.T) {
	d, r := fixtures(t)
	split, _ := d.ThreeFold(0)
	c := hmd.Evaluate(r, d.Select(split.Test))
	t.Logf("RHMD-2F confusion: %v", c)
	if c.Accuracy() < 0.8 {
		t.Errorf("RHMD-2F accuracy = %v", c.Accuracy())
	}
}

func TestRHMDDecisionsVary(t *testing.T) {
	// Random switching makes window scores (and borderline decisions)
	// time-variant — RHMD's own moving-target property.
	d, r := fixtures(t)
	varied := false
	for _, p := range d.Programs[:30] {
		first := r.DetectProgram(p.Windows).Score
		for rep := 0; rep < 5; rep++ {
			if r.DetectProgram(p.Windows).Score != first {
				varied = true
				break
			}
		}
		if varied {
			break
		}
	}
	if !varied {
		t.Error("RHMD scores never varied across repeated detections")
	}
}

func TestScoreWindowsLength(t *testing.T) {
	d, r := fixtures(t)
	p := d.Programs[0]
	scores := r.ScoreWindows(p.Windows)
	if len(scores) != len(p.Windows) {
		t.Errorf("scores = %d, want %d (base-period windows)", len(scores), len(p.Windows))
	}
	for _, s := range scores {
		if s < 0 || s > 1 {
			t.Errorf("score %v outside [0,1]", s)
		}
	}
}

func TestPeriodConstructionScores(t *testing.T) {
	d, _ := fixtures(t)
	split, _ := d.ThreeFold(0)
	r, err := Train(R2F2P, d.Select(split.VictimTrain), Config{Epochs: 25, TrainSeed: 3, SwitchSeed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Detectors()) != 4 {
		t.Fatalf("2F2P detectors = %d", len(r.Detectors()))
	}
	p := d.Programs[0]
	scores := r.ScoreWindows(p.Windows)
	if len(scores) != len(p.Windows) {
		t.Errorf("scores = %d", len(scores))
	}
	c := hmd.Evaluate(r, d.Select(split.Test))
	if c.Accuracy() < 0.75 {
		t.Errorf("2F2P accuracy = %v", c.Accuracy())
	}
}

func TestStorage(t *testing.T) {
	_, r := fixtures(t)
	perModel := r.Detectors()[0].Network().SavedSize()
	if r.StorageBytes() <= perModel {
		t.Errorf("RHMD storage %d must exceed one model %d", r.StorageBytes(), perModel)
	}
	s, err := StorageSavings(2)
	if err != nil || s != 0.5 {
		t.Errorf("StorageSavings(2) = %v err=%v, want 0.5 (the paper's example)", s, err)
	}
	s, _ = StorageSavings(6)
	if s <= 0.8 || s >= 0.84 {
		t.Errorf("StorageSavings(6) = %v, want 5/6", s)
	}
	if _, err := StorageSavings(0); err == nil {
		t.Error("zero detectors must error")
	}
}
