package faults

import (
	"fmt"
	"math"
	"math/rand"

	"shmd/internal/fxp"
)

// Counters accumulates fault-injection statistics. The Fig 1
// regeneration reads PerBit; the characterization tool reads Faults and
// Muls to report the effective multiply fault rate.
type Counters struct {
	Muls   uint64
	Faults uint64
	PerBit [ProductBits]uint64
}

// Rate returns the observed per-multiplication fault rate.
func (c Counters) Rate() float64 {
	if c.Muls == 0 {
		return 0
	}
	return float64(c.Faults) / float64(c.Muls)
}

// BitRates returns the observed per-bit fault rate (faults at each bit
// divided by total multiplications), the quantity Fig 1 plots.
func (c Counters) BitRates() [ProductBits]float64 {
	var out [ProductBits]float64
	if c.Muls == 0 {
		return out
	}
	for bit, n := range c.PerBit {
		out[bit] = float64(n) / float64(c.Muls)
	}
	return out
}

// Injector is the undervolted multiplier: an fxp.Unit whose products
// suffer stochastic single-bit timing-violation flips at a configured
// error rate, with locations drawn from a Distribution.
//
// Fault sites are sampled by geometric skip-ahead: instead of one
// Bernoulli(rate) draw per multiplication, the injector draws the gap
// to the *next* faulty multiplication from Geometric(rate) and runs
// exactly until that site. Because a sequence of i.i.d. Bernoulli(p)
// trials has i.i.d. Geometric(p) gaps between successes, the per-mul
// fault process is distributionally identical to the per-mul draw
// (DESIGN.md §9 gives the argument; BernoulliInjector keeps the
// per-mul reference implementation, and a statistical test holds the
// two to the same observed rate and per-bit distribution) while the
// RNG cost drops from O(muls) to O(faults). The injector also
// implements fxp.BulkUnit, running the fused exact kernel between
// fault sites, so a whole MAC row at the paper's operating points
// costs barely more than exact inference.
//
// An Injector is not safe for concurrent use; give each goroutine its
// own (they are cheap, and independent streams keep runs reproducible).
type Injector struct {
	rate  float64
	dist  *Distribution
	rnd   *rand.Rand
	// src, when non-nil, is the Source64 behind rnd (same state, two
	// views). The fused per-fault draw reads it directly to skip the
	// rand.Rand call wrapper; batch-injector lanes set it. Draw values
	// are identical either way — rand.Rand.Uint64 on a Source64
	// delegates to the source.
	src   rand.Source64
	stats Counters
	// gap is the number of fault-free multiplications remaining before
	// the next fault site. Negative means "not drawn yet": the gap is
	// drawn lazily so construction consumes no randomness, and SetRate
	// invalidates it so a pending gap never outlives the rate it was
	// drawn for.
	gap int64
	// invLog1mRate caches 1/ln(1-rate), the constant factor of the
	// geometric inversion (0 when rate is 0 or 1 and no draw happens).
	invLog1mRate float64
	// gapTable is the O(1) geometric sampler for the current rate, nil
	// when the rate is too small to tabulate (or 0/1, where no draw is
	// needed). See newGeomTable.
	gapTable *geomTable
	// rec, when non-nil, receives every gap and bit draw (see
	// Recordable in record.go). Recording is observational only: the
	// draw order and count are identical with and without it.
	rec *DrawLog
}

// Geometric gap-table parameters: 512 alias rows indexed by 9 random
// bits, leaving 23 bits of acceptance fraction from a 32-bit half of
// one RNG output. Rows 0..510 are exact gaps; row 511 is the tail
// "gap ≥ 511", which adds 511 and resamples (geometric tails are
// geometric). Below gapTableMinRate the tail is hit often enough that
// the log-inversion sampler is used instead — at those rates faults
// are so rare the per-fault log cost is irrelevant anyway.
const (
	gapTableBits    = 9
	gapTableSize    = 1 << gapTableBits
	gapTableTail    = gapTableSize - 1
	gapFracBits     = 32 - gapTableBits
	gapFracMask     = 1<<gapFracBits - 1
	gapTableMinRate = 1.0 / 128
)

// geomTable is a Walker alias table over the (truncated) Geometric(p)
// gap law. Sampling costs one table row per 32 random bits — no log,
// no division, no data-dependent search. Rows hold integer acceptance
// thresholds (u accepts its own row iff the 23-bit fraction is below
// thresh), drawing the exact same outcomes as the float comparison —
// see the derivation on Distribution.buildAlias — from a single
// 8-byte row load.
type geomTable struct {
	rows [gapTableSize]aliasRow32
}

// newGeomTable tabulates Geometric(rate) for rate in
// [gapTableMinRate, 1).
func newGeomTable(rate float64) *geomTable {
	w := make([]float64, gapTableSize)
	q := 1.0
	for k := 0; k < gapTableTail; k++ {
		w[k] = rate * q
		q *= 1 - rate
	}
	w[gapTableTail] = q // P(gap >= gapTableTail)
	t := &geomTable{}
	prob, alias := aliasBuild(w)
	for i := range t.rows {
		t.rows[i] = aliasRow32{
			thresh: uint32(math.Ceil(prob[i] * (1 << gapFracBits))),
			alias:  uint16(alias[i]),
		}
	}
	return t
}

// next samples a gap from 32 pre-drawn random bits, pulling fresh
// draws only on the (rare) tail rows.
func (t *geomTable) next(u uint32, rnd *rand.Rand) int64 {
	i := u >> gapFracBits
	r := t.rows[i]
	k := int64(i)
	if u&gapFracMask >= r.thresh {
		k = int64(r.alias)
	}
	if k < gapTableTail {
		return k
	}
	return t.tail(rnd)
}

// tail finishes a draw that landed on the tail row "gap ≥ 511": the
// geometric tail is itself geometric, so add the truncation point and
// resample until a non-tail row lands.
func (t *geomTable) tail(rnd *rand.Rand) int64 {
	base := int64(gapTableTail)
	for {
		u := uint32(rnd.Uint64() >> 32)
		i := u >> gapFracBits
		r := t.rows[i]
		k := int64(i)
		if u&gapFracMask >= r.thresh {
			k = int64(r.alias)
		}
		if k < gapTableTail {
			return base + k
		}
		base += gapTableTail
	}
}

// NewInjector builds an injector with the given per-multiplication
// error rate in [0, 1], fault-location distribution (nil means the
// default Fig 1 model), and random stream.
func NewInjector(rate float64, dist *Distribution, rnd *rand.Rand) (*Injector, error) {
	if rate < 0 || rate > 1 {
		return nil, fmt.Errorf("faults: error rate %v outside [0,1]", rate)
	}
	if rnd == nil {
		return nil, fmt.Errorf("faults: injector needs a random stream")
	}
	if dist == nil {
		dist = Fig1Distribution()
	}
	// gap -2 marks a never-configured injector so the SetRate below
	// always initializes, even for rate 0 (the zero value of rate).
	in := &Injector{dist: dist, rnd: rnd, gap: -2}
	if err := in.SetRate(rate); err != nil {
		return nil, err
	}
	return in, nil
}

// Rate returns the configured per-multiplication error rate.
func (in *Injector) Rate() float64 { return in.rate }

// SetRate changes the error rate; the voltage regulator calls this when
// the supply voltage (and hence the fault rate) changes. Any pending
// fault gap is discarded — it was drawn from the old rate's geometric
// distribution. Re-setting the identical rate is a no-op: the pending
// gap stays valid (a geometric gap in progress is exactly the state of
// the equivalent Bernoulli stream), and the gap table is not rebuilt.
func (in *Injector) SetRate(rate float64) error {
	if rate < 0 || rate > 1 {
		return fmt.Errorf("faults: error rate %v outside [0,1]", rate)
	}
	if rate == in.rate && in.gap >= -1 {
		return nil
	}
	in.rate = rate
	in.gap = -1
	in.invLog1mRate = 0
	in.gapTable = nil
	if rate > 0 && rate < 1 {
		in.invLog1mRate = 1 / math.Log1p(-rate)
		if rate >= gapTableMinRate {
			in.gapTable = newGeomTable(rate)
		}
	}
	return nil
}

// Stats returns a snapshot of the injection counters.
func (in *Injector) Stats() Counters { return in.stats }

// ResetStats clears the injection counters.
func (in *Injector) ResetStats() { in.stats = Counters{} }

// drawGap samples Geometric(rate): the number of fault-free
// multiplications before the next faulty one. With the gap table
// active this is two table lookups on 32 random bits; otherwise it
// inverts the geometric CDF: K = floor(ln(U)/ln(1-rate)) with U
// uniform on (0, 1) has P(K = k) = (1-rate)^k * rate, exactly the gap
// law of an i.i.d. Bernoulli(rate) fault sequence (the 1/ln(1-rate)
// factor is cached by SetRate).
func (in *Injector) drawGap() int64 {
	if in.rate >= 1 {
		return 0
	}
	if in.gapTable != nil {
		return in.gapTable.next(uint32(in.rnd.Uint64()>>32), in.rnd)
	}
	u := in.rnd.Float64()
	if u == 0 {
		return math.MaxInt64
	}
	k := math.Log(u) * in.invLog1mRate
	if k >= float64(math.MaxInt64) {
		return math.MaxInt64
	}
	return int64(k)
}

// fault applies one single-bit timing-violation fault to p — an XOR of
// a bit sampled from the fault-location distribution, exactly how a
// timing violation manifests (the latch captures a stale value for
// that output line) — and draws the gap to the next fault site. With
// the gap table active, one 64-bit RNG output covers both: the low 32
// bits pick the bit, the high 32 the gap. This fused draw is the whole
// per-fault cost of the skip-ahead sampler.
func (in *Injector) fault(p fxp.Product) fxp.Product {
	return p ^ fxp.Product(1)<<uint(in.drawFault())
}

// drawFault performs the fused per-fault draw — bit sample, next gap,
// recording, statistics — and returns the sampled bit. It is the
// single place fault randomness is consumed, shared by the scalar
// fault application and the batch planner, so both consume the stream
// identically.
func (in *Injector) drawFault() int {
	var bit int
	if in.gapTable != nil {
		var r uint64
		if in.src != nil {
			r = in.src.Uint64()
		} else {
			r = in.rnd.Uint64()
		}
		bit = in.dist.sampleBits32(uint32(r))
		in.gap = in.gapTable.next(uint32(r>>32), in.rnd)
	} else {
		bit = in.dist.Sample(in.rnd)
		in.gap = in.drawGap()
	}
	if in.rec != nil {
		in.rec.Bits = append(in.rec.Bits, uint8(bit))
		in.rec.Gaps = append(in.rec.Gaps, in.gap)
	}
	in.stats.Faults++
	in.stats.PerBit[bit]++
	return bit
}

// Mul multiplies two fixed-point values, faulting when the
// multiplication counter reaches the sampled next fault site.
func (in *Injector) Mul(a, b fxp.Value) fxp.Product {
	p := fxp.Product(int64(a) * int64(b))
	in.stats.Muls++
	if in.rate <= 0 {
		return p
	}
	if in.gap < 0 {
		in.gap = in.drawGap()
		if in.rec != nil {
			in.rec.Gaps = append(in.rec.Gaps, in.gap)
		}
	}
	if in.gap == 0 {
		return in.fault(p)
	}
	in.gap--
	return p
}

// DotRow implements fxp.BulkUnit: the fused exact kernel runs between
// sampled fault sites, and only the sampled sites pay for a fault
// draw. The RNG stream is consumed through the same helpers in the
// same order as the scalar Mul path, so scalar and bulk execution of
// the same multiplication sequence produce bit-identical products.
func (in *Injector) DotRow(f fxp.Format, w, x []fxp.Value) fxp.Value {
	n := len(w)
	in.stats.Muls += uint64(n)
	if in.rate <= 0 {
		return f.ScaleProduct(fxp.AccumExact(0, w, x))
	}
	x = x[:n] // one bounds check for the whole row
	a := int64(0)
	i := 0
	for i < n {
		if in.gap < 0 {
			in.gap = in.drawGap()
			if in.rec != nil {
				in.rec.Gaps = append(in.rec.Gaps, in.gap)
			}
		}
		if in.gap >= int64(n-i) {
			// No fault lands in the rest of the row. The MAC loop is
			// the AccumExact kernel inlined: at the paper's operating
			// rates segments average only a handful of elements, so the
			// per-segment call and slice-header cost would rival the
			// arithmetic.
			in.gap -= int64(n - i)
			for ; i < n; i++ {
				p := int64(w[i]) * int64(x[i])
				s := a + p
				if (a^s)&(p^s) < 0 {
					if a > 0 {
						a = math.MaxInt64
					} else {
						a = math.MinInt64
					}
					continue
				}
				a = s
			}
			break
		}
		site := i + int(in.gap)
		for ; i < site; i++ {
			p := int64(w[i]) * int64(x[i])
			s := a + p
			if (a^s)&(p^s) < 0 {
				if a > 0 {
					a = math.MaxInt64
				} else {
					a = math.MinInt64
				}
				continue
			}
			a = s
		}
		fp := in.fault(fxp.Product(int64(w[site]) * int64(x[site])))
		a = int64(fxp.SatAdd(fxp.Product(a), fp))
		i = site + 1
	}
	return f.ScaleProduct(fxp.Product(a))
}

var _ fxp.Unit = (*Injector)(nil)
var _ fxp.BulkUnit = (*Injector)(nil)

// BernoulliInjector is the scalar reference implementation of the
// undervolted multiplier: one Bernoulli(rate) draw per multiplication,
// the direct transcription of the paper's fault model. The production
// Injector replaces it with geometric skip-ahead sampling; this type
// remains as the ground truth the statistical-equivalence test and the
// A/B benchmarks compare against. It intentionally does not implement
// fxp.BulkUnit, so it always exercises the scalar Dot path.
type BernoulliInjector struct {
	rate  float64
	dist  *Distribution
	rnd   *rand.Rand
	stats Counters
}

// NewBernoulliInjector builds the per-mul reference injector with the
// same parameters as NewInjector.
func NewBernoulliInjector(rate float64, dist *Distribution, rnd *rand.Rand) (*BernoulliInjector, error) {
	if rate < 0 || rate > 1 {
		return nil, fmt.Errorf("faults: error rate %v outside [0,1]", rate)
	}
	if rnd == nil {
		return nil, fmt.Errorf("faults: injector needs a random stream")
	}
	if dist == nil {
		dist = Fig1Distribution()
	}
	return &BernoulliInjector{rate: rate, dist: dist, rnd: rnd}, nil
}

// Rate returns the configured per-multiplication error rate.
func (in *BernoulliInjector) Rate() float64 { return in.rate }

// SetRate changes the error rate.
func (in *BernoulliInjector) SetRate(rate float64) error {
	if rate < 0 || rate > 1 {
		return fmt.Errorf("faults: error rate %v outside [0,1]", rate)
	}
	in.rate = rate
	return nil
}

// Stats returns a snapshot of the injection counters.
func (in *BernoulliInjector) Stats() Counters { return in.stats }

// ResetStats clears the injection counters.
func (in *BernoulliInjector) ResetStats() { in.stats = Counters{} }

// Mul multiplies two fixed-point values, then — with probability equal
// to the error rate — flips one product bit sampled from the
// fault-location distribution. The bit is drawn with the original
// CDF binary search, so this type is the pre-skip-ahead implementation
// preserved end to end.
func (in *BernoulliInjector) Mul(a, b fxp.Value) fxp.Product {
	p := fxp.Product(int64(a) * int64(b))
	in.stats.Muls++
	if in.rate > 0 && in.rnd.Float64() < in.rate {
		bit := in.dist.sampleCDF(in.rnd)
		p ^= fxp.Product(1) << uint(bit)
		in.stats.Faults++
		in.stats.PerBit[bit]++
	}
	return p
}

var _ fxp.Unit = (*BernoulliInjector)(nil)

// TruncatedUnit is a *deterministic* approximate multiplier that drops
// the low DropBits of each operand before multiplying — the classic
// circuit-level approximation the paper contrasts with undervolting in
// Section III rationale (i): "other circuit level approximation
// techniques ... their behavior is deterministic". It exists for the
// ablation bench showing that deterministic approximation yields no
// moving-target defense even at a comparable accuracy cost.
type TruncatedUnit struct {
	DropBits uint
}

// Mul multiplies the truncated operands.
func (t TruncatedUnit) Mul(a, b fxp.Value) fxp.Product {
	mask := ^fxp.Value(0) << t.DropBits
	return fxp.Product(int64(a&mask) * int64(b&mask))
}

var _ fxp.Unit = TruncatedUnit{}
