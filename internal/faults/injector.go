package faults

import (
	"fmt"
	"math/rand"

	"shmd/internal/fxp"
)

// Counters accumulates fault-injection statistics. The Fig 1
// regeneration reads PerBit; the characterization tool reads Faults and
// Muls to report the effective multiply fault rate.
type Counters struct {
	Muls   uint64
	Faults uint64
	PerBit [ProductBits]uint64
}

// Rate returns the observed per-multiplication fault rate.
func (c Counters) Rate() float64 {
	if c.Muls == 0 {
		return 0
	}
	return float64(c.Faults) / float64(c.Muls)
}

// BitRates returns the observed per-bit fault rate (faults at each bit
// divided by total multiplications), the quantity Fig 1 plots.
func (c Counters) BitRates() [ProductBits]float64 {
	var out [ProductBits]float64
	if c.Muls == 0 {
		return out
	}
	for bit, n := range c.PerBit {
		out[bit] = float64(n) / float64(c.Muls)
	}
	return out
}

// Injector is the undervolted multiplier: an fxp.Unit whose products
// suffer stochastic single-bit timing-violation flips at a configured
// error rate, with locations drawn from a Distribution.
//
// An Injector is not safe for concurrent use; give each goroutine its
// own (they are cheap, and independent streams keep runs reproducible).
type Injector struct {
	rate  float64
	dist  *Distribution
	rnd   *rand.Rand
	stats Counters
}

// NewInjector builds an injector with the given per-multiplication
// error rate in [0, 1], fault-location distribution (nil means the
// default Fig 1 model), and random stream.
func NewInjector(rate float64, dist *Distribution, rnd *rand.Rand) (*Injector, error) {
	if rate < 0 || rate > 1 {
		return nil, fmt.Errorf("faults: error rate %v outside [0,1]", rate)
	}
	if rnd == nil {
		return nil, fmt.Errorf("faults: injector needs a random stream")
	}
	if dist == nil {
		dist = Fig1Distribution()
	}
	return &Injector{rate: rate, dist: dist, rnd: rnd}, nil
}

// Rate returns the configured per-multiplication error rate.
func (in *Injector) Rate() float64 { return in.rate }

// SetRate changes the error rate; the voltage regulator calls this when
// the supply voltage (and hence the fault rate) changes.
func (in *Injector) SetRate(rate float64) error {
	if rate < 0 || rate > 1 {
		return fmt.Errorf("faults: error rate %v outside [0,1]", rate)
	}
	in.rate = rate
	return nil
}

// Stats returns a snapshot of the injection counters.
func (in *Injector) Stats() Counters { return in.stats }

// ResetStats clears the injection counters.
func (in *Injector) ResetStats() { in.stats = Counters{} }

// Mul multiplies two fixed-point values, then — with probability equal
// to the error rate — flips one product bit sampled from the
// fault-location distribution. The flip is an XOR of the chosen bit,
// exactly how a timing violation manifests: the latch captures a stale
// value for that output line.
func (in *Injector) Mul(a, b fxp.Value) fxp.Product {
	p := fxp.Product(int64(a) * int64(b))
	in.stats.Muls++
	if in.rate > 0 && in.rnd.Float64() < in.rate {
		bit := in.dist.Sample(in.rnd)
		p ^= fxp.Product(1) << uint(bit)
		in.stats.Faults++
		in.stats.PerBit[bit]++
	}
	return p
}

var _ fxp.Unit = (*Injector)(nil)

// TruncatedUnit is a *deterministic* approximate multiplier that drops
// the low DropBits of each operand before multiplying — the classic
// circuit-level approximation the paper contrasts with undervolting in
// Section III rationale (i): "other circuit level approximation
// techniques ... their behavior is deterministic". It exists for the
// ablation bench showing that deterministic approximation yields no
// moving-target defense even at a comparable accuracy cost.
type TruncatedUnit struct {
	DropBits uint
}

// Mul multiplies the truncated operands.
func (t TruncatedUnit) Mul(a, b fxp.Value) fxp.Product {
	mask := ^fxp.Value(0) << t.DropBits
	return fxp.Product(int64(a&mask) * int64(b&mask))
}

var _ fxp.Unit = TruncatedUnit{}
