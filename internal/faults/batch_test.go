package faults

import (
	"math"
	"math/rand"
	"testing"

	"shmd/internal/fxp"
	"shmd/internal/rng"
)

// batchStreams derives one independent lane source per lane from a
// root seed, plus an identically-seeded *rand.Rand set so a scalar
// reference injector can shadow each lane draw-for-draw.
func batchStreams(root uint64, lanes int) (a []rand.Source64, b []*rand.Rand) {
	a = make([]rand.Source64, lanes)
	b = make([]*rand.Rand, lanes)
	for l := 0; l < lanes; l++ {
		a[l] = rng.NewSource64(root, uint64(l))
		b[l] = rng.NewRand(root, uint64(l))
	}
	return a, b
}

// batchSizes are the issue-pinned bit-identity batch sizes, covering
// the blocked-kernel tail (1, 2, 7) and a full batch (64).
var batchSizes = []int{1, 2, 7, 64}

// runLaneRows pushes `rows` rows of length n through every lane of a
// batch injector using a lane-major arena, returning the per-lane
// outputs of every row.
func runLaneRows(t *testing.T, b *BatchInjector, f fxp.Format, w []fxp.Value, rows int, mkX func(row, lane, i int) fxp.Value) [][]fxp.Value {
	t.Helper()
	k := b.NumLanes()
	n := len(w)
	stride := n
	xs := make([]fxp.Value, k*stride)
	maxAbs := make([]int64, k)
	out := make([][]fxp.Value, rows)
	for r := 0; r < rows; r++ {
		for l := 0; l < k; l++ {
			var m int64
			for i := 0; i < n; i++ {
				v := mkX(r, l, i)
				xs[l*stride+i] = v
				if a := int64(v); a > m {
					m = a
				} else if -a > m {
					m = -a
				}
			}
			maxAbs[l] = m
		}
		bt := &fxp.Batch{Xs: xs, Stride: stride, MaxAbs: maxAbs}
		row := make([]fxp.Value, k)
		b.DotRowBatch(f, w, bt, row)
		out[r] = row
	}
	return out
}

// TestBatchInjectorBitIdentity is the core pinning test: every lane of
// a batched row walk must produce bit-identical results to a scalar
// Injector consuming the same stream over the same multiplication
// sequence — at every issue-pinned batch size, across rows whose gaps
// span row boundaries, at several rates (gap-table and log-inversion
// regimes).
func TestBatchInjectorBitIdentity(t *testing.T) {
	f := fxp.DefaultFormat
	const n, rows = 33, 40
	w := make([]fxp.Value, n)
	for i := range w {
		w[i] = fxp.Value(37*i - 500)
	}
	mkX := func(row, lane, i int) fxp.Value {
		return fxp.Value((row+1)*(lane+3)*(i+7)%8191 - 4096)
	}
	for _, rate := range []float64{0, 0.004, 0.1, 0.5} {
		for _, k := range batchSizes {
			streams, shadow := batchStreams(0xB17C*uint64(k)+math.Float64bits(rate), k)
			b, err := NewBatchInjector(rate, nil, streams)
			if err != nil {
				t.Fatal(err)
			}
			got := runLaneRows(t, b, f, w, rows, mkX)
			for l := 0; l < k; l++ {
				ref, err := NewInjector(rate, nil, shadow[l])
				if err != nil {
					t.Fatal(err)
				}
				x := make([]fxp.Value, n)
				for r := 0; r < rows; r++ {
					for i := range x {
						x[i] = mkX(r, l, i)
					}
					want := fxp.Dot(ref, f, w, x)
					if got[r][l] != want {
						t.Fatalf("rate %v k=%d lane %d row %d: batch %d, scalar %d",
							rate, k, l, r, got[r][l], want)
					}
				}
				if bs, ss := b.Lane(l).Stats(), ref.Stats(); bs != ss {
					t.Fatalf("rate %v k=%d lane %d: stats diverge: batch %+v scalar %+v", rate, k, l, bs, ss)
				}
			}
		}
	}
}

// TestBatchInjectorSaturatingLanes repeats the bit-identity check with
// full-range activations that overflow the accumulator, forcing the
// planned scalar fallback path: saturation behavior must match the
// scalar injector exactly.
func TestBatchInjectorSaturatingLanes(t *testing.T) {
	f := fxp.DefaultFormat
	const n, rows, k = 16, 30, 7
	w := make([]fxp.Value, n)
	for i := range w {
		w[i] = fxp.Value(math.MaxInt32 - i)
	}
	mkX := func(row, lane, i int) fxp.Value {
		v := fxp.Value(math.MaxInt32 - 17*(row+lane+i))
		if (row+lane+i)%3 == 0 {
			return -v
		}
		return v
	}
	streams, shadow := batchStreams(0x5A7, k)
	b, err := NewBatchInjector(0.1, nil, streams)
	if err != nil {
		t.Fatal(err)
	}
	got := runLaneRows(t, b, f, w, rows, mkX)
	for l := 0; l < k; l++ {
		ref, err := NewInjector(0.1, nil, shadow[l])
		if err != nil {
			t.Fatal(err)
		}
		x := make([]fxp.Value, n)
		for r := 0; r < rows; r++ {
			for i := range x {
				x[i] = mkX(r, l, i)
			}
			want := fxp.Dot(ref, f, w, x)
			if got[r][l] != want {
				t.Fatalf("lane %d row %d: batch %d, scalar %d", l, r, got[r][l], want)
			}
		}
	}
}

// TestBatchInjectorLaneOrderInvariance is the property test that lane
// order never affects a lane's verdict: running the same lanes through
// packed positions permuted per row (via Batch.Lanes) produces the
// same per-lane outputs as the identity packing.
func TestBatchInjectorLaneOrderInvariance(t *testing.T) {
	f := fxp.DefaultFormat
	const n, rows, k = 33, 25, 7
	w := make([]fxp.Value, n)
	for i := range w {
		w[i] = fxp.Value(91*i - 1400)
	}
	mkX := func(row, lane, i int) fxp.Value {
		return fxp.Value((row+2)*(lane+5)*(3*i+1)%8191 - 4095)
	}

	run := func(permute bool) [][]fxp.Value {
		streams, _ := batchStreams(0x0BDE, k)
		b, err := NewBatchInjector(0.1, nil, streams)
		if err != nil {
			t.Fatal(err)
		}
		perm := rand.New(rand.NewSource(99))
		stride := n
		out := make([][]fxp.Value, rows)
		for r := 0; r < rows; r++ {
			order := make([]int, k)
			for i := range order {
				order[i] = i
			}
			if permute {
				perm.Shuffle(k, func(i, j int) { order[i], order[j] = order[j], order[i] })
			}
			xs := make([]fxp.Value, k*stride)
			maxAbs := make([]int64, k)
			for p, lane := range order {
				var m int64
				for i := 0; i < n; i++ {
					v := mkX(r, lane, i)
					xs[p*stride+i] = v
					if a := int64(v); a > m {
						m = a
					} else if -a > m {
						m = -a
					}
				}
				maxAbs[p] = m
			}
			bt := &fxp.Batch{Xs: xs, Stride: stride, Lanes: order, MaxAbs: maxAbs}
			packed := make([]fxp.Value, k)
			b.DotRowBatch(f, w, bt, packed)
			byLane := make([]fxp.Value, k)
			for p, lane := range order {
				byLane[lane] = packed[p]
			}
			out[r] = byLane
		}
		return out
	}

	straight := run(false)
	shuffled := run(true)
	for r := range straight {
		for l := range straight[r] {
			if straight[r][l] != shuffled[r][l] {
				t.Fatalf("row %d lane %d: identity packing %d, permuted packing %d",
					r, l, straight[r][l], shuffled[r][l])
			}
		}
	}
}

// TestBatchInjectorRaggedDropout checks that lanes dropping out of the
// batch (the ragged-tail case: a shorter program finishes early) leave
// the surviving lanes bit-identical to a run where the batch was full
// the whole time.
func TestBatchInjectorRaggedDropout(t *testing.T) {
	f := fxp.DefaultFormat
	const n, rows, k = 33, 30, 7
	w := make([]fxp.Value, n)
	for i := range w {
		w[i] = fxp.Value(53*i - 800)
	}
	mkX := func(row, lane, i int) fxp.Value {
		return fxp.Value((row+3)*(lane+2)*(i+11)%8191 - 4095)
	}
	// laneRows[l] is how many rows lane l participates in.
	laneRows := []int{30, 30, 22, 19, 12, 5, 1}

	run := func(drop bool) map[int][]fxp.Value {
		streams, _ := batchStreams(0xDD07, k)
		b, err := NewBatchInjector(0.1, nil, streams)
		if err != nil {
			t.Fatal(err)
		}
		stride := n
		outs := make(map[int][]fxp.Value, k)
		for r := 0; r < rows; r++ {
			var active []int
			for l := 0; l < k; l++ {
				if !drop || r < laneRows[l] {
					active = append(active, l)
				}
			}
			xs := make([]fxp.Value, len(active)*stride)
			maxAbs := make([]int64, len(active))
			for p, lane := range active {
				var m int64
				for i := 0; i < n; i++ {
					v := mkX(r, lane, i)
					xs[p*stride+i] = v
					if a := int64(v); a > m {
						m = a
					} else if -a > m {
						m = -a
					}
				}
				maxAbs[p] = m
			}
			bt := &fxp.Batch{Xs: xs, Stride: stride, Lanes: active, MaxAbs: maxAbs}
			packed := make([]fxp.Value, len(active))
			b.DotRowBatch(f, w, bt, packed)
			for p, lane := range active {
				outs[lane] = append(outs[lane], packed[p])
			}
		}
		return outs
	}

	full := run(false)
	ragged := run(true)
	for l := 0; l < k; l++ {
		for r := 0; r < laneRows[l]; r++ {
			if full[l][r] != ragged[l][r] {
				t.Fatalf("lane %d row %d: full-batch %d, ragged %d", l, r, full[l][r], ragged[l][r])
			}
		}
	}
}

// TestBatchInjectorRecording pins per-lane DrawLog capture: a recorded
// batched span must produce exactly the log a scalar injector records
// over the same stream and mul sequence, and recording must not
// perturb the outputs.
func TestBatchInjectorRecording(t *testing.T) {
	f := fxp.DefaultFormat
	const n, rows, k = 33, 20, 4
	w := make([]fxp.Value, n)
	for i := range w {
		w[i] = fxp.Value(29*i - 400)
	}
	mkX := func(row, lane, i int) fxp.Value {
		return fxp.Value((row+1)*(lane+1)*(i+13)%4096 - 2048)
	}
	streams, shadow := batchStreams(0x4EC, k)
	b, err := NewBatchInjector(0.1, nil, streams)
	if err != nil {
		t.Fatal(err)
	}
	logs := make([]DrawLog, k)
	for l := 0; l < k; l++ {
		b.Lane(l).StartRecord(&logs[l])
	}
	runLaneRows(t, b, f, w, rows, mkX)
	for l := 0; l < k; l++ {
		if b.Lane(l).StopRecord() != &logs[l] {
			t.Fatalf("lane %d: StopRecord returned wrong log", l)
		}
	}
	for l := 0; l < k; l++ {
		ref, err := NewInjector(0.1, nil, shadow[l])
		if err != nil {
			t.Fatal(err)
		}
		var want DrawLog
		ref.StartRecord(&want)
		x := make([]fxp.Value, n)
		for r := 0; r < rows; r++ {
			for i := range x {
				x[i] = mkX(r, l, i)
			}
			fxp.Dot(ref, f, w, x)
		}
		ref.StopRecord()
		if logs[l].InitialGap != want.InitialGap {
			t.Fatalf("lane %d: initial gap %d, scalar %d", l, logs[l].InitialGap, want.InitialGap)
		}
		if len(logs[l].Gaps) != len(want.Gaps) || len(logs[l].Bits) != len(want.Bits) {
			t.Fatalf("lane %d: log shape (%d gaps, %d bits), scalar (%d, %d)",
				l, len(logs[l].Gaps), len(logs[l].Bits), len(want.Gaps), len(want.Bits))
		}
		for i := range want.Gaps {
			if logs[l].Gaps[i] != want.Gaps[i] {
				t.Fatalf("lane %d gap %d: %d vs scalar %d", l, i, logs[l].Gaps[i], want.Gaps[i])
			}
		}
		for i := range want.Bits {
			if logs[l].Bits[i] != want.Bits[i] {
				t.Fatalf("lane %d bit %d: %d vs scalar %d", l, i, logs[l].Bits[i], want.Bits[i])
			}
		}
	}
}

// TestBatchInjectorStatisticalEquivalence holds the batched sampler to
// the Bernoulli reference with the same 6-sigma binomial band the
// scalar skip-ahead sampler is held to, aggregated across lanes.
func TestBatchInjectorStatisticalEquivalence(t *testing.T) {
	f := fxp.DefaultFormat
	const n, k = 33, 16
	rows := 4000
	w := make([]fxp.Value, n)
	for i := range w {
		w[i] = fxp.Value(i + 1)
	}
	mkX := func(row, lane, i int) fxp.Value { return fxp.Value(2*i + 1) }
	for _, rate := range []float64{0.01, 0.1, 0.5} {
		streams, _ := batchStreams(0x6516+math.Float64bits(rate), k)
		b, err := NewBatchInjector(rate, nil, streams)
		if err != nil {
			t.Fatal(err)
		}
		runLaneRows(t, b, f, w, rows, mkX)
		c := b.Stats()
		muls := float64(uint64(n) * uint64(rows) * uint64(k))
		if c.Muls != uint64(muls) {
			t.Fatalf("rate %v: counted %d muls, want %d", rate, c.Muls, uint64(muls))
		}
		tol := 6 * math.Sqrt(rate*(1-rate)/muls)
		if got := c.Rate(); math.Abs(got-rate) > tol {
			t.Errorf("rate %v: batched observed rate %v outside ±%v", rate, got, tol)
		}
		// Per-bit mass: every flipped bit must respect the model
		// constraints, and the bump mass must dominate as in Fig 1.
		var inWindow, total uint64
		for bit, cnt := range c.PerBit {
			if cnt == 0 {
				continue
			}
			if bit < MinFaultBit || bit > MaxFaultBit {
				t.Fatalf("rate %v: fault at forbidden bit %d", rate, bit)
			}
			total += cnt
			if bit >= 8 && bit <= 24 {
				inWindow += cnt
			}
		}
		if total != c.Faults {
			t.Fatalf("rate %v: per-bit counts %d != faults %d", rate, total, c.Faults)
		}
		if frac := float64(inWindow) / float64(total); frac < 0.93 {
			t.Errorf("rate %v: low-bump mass %v, want > 0.93", rate, frac)
		}
	}
}

// TestBatchInjectorSetRate mirrors the scalar SetRate semantics:
// same-rate calls keep pending lane gaps, new rates discard them and
// rebuild the shared table once.
func TestBatchInjectorSetRate(t *testing.T) {
	streams, _ := batchStreams(0x5E7, 3)
	b, err := NewBatchInjector(0.1, nil, streams)
	if err != nil {
		t.Fatal(err)
	}
	// Draw gaps on every lane via one planned row.
	w := make([]fxp.Value, 8)
	xs := make([]fxp.Value, 3*8)
	out := make([]fxp.Value, 3)
	b.DotRowBatch(fxp.DefaultFormat, w, &fxp.Batch{Xs: xs, Stride: 8}, out)
	gaps := []int64{b.Lane(0).gap, b.Lane(1).gap, b.Lane(2).gap}
	table := b.table
	if err := b.SetRate(0.1); err != nil {
		t.Fatal(err)
	}
	if b.table != table {
		t.Fatal("same-rate SetRate rebuilt the shared gap table")
	}
	for l, g := range gaps {
		if b.Lane(l).gap != g {
			t.Fatalf("same-rate SetRate discarded lane %d gap", l)
		}
	}
	if err := b.SetRate(0.25); err != nil {
		t.Fatal(err)
	}
	if b.table == table {
		t.Fatal("new-rate SetRate kept the old gap table")
	}
	for l := 0; l < 3; l++ {
		if b.Lane(l).gap != -1 {
			t.Fatalf("new-rate SetRate kept lane %d pending gap %d", l, b.Lane(l).gap)
		}
		if b.Lane(l).gapTable != b.table {
			t.Fatalf("lane %d not sharing the rebuilt table", l)
		}
		if b.Lane(l).rate != 0.25 {
			t.Fatalf("lane %d rate %v", l, b.Lane(l).rate)
		}
	}
	if err := b.SetRate(1.5); err == nil {
		t.Fatal("rate 1.5 accepted")
	}
}

// TestBatchInjectorValidation covers constructor rejection paths.
func TestBatchInjectorValidation(t *testing.T) {
	streams, _ := batchStreams(1, 2)
	if _, err := NewBatchInjector(-0.1, nil, streams); err == nil {
		t.Fatal("negative rate accepted")
	}
	if _, err := NewBatchInjector(0.1, nil, nil); err == nil {
		t.Fatal("no lanes accepted")
	}
	if _, err := NewBatchInjector(0.1, nil, []rand.Source64{nil}); err == nil {
		t.Fatal("nil lane stream accepted")
	}
}
