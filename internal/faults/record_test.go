package faults

import (
	"testing"

	"shmd/internal/fxp"
	"shmd/internal/rng"
)

// recordRates covers the gap-table sampler (>= 1/128), the
// log-inversion sampler (below it), and the degenerate always-fault
// rate.
var recordRates = []float64{0.004, 0.05, 0.1, 0.5, 1.0}

// TestRecordingIsObservational pins the core invariant of the replay
// subsystem: attaching a DrawLog changes nothing about the injector's
// output — products, counters, and RNG stream all match an unrecorded
// twin draw for draw.
func TestRecordingIsObservational(t *testing.T) {
	for _, rate := range recordRates {
		plain, err := NewInjector(rate, nil, rng.NewRand(7, uint64(rate*1000)))
		if err != nil {
			t.Fatal(err)
		}
		rec, err := NewInjector(rate, nil, rng.NewRand(7, uint64(rate*1000)))
		if err != nil {
			t.Fatal(err)
		}
		var log DrawLog
		rec.StartRecord(&log)
		for i := 0; i < 20000; i++ {
			a, b := fxp.Value(i*31-500), fxp.Value(997-i)
			pp, rp := plain.Mul(a, b), rec.Mul(a, b)
			if pp != rp {
				t.Fatalf("rate %v mul %d: recorded product %d != plain %d", rate, i, rp, pp)
			}
		}
		if got := rec.StopRecord(); got != &log {
			t.Fatalf("rate %v: StopRecord returned %p, want %p", rate, got, &log)
		}
		if plain.Stats() != rec.Stats() {
			t.Fatalf("rate %v: counters diverged: %+v vs %+v", rate, rec.Stats(), plain.Stats())
		}
		if uint64(len(log.Bits)) != rec.Stats().Faults {
			t.Fatalf("rate %v: log has %d bits, injector faulted %d times", rate, len(log.Bits), rec.Stats().Faults)
		}
		if len(log.Gaps) != len(log.Bits) && len(log.Gaps) != len(log.Bits)+1 {
			t.Fatalf("rate %v: %d gaps vs %d bits", rate, len(log.Gaps), len(log.Bits))
		}
	}
}

// TestReplayerReproducesScalar replays a recorded scalar Mul sequence
// and checks every product bit-identically, then verifies the log
// drains exactly.
func TestReplayerReproducesScalar(t *testing.T) {
	for _, rate := range recordRates {
		inj, err := NewInjector(rate, nil, rng.NewRand(11, uint64(rate*1000)))
		if err != nil {
			t.Fatal(err)
		}
		const muls = 20000
		var log DrawLog
		inj.StartRecord(&log)
		products := make([]fxp.Product, muls)
		for i := range products {
			products[i] = inj.Mul(fxp.Value(i*17-999), fxp.Value(3*i+1))
		}
		inj.StopRecord()

		rep := NewReplayer(log)
		for i := range products {
			got := rep.Mul(fxp.Value(i*17-999), fxp.Value(3*i+1))
			if got != products[i] {
				t.Fatalf("rate %v mul %d: replayed %d, recorded %d", rate, i, got, products[i])
			}
		}
		if err := rep.Done(); err != nil {
			t.Fatalf("rate %v: %v", rate, err)
		}
		if rep.Faults() != inj.Stats().Faults {
			t.Fatalf("rate %v: replayed %d faults, recorded %d", rate, rep.Faults(), inj.Stats().Faults)
		}
	}
}

// TestReplayerReproducesBulk records through the fused DotRow kernel
// and replays through the scalar Dot path: the replayed row sums must
// match bit-identically (the scalar/bulk bit-identity of the injector
// carries over to the replayer by construction).
func TestReplayerReproducesBulk(t *testing.T) {
	const rows, width = 200, 96
	f := fxp.DefaultFormat
	r := rng.NewRand(13)
	w := make([]fxp.Value, width)
	x := make([]fxp.Value, width)
	for i := range w {
		w[i] = fxp.Value(r.Intn(8192) - 4096)
		x[i] = fxp.Value(r.Intn(8192) - 4096)
	}
	for _, rate := range recordRates {
		inj, err := NewInjector(rate, nil, rng.NewRand(17, uint64(rate*1000)))
		if err != nil {
			t.Fatal(err)
		}
		var log DrawLog
		inj.StartRecord(&log)
		sums := make([]fxp.Value, rows)
		for i := range sums {
			sums[i] = inj.DotRow(f, w, x)
		}
		inj.StopRecord()

		rep := NewReplayer(log)
		for i := range sums {
			got := fxp.Dot(rep, f, w, x)
			if got != sums[i] {
				t.Fatalf("rate %v row %d: replayed %d, recorded %d", rate, i, got, sums[i])
			}
		}
		if err := rep.Done(); err != nil {
			t.Fatalf("rate %v: %v", rate, err)
		}
	}
}

// TestReplayerDetectsMismatch drives a replayer with a different
// multiplication count than the recording; Done must report the
// mismatch rather than silently accepting it.
func TestReplayerDetectsMismatch(t *testing.T) {
	inj, err := NewInjector(0.1, nil, rng.NewRand(19))
	if err != nil {
		t.Fatal(err)
	}
	var log DrawLog
	inj.StartRecord(&log)
	for i := 0; i < 5000; i++ {
		inj.Mul(fxp.Value(i), fxp.Value(i+1))
	}
	inj.StopRecord()
	if len(log.Bits) == 0 {
		t.Fatal("no faults recorded; test needs a faulting run")
	}

	rep := NewReplayer(log)
	for i := 0; i < 10; i++ { // far fewer muls than recorded
		rep.Mul(fxp.Value(i), fxp.Value(i+1))
	}
	if err := rep.Done(); err == nil {
		t.Error("short replay drained the log; want mismatch error")
	}

	// A starved log: gaps promise a fault the bit list cannot honour.
	bad := DrawLog{InitialGap: -1, Gaps: []int64{0, 0}, Bits: []uint8{14}}
	rep = NewReplayer(bad)
	for i := 0; i < 4; i++ {
		rep.Mul(1, 1)
	}
	if err := rep.Done(); err == nil {
		t.Error("starved log replayed clean; want inconsistency error")
	}
}

// TestReplayerZeroFaultLog replays an empty log (a nominal-voltage or
// degraded decision): every product must be exact.
func TestReplayerZeroFaultLog(t *testing.T) {
	rep := NewReplayer(DrawLog{InitialGap: -1})
	for i := 0; i < 100; i++ {
		a, b := fxp.Value(i*7-50), fxp.Value(i+3)
		if got, want := rep.Mul(a, b), (fxp.Exact{}).Mul(a, b); got != want {
			t.Fatalf("mul %d: %d != exact %d", i, got, want)
		}
	}
	if err := rep.Done(); err != nil {
		t.Fatal(err)
	}
}

// TestDrawLogClone checks Clone is a deep copy.
func TestDrawLogClone(t *testing.T) {
	l := DrawLog{InitialGap: 3, Gaps: []int64{1, 2}, Bits: []uint8{14}}
	c := l.Clone()
	c.Gaps[0] = 99
	c.Bits[0] = 62
	if l.Gaps[0] != 1 || l.Bits[0] != 14 {
		t.Fatalf("clone aliases original: %+v", l)
	}
}

// TestRecordingAcrossSetRate checks StartRecord captures a pending gap
// so a recording that begins mid-stream still replays exactly.
func TestRecordingAcrossSetRate(t *testing.T) {
	inj, err := NewInjector(0.2, nil, rng.NewRand(23))
	if err != nil {
		t.Fatal(err)
	}
	// Consume some stream so a gap is pending, then record a span.
	for i := 0; i < 137; i++ {
		inj.Mul(5, 9)
	}
	var log DrawLog
	inj.StartRecord(&log)
	if log.InitialGap < 0 {
		t.Fatalf("pending gap not captured: %d", log.InitialGap)
	}
	products := make([]fxp.Product, 3000)
	for i := range products {
		products[i] = inj.Mul(fxp.Value(i), fxp.Value(i-7))
	}
	inj.StopRecord()

	rep := NewReplayer(log)
	for i := range products {
		if got := rep.Mul(fxp.Value(i), fxp.Value(i-7)); got != products[i] {
			t.Fatalf("mul %d: replayed %d, recorded %d", i, got, products[i])
		}
	}
	if err := rep.Done(); err != nil {
		t.Fatal(err)
	}
}
