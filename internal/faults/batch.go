package faults

import (
	"fmt"
	"math"
	"math/rand"

	"shmd/internal/fxp"
)

// BatchInjector is the batch-lane form of the undervolted multiplier:
// an fxp.BatchUnit that drives N independent fault lanes down one
// shared weight row per call. All lanes share the Walker alias tables
// — the fault-location alias table of the Distribution and the
// geometric gap table of the current rate are built once and read by
// every lane — while each lane keeps its own geometric skip-ahead
// state (pending gap, RNG stream, draw log, counters).
//
// Lane streams are deliberately per-lane rather than one shared batch
// stream: a lane's fault positions are a pure function of its own
// stream and its own global multiplication index, so the verdict of a
// lane never depends on which other lanes happen to share its batch,
// on their order, or on lanes dropping out mid-batch (ragged tails,
// expired deadlines). That is what makes batched campaign results
// batch-size-invariant and lets the bit-identity suite compare each
// lane against a scalar Injector seeded with the same stream.
//
// Per-fault randomness is amortized the same way the scalar skip-ahead
// sampler amortizes it — O(faults), not O(muls) — but batching moves
// the draws out of the MAC inner loop entirely: each row is planned
// first (fault sites and bits materialized lane-by-lane by global mul
// index in exactly the scalar draw order), then the row runs through
// the unchecked batch MAC kernel with faults applied as additive
// corrections, falling back to the scalar saturating segment walk only
// when the magnitude bound cannot prove the corrections exact.
//
// A BatchInjector is not safe for concurrent use.
type BatchInjector struct {
	rate         float64
	dist         *Distribution
	table        *geomTable
	invLog1mRate float64
	lanes        []*Injector

	// per-lane row-plan arenas, reused across rows.
	sites [][]int32
	bits  [][]uint8

	// per-lane presampled span plans (see BeginSpan).
	spans []laneSpan

	// accumulator arena for the blocked whole-row fast path.
	accs []int64

	// maxInfl is the largest inflTotal across the lanes announced by the
	// last BeginSpan: one float compare per row then covers every lane's
	// inflation bound in allSpanFast.
	maxInfl float64
}

// laneSpan is one lane's presampled fault plan over an announced span
// of multiplications, consumed row by row as the span advances.
type laneSpan struct {
	// entries holds one packed spanFault per presampled fault, in draw
	// order: global mul offset within the span in the high 56 bits, the
	// flipped product bit in the low 8 (see packFault). One word per
	// fault keeps the presample loop's stores and the consume loop's
	// loads to a single cache line per eight faults.
	entries []spanFault
	// inflTotal is Σ 2^bit over the whole span: a conservative bound on
	// any row's bit-flip inflation, so in the common case rows prove the
	// no-saturation bound without walking their plan entries first.
	// (Float rounding of the sum is bounded by 2^-52 of the magnitudes
	// involved, absorbed by fxp.NoSatBound's 2x headroom like every
	// other bound term. A looser bound like entries × 2^maxbit is not
	// enough here: one high-bit fault anywhere in the batch would push
	// it past the bound and knock every lane off the blocked fast path.)
	inflTotal float64
	cursor    int   // next unconsumed plan entry
	pos       int64 // multiplications of the span already consumed
	muls      int64 // announced span length
	active    bool
}

// spanFault is one presampled fault packed into a word: site<<8 | bit.
// Spans are bounded far below 2^56 multiplications, and packed faults
// compare in site order directly (site is the high bits), so the
// consume loops test e < end<<8 without unpacking.
type spanFault uint64

func packFault(site int64, bit int) spanFault {
	return spanFault(site)<<8 | spanFault(bit)
}

func (e spanFault) site() int64 { return int64(e >> 8) }
func (e spanFault) bit() uint   { return uint(e & 0xff) }

// NewBatchInjector builds a batch injector with one fault lane per
// random source. Sources must be independent (give each lane its own
// seed derivation, e.g. rng.NewSource64); dist nil means the Fig 1
// model. Each lane wraps its source in a *rand.Rand for the cold draw
// paths while the fused per-fault draw reads the source directly, so a
// lane's stream is identical to a scalar Injector built on
// rand.New(the same source). The lane states are scalar Injectors
// sharing one gap table, so Lane(i) exposes each lane for recording,
// statistics, or scalar-path interoperation.
func NewBatchInjector(rate float64, dist *Distribution, srcs []rand.Source64) (*BatchInjector, error) {
	if rate < 0 || rate > 1 {
		return nil, fmt.Errorf("faults: error rate %v outside [0,1]", rate)
	}
	if len(srcs) == 0 {
		return nil, fmt.Errorf("faults: batch injector needs at least one lane source")
	}
	if dist == nil {
		dist = Fig1Distribution()
	}
	b := &BatchInjector{
		dist:  dist,
		lanes: make([]*Injector, len(srcs)),
		sites: make([][]int32, len(srcs)),
		bits:  make([][]uint8, len(srcs)),
		spans: make([]laneSpan, len(srcs)),
	}
	b.configure(rate)
	for l, src := range srcs {
		if src == nil {
			return nil, fmt.Errorf("faults: lane %d has no random source", l)
		}
		b.lanes[l] = &Injector{
			rate:         rate,
			dist:         dist,
			rnd:          rand.New(src),
			src:          src,
			gap:          -1,
			invLog1mRate: b.invLog1mRate,
			gapTable:     b.table,
		}
	}
	return b, nil
}

// configure rebuilds the shared rate-dependent state (the geometric
// gap table and the cached log constant), mirroring Injector.SetRate.
func (b *BatchInjector) configure(rate float64) {
	b.rate = rate
	b.invLog1mRate = 0
	b.table = nil
	if rate > 0 && rate < 1 {
		b.invLog1mRate = 1 / math.Log1p(-rate)
		if rate >= gapTableMinRate {
			b.table = newGeomTable(rate)
		}
	}
}

// Rate returns the configured per-multiplication error rate.
func (b *BatchInjector) Rate() float64 { return b.rate }

// NumLanes returns the number of fault lanes.
func (b *BatchInjector) NumLanes() int { return len(b.lanes) }

// Lane exposes lane l's scalar injector state. The lane is live — it
// shares the batch injector's tables and stream — so it supports
// everything a scalar Injector does (StartRecord, Stats, even scalar
// Mul/DotRow calls interleaved with batched rows).
func (b *BatchInjector) Lane(l int) *Injector { return b.lanes[l] }

// SetRate changes the error rate on every lane, rebuilding the shared
// gap table once. As with the scalar injector, re-setting the same
// rate is a no-op (pending gaps stay valid); a new rate discards every
// lane's pending gap.
func (b *BatchInjector) SetRate(rate float64) error {
	if rate < 0 || rate > 1 {
		return fmt.Errorf("faults: error rate %v outside [0,1]", rate)
	}
	if rate == b.rate {
		return nil
	}
	b.configure(rate)
	for l, in := range b.lanes {
		in.rate = rate
		in.gap = -1
		in.invLog1mRate = b.invLog1mRate
		in.gapTable = b.table
		// Any presampled span was drawn from the old rate's gap law.
		b.spans[l].active = false
	}
	return nil
}

// Stats returns the injection counters aggregated across lanes.
func (b *BatchInjector) Stats() Counters {
	var c Counters
	for _, in := range b.lanes {
		c.Muls += in.stats.Muls
		c.Faults += in.stats.Faults
		for bit, n := range in.stats.PerBit {
			c.PerBit[bit] += n
		}
	}
	return c
}

// ResetStats clears every lane's counters.
func (b *BatchInjector) ResetStats() {
	for _, in := range b.lanes {
		in.stats = Counters{}
	}
}

// planRow materializes lane l's fault plan for the next n
// multiplications: the sites (relative mul index within the row) and
// bits of every fault landing in the row. The randomness is consumed
// through the same helpers in the same order as the scalar
// Injector.DotRow walk — lazy gap draw first, then one fused draw per
// fault — so a planned row is stream-identical to a scalar row, and
// recording (lane DrawLogs) captures the same log either way.
func (b *BatchInjector) planRow(l, n int) (sites []int32, bits []uint8) {
	in := b.lanes[l]
	in.stats.Muls += uint64(n)
	sites, bits = b.sites[l][:0], b.bits[l][:0]
	if in.rate <= 0 {
		return sites, bits
	}
	pos := 0
	for {
		if in.gap < 0 {
			in.gap = in.drawGap()
			if in.rec != nil {
				in.rec.Gaps = append(in.rec.Gaps, in.gap)
			}
		}
		if in.gap >= int64(n-pos) {
			in.gap -= int64(n - pos)
			break
		}
		site := pos + int(in.gap)
		bit := in.drawFault()
		sites = append(sites, int32(site))
		bits = append(bits, uint8(bit))
		pos = site + 1
		if pos >= n {
			break
		}
	}
	b.sites[l], b.bits[l] = sites, bits
	return sites, bits
}

// BeginSpan implements fxp.SpanPlanner: presample every announced
// lane's fault plan for the next muls multiplications in one tight
// loop per lane. Interleaving per-row draws across many lanes is what
// makes batched planning expensive — each lane's RNG state (math/rand
// keeps ~4.8KB per stream) falls out of L1 between its rows — so the
// whole span is drawn while the state is hot, and DotRowBatch then
// consumes the plan without touching the streams. Draw order and
// values per lane are exactly the scalar order, just earlier in time,
// so recording and bit-identity are unaffected.
func (b *BatchInjector) BeginSpan(lanes []int, muls int) {
	b.maxInfl = 0
	for _, l := range lanes {
		b.planSpan(l, muls)
		if infl := b.spans[l].inflTotal; infl > b.maxInfl {
			b.maxInfl = infl
		}
	}
}

// planSpan fills lane l's span plan: the same draw loop as planRow
// run over the whole span, with sites kept as global mul offsets. The
// whole span's multiplications are accounted up front (Stats observed
// mid-span report the announced span as already executed; totals at
// span boundaries match the scalar path exactly).
func (b *BatchInjector) planSpan(l, muls int) {
	sp := &b.spans[l]
	in := b.lanes[l]
	entries := sp.entries[:0]
	sp.cursor, sp.pos, sp.muls = 0, 0, int64(muls)
	sp.active = muls > 0
	in.stats.Muls += uint64(muls)
	n := int64(muls)
	var pos, site int64
	switch {
	case in.rate <= 0 || muls <= 0:
		// nothing to draw
	case in.gapTable != nil && in.src != nil && in.rec == nil:
		// Hot loop for the tabulated regime: the fused per-fault draw
		// of drawFault hand-inlined (source read, threshold alias
		// rows), with the gap and slice headers in locals. Counters and
		// the inflation sum are reconstructed from the plan afterward,
		// keeping the serial draw chain to the minimum per-fault work.
		// The bit-identity suites hold this loop to drawFault's exact
		// stream consumption.
		src, t := in.src, in.gapTable
		brows := &in.dist.bits32
		gap := in.gap
		if gap < 0 {
			gap = in.drawGap()
		}
		for {
			if gap >= n-pos {
				gap -= n - pos
				break
			}
			site = pos + gap
			r := src.Uint64()
			ub := uint32(r)
			bit := int(ub >> bitFracBits)
			if row := brows[bit]; ub&bitFracMask >= row.thresh {
				bit = int(row.alias)
			}
			ug := uint32(r >> 32)
			gi := ug >> gapFracBits
			row := t.rows[gi]
			gap = int64(gi)
			if ug&gapFracMask >= row.thresh {
				gap = int64(row.alias)
			}
			if gap >= gapTableTail {
				gap = t.tail(in.rnd)
			}
			entries = append(entries, packFault(site, bit))
			pos = site + 1
			if pos >= n {
				break
			}
		}
		in.gap = gap
	default:
		// Generic regime (log-inversion rates, rate 1, recording
		// lanes): same loop through the shared draw helpers, which
		// update the counters per draw.
		for {
			if in.gap < 0 {
				in.gap = in.drawGap()
				if in.rec != nil {
					in.rec.Gaps = append(in.rec.Gaps, in.gap)
				}
			}
			if in.gap >= n-pos {
				in.gap -= n - pos
				break
			}
			site = pos + in.gap
			bit := in.drawFault()
			entries = append(entries, packFault(site, bit))
			pos = site + 1
			if pos >= n {
				break
			}
		}
	}
	sp.entries, sp.inflTotal = entries, b.accountSpan(in, entries)
}

// accountSpan reconstructs from a packed plan what the per-draw path
// accounts as it goes — the per-bit fault counters and the span's
// inflation sum Σ 2^bit (two partial sums, so the float adds overlap
// instead of forming one serial latency chain). The hot planSpan loop
// defers the counters so its serial draw chain carries no stores; the
// generic loop already counted through drawFault, so for it only the
// inflation sum runs here. The dispatch condition mirrors planSpan's
// switch exactly.
func (b *BatchInjector) accountSpan(in *Injector, entries []spanFault) float64 {
	counted := !(in.gapTable != nil && in.src != nil && in.rec == nil)
	var s0, s1 float64
	i := 0
	if counted {
		for ; i+2 <= len(entries); i += 2 {
			s0 += float64(uint64(1) << entries[i].bit())
			s1 += float64(uint64(1) << entries[i+1].bit())
		}
	} else {
		for ; i+2 <= len(entries); i += 2 {
			b0, b1 := entries[i].bit(), entries[i+1].bit()
			in.stats.PerBit[b0]++
			in.stats.PerBit[b1]++
			s0 += float64(uint64(1) << b0)
			s1 += float64(uint64(1) << b1)
		}
		in.stats.Faults += uint64(len(entries))
	}
	if i < len(entries) {
		b0 := entries[i].bit()
		if !counted {
			in.stats.PerBit[b0]++
		}
		s0 += float64(uint64(1) << b0)
	}
	return s0 + s1
}

// DotRowBatch implements fxp.BatchUnit: plan each lane's faults for
// the row (consuming a presampled span when one is active, drawing
// live otherwise), then run the MAC. Lanes whose magnitude bound
// (Σ|w|·max|x| plus the planned bit-flip inflation Σ2^bit) clears
// fxp.NoSatBound take the unchecked fast path with faults applied as
// additive corrections afterward; other lanes replay the plan through
// the scalar saturating segment walk. Both give bit-identical results
// to the scalar Injector on the same stream.
func (b *BatchInjector) DotRowBatch(f fxp.Format, w []fxp.Value, bt *fxp.Batch, out []fxp.Value) {
	n := len(w)
	wAbs := bt.WAbs
	if wAbs == 0 && bt.MaxAbs != nil {
		wAbs = float64(fxp.SumAbs(w))
	}
	if bt.MaxAbs != nil && b.allSpanFast(bt, wAbs, n, len(out)) {
		b.dotRowSpanFast(f, w, bt, out)
		return
	}
	for j := range out {
		lane := bt.Lane(j)
		x := bt.Xs[j*bt.Stride : j*bt.Stride+n]
		if sp := &b.spans[lane]; sp.active {
			// Span path: the row's plan is the next run of presampled
			// entries.
			if sp.pos+int64(n) > sp.muls {
				// A row overrunning the announced span breaks the
				// SpanPlanner contract — the remaining plan would be
				// misaligned against the stream — so fail loudly rather
				// than silently diverging.
				panic(fmt.Sprintf("faults: lane %d row of %d muls overruns announced span (%d of %d consumed)",
					lane, n, sp.pos, sp.muls))
			}
			base := sp.pos
			end := base + int64(n)
			entries := sp.entries
			c := sp.cursor
			pEnd := spanFault(end) << 8 // e < pEnd ⟺ e.site() < end
			if bt.MaxAbs != nil && wAbs*float64(bt.MaxAbs[j])+sp.inflTotal < fxp.NoSatBound {
				// The whole span's inflation clears the bound (a
				// superset of any row's), so consume and correct in one
				// pass over this row's entries.
				acc := fxp.DotUnchecked(w, x)
				for c < len(entries) && entries[c] < pEnd {
					site := int(entries[c].site() - base)
					p := int64(w[site]) * int64(x[site])
					acc += (p ^ int64(1)<<entries[c].bit()) - p
					c++
				}
				out[j] = f.ScaleProduct(fxp.Product(acc))
			} else {
				// Rare: re-test with this row's exact inflation before
				// falling back to the checked segment walk.
				start := c
				inflate := 0.0
				for c < len(entries) && entries[c] < pEnd {
					inflate += float64(uint64(1) << entries[c].bit())
					c++
				}
				if bt.MaxAbs != nil && wAbs*float64(bt.MaxAbs[j])+inflate < fxp.NoSatBound {
					acc := fxp.DotUnchecked(w, x)
					for s := start; s < c; s++ {
						site := int(entries[s].site() - base)
						p := int64(w[site]) * int64(x[site])
						acc += (p ^ int64(1)<<entries[s].bit()) - p
					}
					out[j] = f.ScaleProduct(fxp.Product(acc))
				} else {
					out[j] = f.ScaleProduct(dotPlannedSpan(w, x, entries[start:c], base))
				}
			}
			sp.cursor, sp.pos = c, end
			if end == sp.muls {
				sp.active = false
			}
			continue
		}
		sites, bits := b.planRow(lane, n)
		if bt.MaxAbs != nil {
			bound := wAbs * float64(bt.MaxAbs[j])
			for _, bit := range bits {
				bound += float64(uint64(1) << bit)
			}
			if bound < fxp.NoSatBound {
				acc := fxp.DotUnchecked(w, x)
				for s, site := range sites {
					p := int64(w[site]) * int64(x[site])
					acc += (p ^ int64(1)<<bits[s]) - p
				}
				out[j] = f.ScaleProduct(fxp.Product(acc))
				continue
			}
		}
		out[j] = f.ScaleProduct(dotPlanned(w, x, sites, bits))
	}
}

// allSpanFast reports whether every packed lane of the row can take
// the blocked unchecked kernel: span-active, inside the announced
// span, and with magnitude bound plus whole-span inflation clearing
// fxp.NoSatBound. When it holds, the whole row runs one blocked MAC
// walk with the weight loads shared across lanes.
func (b *BatchInjector) allSpanFast(bt *fxp.Batch, wAbs float64, n, k int) bool {
	var maxAbs int64
	for j := 0; j < k; j++ {
		sp := &b.spans[bt.Lane(j)]
		if !sp.active || sp.pos+int64(n) > sp.muls {
			return false
		}
		if m := bt.MaxAbs[j]; m > maxAbs {
			maxAbs = m
		}
	}
	// One combined test covers every lane: per-lane |x| bounds fold to
	// their max, per-lane inflation to the span-wide max from BeginSpan.
	return wAbs*float64(maxAbs)+b.maxInfl < fxp.NoSatBound
}

// dotRowSpanFast is the whole-row fast path: one blocked unchecked MAC
// over all lanes, then each lane's planned faults applied as additive
// corrections. Per lane this computes exactly what the per-lane span
// fast path computes; allSpanFast has already proven the bound for
// every lane.
func (b *BatchInjector) dotRowSpanFast(f fxp.Format, w []fxp.Value, bt *fxp.Batch, out []fxp.Value) {
	n := len(w)
	k := len(out)
	if cap(b.accs) < k {
		b.accs = make([]int64, k)
	}
	accs := b.accs[:k]
	fxp.DotUncheckedBatch(w, bt.Xs, bt.Stride, accs)
	for j := 0; j < k; j++ {
		sp := &b.spans[bt.Lane(j)]
		base := sp.pos
		end := base + int64(n)
		entries := sp.entries
		c := sp.cursor
		pEnd := spanFault(end) << 8
		acc := accs[j]
		x := bt.Xs[j*bt.Stride : j*bt.Stride+n]
		for c < len(entries) && entries[c] < pEnd {
			site := int(entries[c].site() - base)
			p := int64(w[site]) * int64(x[site])
			acc += (p ^ int64(1)<<entries[c].bit()) - p
			c++
		}
		out[j] = f.ScaleProduct(fxp.Product(acc))
		sp.cursor, sp.pos = c, end
		if end == sp.muls {
			sp.active = false
		}
	}
}

// dotPlanned replays a fault plan through the checked scalar kernel:
// exact saturating segments between sites, a saturating add of the
// faulted product at each site — element for element the computation
// Injector.DotRow performs, minus the (already consumed) draws.
func dotPlanned(w, x []fxp.Value, sites []int32, bits []uint8) fxp.Product {
	var a fxp.Product
	prev := 0
	for s, site32 := range sites {
		site := int(site32)
		a = fxp.AccumExact(a, w[prev:site], x[prev:site])
		fp := fxp.Product(int64(w[site])*int64(x[site])) ^ fxp.Product(1)<<uint(bits[s])
		a = fxp.SatAdd(a, fp)
		prev = site + 1
	}
	return fxp.AccumExact(a, w[prev:], x[prev:len(w)])
}

// dotPlannedSpan is dotPlanned over a slice of a span plan, whose
// sites are global mul offsets: base is the row's first global index.
func dotPlannedSpan(w, x []fxp.Value, entries []spanFault, base int64) fxp.Product {
	var a fxp.Product
	prev := 0
	for _, e := range entries {
		site := int(e.site() - base)
		a = fxp.AccumExact(a, w[prev:site], x[prev:site])
		fp := fxp.Product(int64(w[site])*int64(x[site])) ^ fxp.Product(1)<<e.bit()
		a = fxp.SatAdd(a, fp)
		prev = site + 1
	}
	return fxp.AccumExact(a, w[prev:], x[prev:len(w)])
}

var _ fxp.BatchUnit = (*BatchInjector)(nil)
var _ fxp.SpanPlanner = (*BatchInjector)(nil)
