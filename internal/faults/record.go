package faults

import (
	"fmt"
	"math"

	"shmd/internal/fxp"
)

// DrawLog is the complete stochastic record of one recorded span of
// injector activity: the gap that was already pending when recording
// started, every geometric gap drawn during the span, and every fault
// bit flipped. Together with the multiplication sequence (which is a
// pure function of the model and the input windows), a DrawLog
// determines the faulted products bit-for-bit — it is the provenance a
// decision trace stores so a verdict can be replayed off-hardware.
type DrawLog struct {
	// InitialGap is the injector's pending gap at StartRecord time:
	// -1 when no gap was drawn yet (the common case directly after a
	// rate change), otherwise the number of fault-free multiplications
	// remaining before the next fault site.
	InitialGap int64
	// Gaps lists every geometric gap drawn during the span, in draw
	// order: the lazy first draw (if any) followed by one post-fault
	// draw per fault.
	Gaps []int64
	// Bits lists the flipped product bit of every fault, in fault
	// order. len(Bits) == len(Gaps) or len(Gaps)-1 (the lazy draw has
	// no bit).
	Bits []uint8
}

// Clone deep-copies the log (the injector reuses the backing arrays of
// an attached log across recordings).
func (l DrawLog) Clone() DrawLog {
	c := DrawLog{InitialGap: l.InitialGap}
	if len(l.Gaps) > 0 {
		c.Gaps = append([]int64(nil), l.Gaps...)
	}
	if len(l.Bits) > 0 {
		c.Bits = append([]uint8(nil), l.Bits...)
	}
	return c
}

// Faults returns the number of faults in the log.
func (l DrawLog) Faults() int { return len(l.Bits) }

// Recordable is implemented by fault units whose stochastic draws can
// be captured into a DrawLog for later replay. Recording is purely
// observational: it never consumes or reorders RNG draws, so a
// recorded run is bit-identical to an unrecorded one.
type Recordable interface {
	// StartRecord attaches log, resetting its draw lists and capturing
	// the pending gap. Any previous recording stops.
	StartRecord(log *DrawLog)
	// StopRecord detaches and returns the attached log (nil when no
	// recording was active).
	StopRecord() *DrawLog
}

// StartRecord implements Recordable: subsequent draws append to log
// until StopRecord. The log's slices are truncated, not reallocated,
// so a caller can reuse one DrawLog across decisions.
func (in *Injector) StartRecord(log *DrawLog) {
	log.InitialGap = in.gap
	if log.InitialGap < -1 {
		// The never-configured sentinel (-2) and "not drawn yet" (-1)
		// replay identically; keep the serialized form canonical.
		log.InitialGap = -1
	}
	log.Gaps = log.Gaps[:0]
	log.Bits = log.Bits[:0]
	in.rec = log
}

// StopRecord implements Recordable.
func (in *Injector) StopRecord() *DrawLog {
	log := in.rec
	in.rec = nil
	return log
}

var _ Recordable = (*Injector)(nil)

// Replayer is an fxp.Unit that re-executes a recorded fault sequence:
// it consumes the gaps and bits of a DrawLog instead of drawing from
// an RNG, so running the same multiplication sequence through it
// reproduces the recorded products bit-for-bit — off-hardware, with no
// regulator and no random stream. It intentionally does not implement
// fxp.BulkUnit: the scalar path produces products bit-identical to the
// fused bulk kernel (pinned by the skip-ahead equivalence tests), so
// one replay path covers traces recorded through either.
//
// After the replayed computation, Done reports whether the log was
// consumed exactly; a leftover or starved log means the replayed
// multiplication sequence differs from the recorded one (wrong model,
// wrong windows, or a corrupt trace).
type Replayer struct {
	gap     int64
	gaps    []int64
	bits    []uint8
	gi, bi  int
	muls    uint64
	faults  uint64
	starved bool
}

// NewReplayer builds a replaying unit over log. The log is read, not
// mutated; the caller may share it.
func NewReplayer(log DrawLog) *Replayer {
	return &Replayer{gap: log.InitialGap, gaps: log.Gaps, bits: log.Bits}
}

// nextGap pops the next recorded gap; an exhausted list means no
// further fault was recorded, so the rest of the span is fault-free.
func (r *Replayer) nextGap() int64 {
	if r.gi < len(r.gaps) {
		g := r.gaps[r.gi]
		r.gi++
		return g
	}
	return math.MaxInt64
}

// Mul replays one multiplication: exact product, with the recorded bit
// flipped when the recorded gap sequence lands a fault here.
func (r *Replayer) Mul(a, b fxp.Value) fxp.Product {
	p := fxp.Product(int64(a) * int64(b))
	r.muls++
	if r.gap < 0 {
		r.gap = r.nextGap()
	}
	if r.gap == 0 {
		if r.bi >= len(r.bits) {
			// A fault is due but the log has no bit for it: the log is
			// inconsistent. Flag it and stop faulting.
			r.starved = true
			r.gap = math.MaxInt64
			return p
		}
		bit := r.bits[r.bi]
		r.bi++
		r.faults++
		r.gap = r.nextGap()
		return p ^ fxp.Product(1)<<uint(bit)
	}
	r.gap--
	return p
}

// Muls returns the number of replayed multiplications.
func (r *Replayer) Muls() uint64 { return r.muls }

// Faults returns the number of replayed faults.
func (r *Replayer) Faults() uint64 { return r.faults }

// Done verifies the log was consumed exactly: every recorded gap and
// bit applied, no fault left hanging. A replay that scores the same
// windows through the same model as the recording always drains the
// log; anything else is a mismatch.
func (r *Replayer) Done() error {
	if r.starved {
		return fmt.Errorf("faults: replay log inconsistent: fault due at mul %d but bit draws exhausted", r.muls)
	}
	if r.gi != len(r.gaps) || r.bi != len(r.bits) {
		return fmt.Errorf("faults: replay log not drained: %d/%d gaps, %d/%d bits consumed (multiplication sequence differs from recording)",
			r.gi, len(r.gaps), r.bi, len(r.bits))
	}
	return nil
}

var _ fxp.Unit = (*Replayer)(nil)
