// Package faults implements the stochastic fault-injection tool of the
// paper's Section VI-A: it "emulates timing violations at the output of
// arithmetic operations, based on the error distribution model detailed
// in Section II". The injector satisfies fxp.Unit, so it drops into the
// fixed-point inference path of the FANN-like network without any model
// change.
//
// The Section II characterization constraints encoded here:
//
//   - only multiplications fault (adds/subs/bit-ops have shorter
//     critical paths and never faulted), so only Mul is corrupted;
//   - the sign bit (bit 63 of the 64-bit product) never flips — it is a
//     single XOR of the operand sign bits, far off the critical path;
//   - the 8 least-significant product bits never flip — their
//     propagation delays are the shortest in the array multiplier;
//   - the fault location varies non-deterministically across runs with
//     identical operands (validated with the approximate-entropy test);
//   - the undervolting level controls the fault *rate*; the location
//     distribution keeps the same shape (Fig 1 snapshot at −130 mV).
package faults

import (
	"fmt"
	"math"
	"math/rand"
)

// Product-bit index constants from the Section II characterization.
const (
	// MinFaultBit is the lowest product bit that can flip; bits 0..7
	// never faulted in the characterization.
	MinFaultBit = 8
	// MaxFaultBit is the highest product bit that can flip; bit 63
	// (the sign) never faulted.
	MaxFaultBit = 62
	// ProductBits is the width of a multiplication output.
	ProductBits = 64
)

// Distribution is a normalized fault-location distribution over the 64
// product bits. Weights outside [MinFaultBit, MaxFaultBit] are zero by
// construction.
type Distribution struct {
	weights [ProductBits]float64
	cdf     [ProductBits]float64
	// Walker alias tables: Sample draws in O(1) — one uniform, one
	// table row — instead of binary-searching the CDF, whose ~6
	// data-dependent branches mispredict and dominate the per-fault
	// cost of the skip-ahead injector.
	aliasProb [ProductBits]float64
	alias     [ProductBits]int
	// bits32 is the integer-threshold form of the alias table read by
	// sampleBits32: row i accepts itself iff the 26-bit fraction is
	// below thresh, which is the exact same acceptance set as the float
	// comparison (see the threshold derivation in buildAlias), with the
	// row fused into 8 bytes so a draw touches one cache line and does
	// no int→float conversion.
	bits32 [ProductBits]aliasRow32
}

// aliasRow32 is one integer-threshold alias row.
type aliasRow32 struct {
	thresh uint32
	alias  uint16
}

// NewDistribution builds a Distribution from raw non-negative weights.
// Weights at the sign bit and the 8 LSBs are rejected, matching the
// physical constraints above.
func NewDistribution(weights [ProductBits]float64) (*Distribution, error) {
	total := 0.0
	for bit, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("faults: invalid weight %v at bit %d", w, bit)
		}
		if w > 0 && (bit < MinFaultBit || bit > MaxFaultBit) {
			return nil, fmt.Errorf("faults: bit %d cannot fault (weight %v)", bit, w)
		}
		total += w
	}
	if total == 0 {
		return nil, fmt.Errorf("faults: distribution has no mass")
	}
	d := &Distribution{}
	acc := 0.0
	for bit := range weights {
		d.weights[bit] = weights[bit] / total
		acc += d.weights[bit]
		d.cdf[bit] = acc
	}
	d.cdf[ProductBits-1] = 1 // guard against rounding
	d.buildAlias()
	return d, nil
}

// buildAlias fills the Walker alias tables from the normalized weights.
// The integer thresholds are exact: an m-bit fraction u accepts iff
// u·2⁻ᵐ < p, and since float64(u)·2⁻ᵐ and p·2ᵐ are both exact
// (power-of-two scaling), that holds iff u < ceil(p·2ᵐ) — so the
// integer compare draws the identical outcome for every random input.
func (d *Distribution) buildAlias() {
	prob, alias := aliasBuild(d.weights[:])
	copy(d.aliasProb[:], prob)
	copy(d.alias[:], alias)
	for i := range d.bits32 {
		d.bits32[i] = aliasRow32{
			thresh: uint32(math.Ceil(prob[i] * (1 << bitFracBits))),
			alias:  uint16(alias[i]),
		}
	}
}

// aliasBuild runs Vose's O(n) alias-table construction over normalized
// weights. Every table row (prob, alias) splits one 1/n-wide bucket
// between at most two outcomes, so sampling needs a single uniform:
// the integer part picks the row, the fractional part picks the side.
// Shared by the fault-location Distribution and the injector's
// geometric gap table.
func aliasBuild(weights []float64) (prob []float64, alias []int) {
	n := len(weights)
	prob = make([]float64, n)
	alias = make([]int, n)
	scaled := make([]float64, n)
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n)
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		prob[s] = scaled[s]
		alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			large = large[:len(large)-1]
			small = append(small, l)
		}
	}
	// Leftovers are exactly full buckets (up to rounding).
	for _, i := range large {
		prob[i] = 1
		alias[i] = i
	}
	for _, i := range small {
		prob[i] = 1
		alias[i] = i
	}
	return prob, alias
}

// Calibration constants for the default (Fig 1) fault-location model.
//
// The measured distribution at −130 mV spreads faults over bits 8..62
// with per-bit rates below 0.06%: the bulk of flips land in
// low-significance bits (short-but-failing paths are reached first as
// voltage drops) with a thinning tail into the high bits whose longer
// carry chains fail more rarely at this undervolting level. We model
// that as a two-component mixture:
//
//   - a dominant bump centered in the low product bits
//     (fig1LowCenter/fig1LowSigma), holding fig1LowMass of the mass;
//   - a wide, shallow bump over the mid/high bits
//     (fig1HighCenter/fig1HighSigma) for the rare catastrophic flips.
//
// These four constants — together with the voltage→rate curve in
// internal/volt — are the calibration surface of the reproduction; they
// were tuned so that the Fig 2(a) accuracy-vs-error-rate sweep matches
// the paper's shape (≈2% accuracy loss at er = 0.1, graceful
// degradation until ≈0.5, divergence toward er = 1).
const (
	fig1LowCenter  = 14.0
	fig1LowSigma   = 3.5
	fig1LowMass    = 0.995
	fig1HighCenter = 34.0
	fig1HighSigma  = 9.0
)

// Fig1Distribution returns the default fault-location model fitted to
// the shape of the paper's Fig 1 (i7-5557U at 2.2 GHz, 49 °C, −130 mV).
func Fig1Distribution() *Distribution {
	var w [ProductBits]float64
	for bit := MinFaultBit; bit <= MaxFaultBit; bit++ {
		b := float64(bit)
		low := math.Exp(-0.5 * sq((b-fig1LowCenter)/fig1LowSigma))
		high := math.Exp(-0.5 * sq((b-fig1HighCenter)/fig1HighSigma))
		w[bit] = fig1LowMass*low + (1-fig1LowMass)*high
	}
	d, err := NewDistribution(w)
	if err != nil {
		panic("faults: default distribution invalid: " + err.Error())
	}
	return d
}

// UniformDistribution returns a flat distribution over all faultable
// bits. It exists for the ablation bench that contrasts the measured
// low-bit-heavy shape with a uniform one (which is far more damaging).
func UniformDistribution() *Distribution {
	var w [ProductBits]float64
	for bit := MinFaultBit; bit <= MaxFaultBit; bit++ {
		w[bit] = 1
	}
	d, err := NewDistribution(w)
	if err != nil {
		panic("faults: uniform distribution invalid: " + err.Error())
	}
	return d
}

func sq(x float64) float64 { return x * x }

// Weight returns the normalized probability mass at bit.
func (d *Distribution) Weight(bit int) float64 {
	if bit < 0 || bit >= ProductBits {
		return 0
	}
	return d.weights[bit]
}

// Weights returns a copy of the normalized per-bit mass.
func (d *Distribution) Weights() [ProductBits]float64 { return d.weights }

// Sample draws a fault bit location via the alias tables: one uniform,
// one comparison.
func (d *Distribution) Sample(rnd *rand.Rand) int {
	u := rnd.Float64() * ProductBits
	i := int(u)
	if i >= ProductBits { // u == 1.0 cannot happen, but be safe
		i = ProductBits - 1
	}
	if u-float64(i) < d.aliasProb[i] {
		return i
	}
	return d.alias[i]
}

// sampleCDF draws a fault bit by binary-searching the CDF — the
// original sampler, kept as the reference implementation behind
// BernoulliInjector so the A/B benchmarks measure the pre-alias-table
// baseline faithfully. Distributionally identical to Sample.
func (d *Distribution) sampleCDF(rnd *rand.Rand) int {
	u := rnd.Float64()
	lo, hi := 0, ProductBits-1
	for lo < hi {
		mid := (lo + hi) / 2
		if d.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Bit-sampler fraction split of a 32-bit draw: the top 6 bits index
// the alias row (ProductBits = 64 rows), the low 26 form the
// acceptance fraction.
const (
	bitFracBits = 26
	bitFracMask = 1<<bitFracBits - 1
)

// sampleBits32 draws a fault bit from 32 pre-drawn random bits. The
// injector's fused per-fault draw uses this so one 64-bit RNG output
// covers both the bit and the next gap; the 2^-26 fraction granularity
// biases each bit's mass by < 2^-31, far below the
// statistical-equivalence test tolerances.
func (d *Distribution) sampleBits32(u uint32) int {
	r := d.bits32[u>>bitFracBits]
	if u&bitFracMask < r.thresh {
		return int(u >> bitFracBits)
	}
	return int(r.alias)
}
