package faults

import (
	"math"
	"testing"
	"testing/quick"

	"shmd/internal/fxp"
	"shmd/internal/rng"
)

func newTestInjector(t *testing.T, rate float64) *Injector {
	t.Helper()
	in, err := NewInjector(rate, nil, rng.NewRand(1, uint64(rate*1000)))
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestNewDistributionValidation(t *testing.T) {
	var w [ProductBits]float64

	if _, err := NewDistribution(w); err == nil {
		t.Error("zero-mass distribution must be rejected")
	}

	w[0] = 1 // LSB cannot fault
	if _, err := NewDistribution(w); err == nil {
		t.Error("mass at bit 0 must be rejected")
	}

	w[0] = 0
	w[63] = 1 // sign bit cannot fault
	if _, err := NewDistribution(w); err == nil {
		t.Error("mass at the sign bit must be rejected")
	}

	w[63] = 0
	w[20] = -1
	if _, err := NewDistribution(w); err == nil {
		t.Error("negative weight must be rejected")
	}

	w[20] = math.NaN()
	if _, err := NewDistribution(w); err == nil {
		t.Error("NaN weight must be rejected")
	}

	w[20] = 1
	d, err := NewDistribution(w)
	if err != nil {
		t.Fatal(err)
	}
	if d.Weight(20) != 1 {
		t.Errorf("single-bit distribution weight = %v", d.Weight(20))
	}
}

func TestFig1DistributionRespectsConstraints(t *testing.T) {
	d := Fig1Distribution()
	ws := d.Weights()
	total := 0.0
	for bit, w := range ws {
		total += w
		if (bit < MinFaultBit || bit > MaxFaultBit) && w != 0 {
			t.Errorf("bit %d has forbidden mass %v", bit, w)
		}
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("distribution mass = %v, want 1", total)
	}
	// The measured shape is low-bit heavy: most mass below bit 24.
	low := 0.0
	for bit := MinFaultBit; bit < 24; bit++ {
		low += ws[bit]
	}
	if low < 0.9 {
		t.Errorf("low-bit mass = %v, want > 0.9", low)
	}
	// But high bits retain nonzero mass (the catastrophic tail exists).
	high := 0.0
	for bit := 28; bit <= MaxFaultBit; bit++ {
		high += ws[bit]
	}
	if high <= 0 {
		t.Error("high-bit tail must have nonzero mass")
	}
}

func TestDistributionSampleMatchesWeights(t *testing.T) {
	d := Fig1Distribution()
	rnd := rng.NewRand(2)
	const n = 200000
	var counts [ProductBits]int
	for i := 0; i < n; i++ {
		bit := d.Sample(rnd)
		if bit < MinFaultBit || bit > MaxFaultBit {
			t.Fatalf("sampled forbidden bit %d", bit)
		}
		counts[bit]++
	}
	for bit := MinFaultBit; bit <= MaxFaultBit; bit++ {
		want := d.Weight(bit)
		got := float64(counts[bit]) / n
		// 5-sigma binomial tolerance.
		tol := 5*math.Sqrt(want*(1-want)/n) + 1e-4
		if math.Abs(got-want) > tol {
			t.Errorf("bit %d: sampled %v, want %v (tol %v)", bit, got, want, tol)
		}
	}
}

func TestInjectorRateValidation(t *testing.T) {
	if _, err := NewInjector(-0.1, nil, rng.NewRand(1)); err == nil {
		t.Error("negative rate must be rejected")
	}
	if _, err := NewInjector(1.1, nil, rng.NewRand(1)); err == nil {
		t.Error("rate > 1 must be rejected")
	}
	if _, err := NewInjector(0.5, nil, nil); err == nil {
		t.Error("nil random stream must be rejected")
	}
	in := newTestInjector(t, 0.5)
	if err := in.SetRate(2); err == nil {
		t.Error("SetRate(2) must fail")
	}
	if err := in.SetRate(0.25); err != nil || in.Rate() != 0.25 {
		t.Errorf("SetRate: err=%v rate=%v", err, in.Rate())
	}
}

func TestZeroRateInjectorIsExact(t *testing.T) {
	in := newTestInjector(t, 0)
	exact := fxp.Exact{}
	rnd := rng.NewRand(3)
	for i := 0; i < 1000; i++ {
		a := fxp.Value(rnd.Int31() - 1<<30)
		b := fxp.Value(rnd.Int31() - 1<<30)
		if in.Mul(a, b) != exact.Mul(a, b) {
			t.Fatalf("zero-rate injector corrupted %d*%d", a, b)
		}
	}
	if in.Stats().Faults != 0 {
		t.Errorf("zero-rate injector recorded %d faults", in.Stats().Faults)
	}
	if in.Stats().Muls != 1000 {
		t.Errorf("Muls = %d, want 1000", in.Stats().Muls)
	}
}

func TestInjectorObservedRate(t *testing.T) {
	for _, rate := range []float64{0.05, 0.3, 1.0} {
		in := newTestInjector(t, rate)
		const n = 50000
		for i := 0; i < n; i++ {
			in.Mul(12345, 6789)
		}
		got := in.Stats().Rate()
		tol := 5*math.Sqrt(rate*(1-rate)/n) + 1e-9
		if math.Abs(got-rate) > tol {
			t.Errorf("rate %v: observed %v (tol %v)", rate, got, tol)
		}
	}
}

func TestInjectorSingleBitFlips(t *testing.T) {
	in := newTestInjector(t, 1)
	exact := fxp.Exact{}
	rnd := rng.NewRand(4)
	for i := 0; i < 2000; i++ {
		a := fxp.Value(rnd.Int31())
		b := fxp.Value(rnd.Int31())
		diff := uint64(in.Mul(a, b) ^ exact.Mul(a, b))
		if diff == 0 {
			t.Fatal("rate-1 injector produced a fault-free product")
		}
		if diff&(diff-1) != 0 {
			t.Fatalf("fault flipped more than one bit: %#x", diff)
		}
		bit := 0
		for diff>>uint(bit) != 1 {
			bit++
		}
		if bit < MinFaultBit || bit > MaxFaultBit {
			t.Fatalf("fault at forbidden bit %d", bit)
		}
	}
}

func TestSignBitNeverFlips(t *testing.T) {
	// Directly mirrors the Section II observation: across many faulty
	// multiplications, the product sign never changes.
	in := newTestInjector(t, 1)
	rnd := rng.NewRand(5)
	for i := 0; i < 5000; i++ {
		a := fxp.Value(rnd.Int31() - 1<<30)
		b := fxp.Value(rnd.Int31() - 1<<30)
		exact := int64(fxp.Exact{}.Mul(a, b))
		got := int64(in.Mul(a, b))
		if (exact < 0) != (got < 0) {
			t.Fatalf("sign flipped: exact=%d faulty=%d", exact, got)
		}
	}
}

func TestLow8BitsNeverFlip(t *testing.T) {
	in := newTestInjector(t, 1)
	rnd := rng.NewRand(6)
	for i := 0; i < 5000; i++ {
		a := fxp.Value(rnd.Int31())
		b := fxp.Value(rnd.Int31())
		exact := fxp.Exact{}.Mul(a, b)
		got := in.Mul(a, b)
		if (exact^got)&0xFF != 0 {
			t.Fatalf("low bits flipped: exact=%#x faulty=%#x", exact, got)
		}
	}
}

func TestFaultLocationsVaryAcrossRuns(t *testing.T) {
	// Same operands, repeated runs: the fault location must vary —
	// the stochastic property that distinguishes undervolting from a
	// deterministic approximate circuit.
	in := newTestInjector(t, 1)
	locs := RepeatMul(in, 999999, 888888, 500)
	seen := map[int]bool{}
	for _, l := range locs {
		if l < 0 {
			t.Fatal("rate-1 run without fault")
		}
		seen[l] = true
	}
	if len(seen) < 5 {
		t.Errorf("only %d distinct fault locations across 500 runs", len(seen))
	}
}

func TestStochasticityApEn(t *testing.T) {
	// At an intermediate rate the fault on/off series must look
	// irregular (high ApEn); the truncation unit by contrast is
	// perfectly regular (same output every run).
	in := newTestInjector(t, 0.5)
	ap, err := StochasticityApEn(in, 123456, 654321, 300)
	if err != nil {
		t.Fatal(err)
	}
	if ap < 0.3 {
		t.Errorf("ApEn = %v, want > 0.3 for stochastic faults", ap)
	}
}

func TestRepeatMulFaultFree(t *testing.T) {
	in := newTestInjector(t, 0)
	locs := RepeatMul(in, 42, 42, 10)
	for _, l := range locs {
		if l != -1 {
			t.Fatalf("fault-free run reported fault at bit %d", l)
		}
	}
}

func TestTruncatedUnitDeterministic(t *testing.T) {
	u := TruncatedUnit{DropBits: 4}
	a, b := fxp.Value(0x1234567), fxp.Value(-0x76543)
	first := u.Mul(a, b)
	for i := 0; i < 10; i++ {
		if u.Mul(a, b) != first {
			t.Fatal("truncated unit must be deterministic")
		}
	}
	// Dropping 0 bits is exact.
	exactU := TruncatedUnit{DropBits: 0}
	if exactU.Mul(a, b) != (fxp.Exact{}).Mul(a, b) {
		t.Error("DropBits=0 must be exact")
	}
}

func TestTruncatedUnitError(t *testing.T) {
	f := fxp.DefaultFormat
	u := TruncatedUnit{DropBits: 6}
	a := f.FromFloat(3.14159)
	b := f.FromFloat(-2.71828)
	approx := f.ProductToFloat(u.Mul(a, b))
	exact := f.ProductToFloat(fxp.Exact{}.Mul(a, b))
	if approx == exact {
		t.Error("truncation should perturb this product")
	}
	if math.Abs(approx-exact) > 0.5 {
		t.Errorf("truncation error too large: %v vs %v", approx, exact)
	}
}

func TestObservedBitHistogram(t *testing.T) {
	in := newTestInjector(t, 0.5)
	hist := ObservedBitHistogram(in, 2000, 5, rng.NewRand(7))
	total := 0.0
	for bit, r := range hist {
		if r > 0 && (bit < MinFaultBit || bit > MaxFaultBit) {
			t.Errorf("observed fault at forbidden bit %d", bit)
		}
		total += r
	}
	if math.Abs(total-0.5) > 0.05 {
		t.Errorf("total observed rate = %v, want ~0.5", total)
	}
}

// Property: counters are consistent — faults equals the sum of per-bit
// counts and never exceeds muls.
func TestCountersConsistency(t *testing.T) {
	check := func(seed uint64, rateRaw uint8) bool {
		rate := float64(rateRaw) / 255
		in, err := NewInjector(rate, nil, rng.NewRand(seed))
		if err != nil {
			return false
		}
		for i := 0; i < 500; i++ {
			in.Mul(fxp.Value(seed), fxp.Value(i))
		}
		st := in.Stats()
		var sum uint64
		for _, c := range st.PerBit {
			sum += c
		}
		return st.Faults == sum && st.Faults <= st.Muls && st.Muls == 500
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}
