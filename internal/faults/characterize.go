package faults

import (
	"math/rand"

	"shmd/internal/fxp"
	"shmd/internal/stats"
)

// RepeatMul re-executes the same multiplication n times through the
// injector — the Section II experiment ("repeatedly executing the same
// instruction with the same operands") — and returns, per run, the
// flipped bit location or -1 when the run was fault-free.
func RepeatMul(in *Injector, a, b fxp.Value, n int) []int {
	exact := fxp.Exact{}.Mul(a, b)
	out := make([]int, n)
	for i := range out {
		out[i] = -1
		got := in.Mul(a, b)
		if diff := uint64(got ^ exact); diff != 0 {
			for bit := 0; bit < ProductBits; bit++ {
				if diff&(1<<uint(bit)) != 0 {
					out[i] = bit
					break
				}
			}
		}
	}
	return out
}

// StochasticityApEn runs the paper's stochasticity validation: repeat a
// multiplication with fixed operands, build the binary fault-indicator
// series, and compute its approximate entropy. A deterministic fault
// process (always faulting, or faulting on a fixed schedule) scores
// near zero; the undervolting model scores well above it.
func StochasticityApEn(in *Injector, a, b fxp.Value, n int) (float64, error) {
	locs := RepeatMul(in, a, b, n)
	bits := make([]uint8, len(locs))
	for i, l := range locs {
		if l >= 0 {
			bits[i] = 1
		}
	}
	return stats.BitSeriesApEn(bits)
}

// ObservedBitHistogram repeats random-operand multiplications (the
// "100k sets of operands" experiment behind Fig 1) and returns the
// observed per-bit fault rates from the injector's counters.
func ObservedBitHistogram(in *Injector, operandSets, repeatsPerSet int, rnd *rand.Rand) [ProductBits]float64 {
	in.ResetStats()
	for s := 0; s < operandSets; s++ {
		a := fxp.Value(rnd.Int31())
		b := fxp.Value(rnd.Int31())
		if rnd.Intn(2) == 0 {
			a = -a
		}
		if rnd.Intn(2) == 0 {
			b = -b
		}
		for r := 0; r < repeatsPerSet; r++ {
			in.Mul(a, b)
		}
	}
	return in.Stats().BitRates()
}
