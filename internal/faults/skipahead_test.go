package faults

import (
	"math"
	"testing"

	"shmd/internal/fxp"
	"shmd/internal/rng"
)

// hideBulk masks an Injector's BulkUnit implementation so fxp.Dot takes
// the scalar per-Mul loop through it.
type hideBulk struct{ u fxp.Unit }

func (h hideBulk) Mul(a, b fxp.Value) fxp.Product { return h.u.Mul(a, b) }

// equivalenceRates are the operating points the skip-ahead sampler is
// held to the Bernoulli reference at: the paper's sweep floor, the
// chosen operating region, a heavy-fault point, and the degenerate
// every-mul-faults edge.
var equivalenceRates = []float64{0.01, 0.1, 0.5, 1.0}

// TestSkipAheadMatchesBernoulliRate drives the skip-ahead injector and
// the per-mul Bernoulli reference over the same number of
// multiplications and requires both observed fault rates to sit within
// a binomial confidence band around the configured rate — the
// distributional-equivalence guarantee of DESIGN.md §9.
func TestSkipAheadMatchesBernoulliRate(t *testing.T) {
	const muls = 2_000_000
	for _, rate := range equivalenceRates {
		skip, err := NewInjector(rate, nil, rng.NewRand(90, math.Float64bits(rate)))
		if err != nil {
			t.Fatal(err)
		}
		ref, err := NewBernoulliInjector(rate, nil, rng.NewRand(91, math.Float64bits(rate)))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < muls; i++ {
			skip.Mul(3, 5)
			ref.Mul(3, 5)
		}
		// 6-sigma binomial band: false-failure odds ~1e-9 per check.
		tol := 6 * math.Sqrt(rate*(1-rate)/muls)
		for _, in := range []struct {
			name string
			c    Counters
		}{{"skip-ahead", skip.Stats()}, {"bernoulli", ref.Stats()}} {
			if in.c.Muls != muls {
				t.Errorf("rate %v: %s counted %d muls, want %d", rate, in.name, in.c.Muls, muls)
			}
			if got := in.c.Rate(); math.Abs(got-rate) > tol {
				t.Errorf("rate %v: %s observed rate %v outside ±%v", rate, in.name, got, tol)
			}
		}
	}
}

// TestSkipAheadBulkPathRate repeats the rate check through the DotRow
// bulk path, using rows comparable to the deployed network's fan-in, so
// the fused kernel's gap bookkeeping across row boundaries is what is
// being measured.
func TestSkipAheadBulkPathRate(t *testing.T) {
	const (
		rowLen = 33 // hidden-layer fan-in + bias in the deployed HMD
		rows   = 60_000
	)
	w := make([]fxp.Value, rowLen)
	x := make([]fxp.Value, rowLen)
	for i := range w {
		w[i], x[i] = fxp.Value(i+1), fxp.Value(2*i+1)
	}
	for _, rate := range equivalenceRates {
		in, err := NewInjector(rate, nil, rng.NewRand(92, math.Float64bits(rate)))
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < rows; r++ {
			fxp.Dot(in, fxp.DefaultFormat, w, x)
		}
		muls := float64(rowLen * rows)
		if got := in.Stats().Muls; got != uint64(muls) {
			t.Fatalf("rate %v: bulk path counted %d muls, want %d", rate, got, uint64(muls))
		}
		tol := 6 * math.Sqrt(rate*(1-rate)/muls)
		if got := in.Stats().Rate(); math.Abs(got-rate) > tol {
			t.Errorf("rate %v: bulk observed rate %v outside ±%v", rate, got, tol)
		}
	}
}

// TestSkipAheadPerBitDistribution checks that where faults land is
// untouched by the sampling change: each bit's observed fault rate must
// match dist.Weight(bit) * rate for both injectors, within a binomial
// band (only bits with enough expected mass are tested individually;
// the tail is pooled).
func TestSkipAheadPerBitDistribution(t *testing.T) {
	const muls = 2_000_000
	dist := Fig1Distribution()
	for _, rate := range []float64{0.1, 1.0} {
		skip, _ := NewInjector(rate, dist, rng.NewRand(93, math.Float64bits(rate)))
		ref, _ := NewBernoulliInjector(rate, dist, rng.NewRand(94, math.Float64bits(rate)))
		for i := 0; i < muls; i++ {
			skip.Mul(7, 11)
			ref.Mul(7, 11)
		}
		for _, in := range []struct {
			name string
			c    Counters
		}{{"skip-ahead", skip.Stats()}, {"bernoulli", ref.Stats()}} {
			bitRates := in.c.BitRates()
			for bit := 0; bit < ProductBits; bit++ {
				want := dist.Weight(bit) * rate
				if want*muls < 50 {
					// Too little expected mass for a per-bit band; the
					// zero-weight bits are still checked exactly.
					if dist.Weight(bit) == 0 && in.c.PerBit[bit] != 0 {
						t.Errorf("rate %v: %s faulted zero-weight bit %d", rate, in.name, bit)
					}
					continue
				}
				tol := 6 * math.Sqrt(want*(1-want)/muls)
				if got := bitRates[bit]; math.Abs(got-want) > tol {
					t.Errorf("rate %v: %s bit %d rate %v, want %v ± %v",
						rate, in.name, bit, got, want, tol)
				}
			}
		}
	}
}

// TestSkipAheadScalarBulkBitIdentical is the stronger, non-statistical
// property the bulk path is designed for: two injectors on identical
// streams produce bit-identical products whether a multiplication
// sequence flows through scalar Mul calls or through DotRow — because
// both consume the RNG in the same order (gap draws and bit draws at
// the same points).
func TestSkipAheadScalarBulkBitIdentical(t *testing.T) {
	const (
		rowLen = 65
		rows   = 500
	)
	f := fxp.DefaultFormat
	for _, rate := range equivalenceRates {
		bulk, _ := NewInjector(rate, nil, rng.NewRand(95, math.Float64bits(rate)))
		scalar, _ := NewInjector(rate, nil, rng.NewRand(95, math.Float64bits(rate)))
		gen := rng.NewRand(96)
		for r := 0; r < rows; r++ {
			w := make([]fxp.Value, rowLen)
			x := make([]fxp.Value, rowLen)
			for i := range w {
				w[i] = fxp.Value(gen.Int31()) - 1<<30
				x[i] = fxp.Value(gen.Int31()) - 1<<30
			}
			got := fxp.Dot(bulk, f, w, x)
			want := fxp.Dot(hideBulk{scalar}, f, w, x)
			if got != want {
				t.Fatalf("rate %v row %d: bulk %d != scalar %d", rate, r, got, want)
			}
		}
		if bulk.Stats() != scalar.Stats() {
			t.Errorf("rate %v: counters diverged: bulk %+v scalar %+v",
				rate, bulk.Stats(), scalar.Stats())
		}
	}
}

// TestSkipAheadGapLaw checks the sampled gaps directly: for a sequence
// of scalar muls, the mean gap between consecutive faults must match
// the geometric mean (1-p)/p, and SetRate must discard a pending gap.
func TestSkipAheadGapLaw(t *testing.T) {
	const muls = 4_000_000
	rate := 0.05
	in, _ := NewInjector(rate, nil, rng.NewRand(97))
	var gaps []int
	last := -1
	for i := 0; i < muls; i++ {
		before := in.Stats().Faults
		in.Mul(1, 1)
		if in.Stats().Faults > before {
			if last >= 0 {
				gaps = append(gaps, i-last-1)
			}
			last = i
		}
	}
	if len(gaps) < 1000 {
		t.Fatalf("only %d gaps observed", len(gaps))
	}
	var sum float64
	for _, g := range gaps {
		sum += float64(g)
	}
	mean := sum / float64(len(gaps))
	want := (1 - rate) / rate
	// Geometric std is sqrt(1-p)/p; 6-sigma band on the sample mean.
	tol := 6 * math.Sqrt(1-rate) / rate / math.Sqrt(float64(len(gaps)))
	if math.Abs(mean-want) > tol {
		t.Errorf("mean gap %v, want %v ± %v", mean, want, tol)
	}

	// SetRate must invalidate the pending gap: at rate 1 every mul
	// faults immediately, no matter what gap was pending.
	if err := in.SetRate(1); err != nil {
		t.Fatal(err)
	}
	pre := in.Stats().Faults
	for i := 0; i < 100; i++ {
		in.Mul(2, 3)
	}
	if got := in.Stats().Faults - pre; got != 100 {
		t.Errorf("after SetRate(1), %d/100 muls faulted", got)
	}
}

// TestSkipAheadZeroAndFullRate pins the edge rates: 0 must never fault
// (and consume no randomness), 1 must fault every multiplication on
// both paths.
func TestSkipAheadZeroAndFullRate(t *testing.T) {
	w := []fxp.Value{1 << 12, 2 << 12, 3 << 12}
	x := []fxp.Value{4 << 12, 5 << 12, 6 << 12}

	zero, _ := NewInjector(0, nil, rng.NewRand(98))
	for i := 0; i < 1000; i++ {
		zero.Mul(w[0], x[0])
		fxp.Dot(zero, fxp.DefaultFormat, w, x)
	}
	if s := zero.Stats(); s.Faults != 0 {
		t.Errorf("zero-rate injector faulted %d times", s.Faults)
	}
	if got, want := fxp.Dot(zero, fxp.DefaultFormat, w, x), fxp.DotExact(fxp.DefaultFormat, w, x); got != want {
		t.Errorf("zero-rate DotRow %d != exact %d", got, want)
	}

	full, _ := NewInjector(1, nil, rng.NewRand(99))
	for i := 0; i < 1000; i++ {
		full.Mul(w[0], x[0])
		fxp.Dot(full, fxp.DefaultFormat, w, x)
	}
	if s := full.Stats(); s.Faults != s.Muls {
		t.Errorf("full-rate injector faulted %d of %d muls", s.Faults, s.Muls)
	}
}
