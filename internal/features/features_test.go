package features

import (
	"math"
	"testing"

	"shmd/internal/isa"
	"shmd/internal/trace"
)

func testWindows(t *testing.T, class trace.Class, windows int) []trace.WindowCounts {
	t.Helper()
	p, err := trace.NewProgram(class, 0, 11)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := p.Trace(windows, 4096)
	if err != nil {
		t.Fatal(err)
	}
	return ws
}

func TestSetDims(t *testing.T) {
	cases := []struct {
		set  Set
		want int
	}{
		{SetInstrFreq, isa.NumOpcodes},
		{SetMemory, 16},
		{SetArchEvents, 16},
	}
	for _, tc := range cases {
		got, err := tc.set.Dim()
		if err != nil || got != tc.want {
			t.Errorf("%v dim = %d err=%v", tc.set, got, err)
		}
	}
	if _, err := Set(9).Dim(); err == nil {
		t.Error("unknown set must error")
	}
}

func TestSetString(t *testing.T) {
	for _, s := range []Set{SetInstrFreq, SetMemory, SetArchEvents} {
		if s.String() == "" {
			t.Errorf("set %d has empty name", s)
		}
	}
	if Set(9).String() != "set(9)" {
		t.Errorf("unknown set name = %q", Set(9).String())
	}
}

func TestExtractShapes(t *testing.T) {
	ws := testWindows(t, trace.Benign, 8)
	for _, s := range []Set{SetInstrFreq, SetMemory, SetArchEvents} {
		vecs, err := Extract(ws, s, Period1)
		if err != nil {
			t.Fatal(err)
		}
		dim, _ := s.Dim()
		if len(vecs) != 8 {
			t.Errorf("%v: %d vectors, want 8", s, len(vecs))
		}
		for i, v := range vecs {
			if len(v) != dim {
				t.Errorf("%v window %d: dim %d, want %d", s, i, len(v), dim)
			}
			for j, x := range v {
				if math.IsNaN(x) || math.IsInf(x, 0) {
					t.Errorf("%v window %d feature %d = %v", s, i, j, x)
				}
			}
		}
	}
}

func TestInstrFreqSumsToOne(t *testing.T) {
	ws := testWindows(t, trace.Trojan, 4)
	vecs, err := Extract(ws, SetInstrFreq, Period1)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vecs {
		sum := 0.0
		for _, x := range v {
			if x < 0 {
				t.Fatalf("negative frequency in window %d", i)
			}
			sum += x
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("window %d frequencies sum to %v", i, sum)
		}
	}
}

func TestAggregatePeriod2(t *testing.T) {
	ws := testWindows(t, trace.Benign, 8)
	agg, err := Aggregate(ws, Period2)
	if err != nil {
		t.Fatal(err)
	}
	if len(agg) != 4 {
		t.Fatalf("period-2 windows = %d, want 4", len(agg))
	}
	for g := range agg {
		if agg[g].Total() != ws[2*g].Total()+ws[2*g+1].Total() {
			t.Errorf("group %d total mismatch", g)
		}
		if agg[g].Taken != ws[2*g].Taken+ws[2*g+1].Taken {
			t.Errorf("group %d taken mismatch", g)
		}
	}
	// Odd trailing window is dropped.
	agg, err = Aggregate(ws[:7], Period2)
	if err != nil {
		t.Fatal(err)
	}
	if len(agg) != 3 {
		t.Errorf("7 windows at period 2 = %d groups, want 3", len(agg))
	}
}

func TestAggregateValidation(t *testing.T) {
	ws := testWindows(t, trace.Benign, 2)
	if _, err := Aggregate(ws, 0); err == nil {
		t.Error("period 0 must error")
	}
	if _, err := Extract(ws, SetInstrFreq, 4); err == nil {
		t.Error("period larger than trace must error (no complete windows)")
	}
	// Period 1 returns a copy, not an alias.
	cp, _ := Aggregate(ws, 1)
	cp[0].Taken = -999
	if ws[0].Taken == -999 {
		t.Error("Aggregate(period 1) must copy")
	}
}

func TestFeatureDistributionsDifferByClass(t *testing.T) {
	// The mean F1 vectors of benign and trojan programs must differ
	// measurably; otherwise no detector can work.
	mean := func(class trace.Class) []float64 {
		out := make([]float64, isa.NumOpcodes)
		n := 0
		for i := 0; i < 20; i++ {
			p, err := trace.NewProgram(class, i, 13)
			if err != nil {
				t.Fatal(err)
			}
			ws, err := p.Trace(4, 4096)
			if err != nil {
				t.Fatal(err)
			}
			vecs, err := Extract(ws, SetInstrFreq, Period1)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range vecs {
				for j, x := range v {
					out[j] += x
				}
				n++
			}
		}
		for j := range out {
			out[j] /= float64(n)
		}
		return out
	}
	benign := mean(trace.Benign)
	trojan := mean(trace.Trojan)
	l1 := 0.0
	for j := range benign {
		l1 += math.Abs(benign[j] - trojan[j])
	}
	if l1 < 0.05 {
		t.Errorf("benign/trojan mean L1 distance = %v, classes indistinguishable", l1)
	}
}

func TestInject(t *testing.T) {
	ws := testWindows(t, trace.Worm, 2)
	inj := make([]int, isa.NumOpcodes)
	nop, _ := isa.ByMnemonic("nop")
	mov, _ := isa.ByMnemonic("mov")
	jcc, _ := isa.ByMnemonic("jcc")
	inj[nop.Opcode] = 100
	inj[mov.Opcode] = 50
	inj[jcc.Opcode] = 40

	out, err := Inject(ws[0], inj)
	if err != nil {
		t.Fatal(err)
	}
	if out.Total() != ws[0].Total()+190 {
		t.Errorf("total = %d, want +190", out.Total())
	}
	if out.Opcode[nop.Opcode] != ws[0].Opcode[nop.Opcode]+100 {
		t.Error("nop count not updated")
	}
	// mov is a load: stride bucket 0 grows by 50.
	if out.Stride[0] != ws[0].Stride[0]+50 {
		t.Errorf("stride[0] = %d, want +50", out.Stride[0])
	}
	// jcc is conditional: taken grows by 40 * rate.
	if want := ws[0].Taken + int(40*InjectedTakenRate); out.Taken != want {
		t.Errorf("taken = %d, want %d", out.Taken, want)
	}
	// Original is untouched.
	if ws[0].Opcode[nop.Opcode] == out.Opcode[nop.Opcode] {
		t.Error("Inject must not mutate its input")
	}
}

func TestInjectValidation(t *testing.T) {
	ws := testWindows(t, trace.Worm, 1)
	if _, err := Inject(ws[0], make([]int, 3)); err == nil {
		t.Error("wrong-length injection must error")
	}
	neg := make([]int, isa.NumOpcodes)
	neg[0] = -1
	if _, err := Inject(ws[0], neg); err == nil {
		t.Error("negative injection (removal) must error")
	}
}

func TestInjectAll(t *testing.T) {
	ws := testWindows(t, trace.Worm, 4)
	inj := make([]int, isa.NumOpcodes)
	inj[0] = 10
	out, err := InjectAll(ws, inj)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(ws) {
		t.Fatalf("window count changed: %d", len(out))
	}
	for i := range out {
		if out[i].Total() != ws[i].Total()+10 {
			t.Errorf("window %d not injected", i)
		}
	}
}

func TestInjectionShiftsFeatures(t *testing.T) {
	// Injection dilutes the original distribution: the injected
	// opcode's frequency rises, everything else falls.
	ws := testWindows(t, trace.PasswordStealer, 1)
	scas, _ := isa.ByMnemonic("scas")
	nop, _ := isa.ByMnemonic("nop")
	inj := make([]int, isa.NumOpcodes)
	inj[nop.Opcode] = 2000

	before := FromWindow(ws[0], SetInstrFreq)
	after, err := Inject(ws[0], inj)
	if err != nil {
		t.Fatal(err)
	}
	afterVec := FromWindow(after, SetInstrFreq)
	if afterVec[nop.Opcode] <= before[nop.Opcode] {
		t.Error("injected opcode frequency must rise")
	}
	if afterVec[scas.Opcode] >= before[scas.Opcode] {
		t.Error("signature opcode frequency must be diluted")
	}
}

func TestOverhead(t *testing.T) {
	inj := make([]int, isa.NumOpcodes)
	inj[0] = 1024
	inj[5] = 1024
	if got := Overhead(inj, 4096); got != 0.5 {
		t.Errorf("overhead = %v, want 0.5", got)
	}
	if Overhead(inj, 0) != 0 {
		t.Error("zero window size must give 0")
	}
}

func TestConcat(t *testing.T) {
	ws := testWindows(t, trace.Benign, 4)
	vecs, err := Concat(ws, []Set{SetInstrFreq, SetMemory, SetArchEvents}, Period1)
	if err != nil {
		t.Fatal(err)
	}
	want := isa.NumOpcodes + 16 + 16
	for _, v := range vecs {
		if len(v) != want {
			t.Fatalf("concat dim = %d, want %d", len(v), want)
		}
	}
	if _, err := Concat(ws, nil, Period1); err == nil {
		t.Error("empty set list must error")
	}
}

func TestZeroWindowFeatures(t *testing.T) {
	// An all-zero window yields all-zero features, not NaNs.
	var w trace.WindowCounts
	for _, s := range []Set{SetInstrFreq, SetMemory, SetArchEvents} {
		for i, x := range FromWindow(w, s) {
			if x != 0 {
				t.Errorf("%v feature %d = %v for empty window", s, i, x)
			}
		}
	}
}
