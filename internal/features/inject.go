package features

import (
	"fmt"

	"shmd/internal/isa"
	"shmd/internal/trace"
)

// Injection models the evasion primitive of the threat model: the
// adversary modifies malware to *insert additional instructions* into
// its execution so the observed feature vectors drift toward the
// benign region. The malicious payload cannot be removed — only
// diluted — which is the constraint that makes evasion a constrained
// optimization rather than arbitrary feature editing.

// InjectedTakenRate is the taken ratio of injected conditional
// branches. Injected padding loops are crafted to be predictable;
// a fixed rate keeps the update deterministic.
const InjectedTakenRate = 0.5

// Inject returns a copy of w with inj[op] extra executions of each
// opcode added. Derived side-channels update consistently:
// conditional-branch insertions contribute taken branches at
// InjectedTakenRate, and injected memory operations land in stride
// bucket 0 (injected filler scans sequentially).
func Inject(w trace.WindowCounts, inj []int) (trace.WindowCounts, error) {
	if len(inj) != isa.NumOpcodes {
		return w, fmt.Errorf("features: injection vector has %d entries, want %d", len(inj), isa.NumOpcodes)
	}
	out := w
	extraCond := 0
	extraMem := 0
	for op, n := range inj {
		if n < 0 {
			return w, fmt.Errorf("features: negative injection at opcode %d — instructions cannot be removed", op)
		}
		if n == 0 {
			continue
		}
		ins := isa.Catalog()[op]
		out.Opcode[op] += n
		if ins.Cond {
			extraCond += n
		}
		if ins.Load || ins.Store {
			extraMem += n
		}
	}
	out.Taken += int(float64(extraCond) * InjectedTakenRate)
	out.Stride[0] += extraMem
	return out, nil
}

// InjectAll applies the same per-window injection vector to every
// window of a trace — the attacker weaves the padding uniformly
// through the program's execution.
func InjectAll(windows []trace.WindowCounts, inj []int) ([]trace.WindowCounts, error) {
	out := make([]trace.WindowCounts, len(windows))
	for i, w := range windows {
		iw, err := Inject(w, inj)
		if err != nil {
			return nil, err
		}
		out[i] = iw
	}
	return out, nil
}

// Overhead returns the execution-time dilution of an injection vector
// relative to a window size: injected instructions / original
// instructions. Attackers keep this bounded — evasive malware must
// still perform its function in reasonable time.
func Overhead(inj []int, windowSize int) float64 {
	if windowSize <= 0 {
		return 0
	}
	total := 0
	for _, n := range inj {
		total += n
	}
	return float64(total) / float64(windowSize)
}
