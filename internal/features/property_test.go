package features

import (
	"math"
	"testing"
	"testing/quick"

	"shmd/internal/isa"
	"shmd/internal/rng"
	"shmd/internal/trace"
)

// randomWindow builds an arbitrary but internally-consistent window
// from fuzz inputs.
func randomWindow(seed uint64, size int) trace.WindowCounts {
	r := rng.NewRand(seed, 0x71)
	var w trace.WindowCounts
	remaining := size
	for op := 0; op < isa.NumOpcodes-1 && remaining > 0; op++ {
		n := r.Intn(remaining + 1)
		w.Opcode[op] = n
		remaining -= n
	}
	w.Opcode[isa.NumOpcodes-1] = remaining
	branches := w.Branches()
	if branches > 0 {
		w.Taken = r.Intn(branches + 1)
	}
	mem := w.MemOps()
	left := mem
	for b := 0; b < trace.StrideBuckets-1 && left > 0; b++ {
		n := r.Intn(left + 1)
		w.Stride[b] = n
		left -= n
	}
	w.Stride[trace.StrideBuckets-1] = left
	return w
}

// Property: every feature family yields finite values in [0, 1] ranges
// appropriate to frequencies, for arbitrary windows.
func TestFeatureRangesProperty(t *testing.T) {
	check := func(seed uint64, sizeRaw uint16) bool {
		size := int(sizeRaw%8192) + 64
		w := randomWindow(seed, size)
		for _, s := range []Set{SetInstrFreq, SetMemory, SetArchEvents} {
			for _, x := range FromWindow(w, s) {
				if math.IsNaN(x) || math.IsInf(x, 0) {
					return false
				}
				if x < -1.0001 || x > 1.0001 { // call/ret balance may be negative
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

// Property: injection preserves every original count (payload intact)
// and adds exactly the injected totals.
func TestInjectPreservesPayloadProperty(t *testing.T) {
	check := func(seed uint64, injRaw [8]uint8) bool {
		w := randomWindow(seed, 2048)
		inj := make([]int, isa.NumOpcodes)
		injected := 0
		for i, v := range injRaw {
			inj[i*7%isa.NumOpcodes] += int(v)
			injected += int(v)
		}
		out, err := Inject(w, inj)
		if err != nil {
			return false
		}
		for op := range w.Opcode {
			if out.Opcode[op] < w.Opcode[op] {
				return false
			}
		}
		return out.Total() == w.Total()+injected
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

// Property: aggregation at any period preserves the total instruction
// count of the complete groups.
func TestAggregatePreservesTotalsProperty(t *testing.T) {
	check := func(seed uint64, periodRaw uint8, nRaw uint8) bool {
		period := int(periodRaw%4) + 1
		n := int(nRaw%12) + period
		windows := make([]trace.WindowCounts, n)
		total := 0
		for i := range windows {
			windows[i] = randomWindow(seed+uint64(i), 512)
		}
		groups := n / period
		for i := 0; i < groups*period; i++ {
			total += windows[i].Total()
		}
		agg, err := Aggregate(windows, period)
		if err != nil {
			return false
		}
		got := 0
		for _, g := range agg {
			got += g.Total()
		}
		return got == total && len(agg) == groups
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

// Property: the F1 vector always sums to 1 for non-empty windows.
func TestInstrFreqSumProperty(t *testing.T) {
	check := func(seed uint64) bool {
		w := randomWindow(seed, 1024)
		sum := 0.0
		for _, x := range FromWindow(w, SetInstrFreq) {
			if x < 0 {
				return false
			}
			sum += x
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}
