// Package features turns raw per-window trace measurements into the
// feature vectors HMDs consume.
//
// Three feature-vector families are implemented, matching the RHMD
// construction space the paper evaluates against (RHMD-2F/3F randomize
// across feature vectors, 2F2P/3F2P additionally across detection
// periods):
//
//	F1 — instruction-frequency features: the per-opcode execution
//	     frequencies over a window (the paper's primary features,
//	     "frequency of executed instruction categories");
//	F2 — memory-reference features: load/store densities and the
//	     stride-locality histogram;
//	F3 — architectural features: branch, call, and category-level
//	     execution behaviour.
//
// A detection period aggregates consecutive base windows before
// extraction, giving the 2P constructions their second observation
// granularity.
package features

import (
	"fmt"
	"math"

	"shmd/internal/isa"
	"shmd/internal/trace"
)

// Set selects a feature-vector family.
type Set int

// The feature families.
const (
	SetInstrFreq  Set = iota // F1
	SetMemory                // F2
	SetArchEvents            // F3

	// NumSets counts the families.
	NumSets = int(SetArchEvents) + 1
)

// Feature-vector widths.
const (
	DimInstrFreq  = isa.NumOpcodes
	DimMemory     = 16
	DimArchEvents = 16
)

// String implements fmt.Stringer.
func (s Set) String() string {
	switch s {
	case SetInstrFreq:
		return "F1-instruction-frequency"
	case SetMemory:
		return "F2-memory-reference"
	case SetArchEvents:
		return "F3-architectural-events"
	default:
		return fmt.Sprintf("set(%d)", int(s))
	}
}

// Dim returns the vector width of a family.
func (s Set) Dim() (int, error) {
	switch s {
	case SetInstrFreq:
		return DimInstrFreq, nil
	case SetMemory:
		return DimMemory, nil
	case SetArchEvents:
		return DimArchEvents, nil
	default:
		return 0, fmt.Errorf("features: unknown set %d", int(s))
	}
}

// Detection periods: the number of base windows one decision window
// aggregates. Period 1 observes trace.DefaultWindowSize instructions,
// period 2 twice that — the two periods of RHMD-xF2P.
const (
	Period1 = 1
	Period2 = 2
)

// Aggregate merges groups of `period` consecutive windows. A trailing
// partial group is dropped, matching a detector that only fires on
// full windows.
func Aggregate(windows []trace.WindowCounts, period int) ([]trace.WindowCounts, error) {
	if period < 1 {
		return nil, fmt.Errorf("features: period %d < 1", period)
	}
	if period == 1 {
		return append([]trace.WindowCounts(nil), windows...), nil
	}
	n := len(windows) / period
	out := make([]trace.WindowCounts, n)
	for g := 0; g < n; g++ {
		agg := trace.WindowCounts{}
		for k := 0; k < period; k++ {
			w := windows[g*period+k]
			for op := range agg.Opcode {
				agg.Opcode[op] += w.Opcode[op]
			}
			agg.Taken += w.Taken
			for b := range agg.Stride {
				agg.Stride[b] += w.Stride[b]
			}
		}
		out[g] = agg
	}
	return out, nil
}

// Extract computes one feature vector per aggregated window.
func Extract(windows []trace.WindowCounts, s Set, period int) ([][]float64, error) {
	if _, err := s.Dim(); err != nil {
		return nil, err
	}
	agg, err := Aggregate(windows, period)
	if err != nil {
		return nil, err
	}
	if len(agg) == 0 {
		return nil, fmt.Errorf("features: no complete windows at period %d", period)
	}
	out := make([][]float64, len(agg))
	for i, w := range agg {
		out[i] = FromWindow(w, s)
	}
	return out, nil
}

// FromWindow computes the feature vector of a single (possibly
// aggregated) window.
func FromWindow(w trace.WindowCounts, s Set) []float64 {
	switch s {
	case SetInstrFreq:
		return instrFreq(w)
	case SetMemory:
		return memoryFeatures(w)
	case SetArchEvents:
		return archFeatures(w)
	default:
		panic(fmt.Sprintf("features: unknown set %d", int(s)))
	}
}

// instrFreq is F1: normalized per-opcode frequencies.
func instrFreq(w trace.WindowCounts) []float64 {
	total := float64(w.Total())
	out := make([]float64, DimInstrFreq)
	if total == 0 {
		return out
	}
	for op, n := range w.Opcode {
		out[op] = float64(n) / total
	}
	return out
}

// memoryFeatures is F2.
func memoryFeatures(w trace.WindowCounts) []float64 {
	total := float64(w.Total())
	out := make([]float64, DimMemory)
	if total == 0 {
		return out
	}
	loads, stores, memOps, stringOps, stackOps := 0, 0, 0, 0, 0
	for _, ins := range isa.Catalog() {
		n := w.Opcode[ins.Opcode]
		if ins.Load {
			loads += n
		}
		if ins.Store {
			stores += n
		}
		if ins.Load || ins.Store {
			// Counted once even for load+store instructions (xchg,
			// movs), matching trace.WindowCounts.MemOps and keeping
			// the density a true fraction of the window.
			memOps += n
		}
		if ins.Category == isa.CatString {
			stringOps += n
		}
		switch ins.Mnemonic {
		case "push", "pop", "pushf":
			stackOps += n
		}
	}
	out[0] = float64(loads) / total
	out[1] = float64(stores) / total
	out[2] = float64(memOps) / total
	if memOps > 0 {
		out[3] = float64(loads) / float64(memOps)
	}
	// Stride-locality histogram over memory operations (8 buckets).
	strideTotal := 0
	for _, n := range w.Stride {
		strideTotal += n
	}
	entropy := 0.0
	meanBucket := 0.0
	for b, n := range w.Stride {
		if strideTotal > 0 {
			p := float64(n) / float64(strideTotal)
			out[4+b] = p
			if p > 0 {
				entropy -= p * math.Log2(p)
			}
			meanBucket += p * float64(b)
		}
	}
	out[12] = entropy / 3 // normalized by log2(8)
	out[13] = meanBucket / float64(trace.StrideBuckets-1)
	out[14] = float64(stringOps) / total
	out[15] = float64(stackOps) / total
	return out
}

// archFeatures is F3.
func archFeatures(w trace.WindowCounts) []float64 {
	total := float64(w.Total())
	out := make([]float64, DimArchEvents)
	if total == 0 {
		return out
	}
	var branches, cond, calls, rets, muls int
	var byCat [isa.NumCategories]int
	for _, ins := range isa.Catalog() {
		n := w.Opcode[ins.Opcode]
		byCat[ins.Category] += n
		if ins.Branch {
			branches += n
		}
		if ins.Cond {
			cond += n
		}
		if ins.Call {
			calls += n
		}
		if ins.Ret {
			rets += n
		}
		if ins.Mul {
			muls += n
		}
	}
	out[0] = float64(branches) / total
	if branches > 0 {
		out[1] = float64(w.Taken) / float64(branches)
	}
	out[2] = float64(cond) / total
	out[3] = float64(calls) / total
	out[4] = float64(rets) / total
	if calls+rets > 0 {
		out[5] = float64(calls-rets) / float64(calls+rets)
	}
	out[6] = float64(byCat[isa.CatSystem]+byCat[isa.CatIO]) / total
	out[7] = float64(muls) / total
	out[8] = float64(byCat[isa.CatSIMD]) / total
	out[9] = float64(byCat[isa.CatX87FPU]) / total
	out[10] = float64(byCat[isa.CatString]) / total
	out[11] = float64(byCat[isa.CatDataTransfer]) / total
	out[12] = float64(byCat[isa.CatLogical]) / total
	out[13] = float64(byCat[isa.CatShiftRotate]) / total
	out[14] = float64(byCat[isa.CatBitByte]+byCat[isa.CatFlagControl]) / total
	out[15] = float64(byCat[isa.CatMisc]+byCat[isa.CatSegmentRegister]+byCat[isa.CatDecimalArith]+byCat[isa.CatRandomNumber]) / total
	return out
}

// Concat extracts several feature sets and concatenates them per
// window — the view a reverse-engineering attacker uses against RHMD
// ("we reverse-engineer each RHMD construction using all the feature
// vectors used in the construction").
func Concat(windows []trace.WindowCounts, sets []Set, period int) ([][]float64, error) {
	if len(sets) == 0 {
		return nil, fmt.Errorf("features: no sets to concatenate")
	}
	var parts [][][]float64
	for _, s := range sets {
		p, err := Extract(windows, s, period)
		if err != nil {
			return nil, err
		}
		parts = append(parts, p)
	}
	n := len(parts[0])
	out := make([][]float64, n)
	for i := 0; i < n; i++ {
		var row []float64
		for _, p := range parts {
			row = append(row, p[i]...)
		}
		out[i] = row
	}
	return out, nil
}
