package trace

import (
	"fmt"
	"math"

	"shmd/internal/isa"
	"shmd/internal/rng"
)

// Trace replays the program deterministically and returns per-window
// instruction counts — the measurement the paper's Pin tool produces.
// Each call with the same geometry returns identical data (Section IV:
// feature collection is deterministic; the paper verified the same
// trace appears in every run).
//
// windows is the number of observation windows and windowSize the
// instructions per window.
func (p *Program) Trace(windows, windowSize int) ([]WindowCounts, error) {
	if windows < 1 || windowSize < 16 {
		return nil, fmt.Errorf("trace: invalid geometry %d windows × %d", windows, windowSize)
	}
	r := rng.NewRand(p.seed, 0x7ace)
	out := make([]WindowCounts, windows)
	phaseIdx := r.Intn(len(p.phases))
	for w := range out {
		ph := p.phases[phaseIdx]

		// Per-window behaviour: the phase mixture with window jitter.
		mix := jitterMixture(ph.mix, windowJitter, r)
		counts := apportion(mix[:], windowSize, r)
		copy(out[w].Opcode[:], counts)

		// Branch outcomes.
		branches := out[w].Branches()
		taken := int(math.Round(float64(branches) * clamp01(ph.takenRate+0.05*r.NormFloat64())))
		if taken > branches {
			taken = branches
		}
		if taken < 0 {
			taken = 0
		}
		out[w].Taken = taken

		// Memory strides over the window's load/store instructions.
		memOps := out[w].MemOps()
		var strideMix [StrideBuckets]float64
		total := 0.0
		for b := range strideMix {
			strideMix[b] = ph.strideMix[b] * math.Exp(0.15*r.NormFloat64())
			total += strideMix[b]
		}
		for b := range strideMix {
			strideMix[b] /= total
		}
		strides := apportion(strideMix[:], memOps, r)
		copy(out[w].Stride[:], strides)

		// Advance the phase Markov chain once per window.
		phaseIdx = stepMarkov(p.transitions[phaseIdx], r.Float64())
	}
	return out, nil
}

// clamp01 bounds x into [0, 1].
func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// stepMarkov picks the next state from a transition row given a
// uniform draw.
func stepMarkov(row []float64, u float64) int {
	acc := 0.0
	for i, p := range row {
		acc += p
		if u < acc {
			return i
		}
	}
	return len(row) - 1
}

// apportion distributes total integer counts across a probability
// mixture, preserving the exact total: floor allocation first, then the
// remainder goes to the entries with the largest fractional parts
// (deterministic given the jittered mixture; r breaks exact ties by
// perturbing negligibly).
func apportion(mix []float64, total int, r interface{ Float64() float64 }) []int {
	counts := make([]int, len(mix))
	if total <= 0 {
		return counts
	}
	type frac struct {
		idx int
		f   float64
	}
	fracs := make([]frac, len(mix))
	allocated := 0
	for i, p := range mix {
		exact := p * float64(total)
		counts[i] = int(exact)
		allocated += counts[i]
		fracs[i] = frac{idx: i, f: exact - float64(counts[i]) + 1e-9*r.Float64()}
	}
	// Selection of the (total - allocated) largest fractional parts.
	remaining := total - allocated
	for n := 0; n < remaining; n++ {
		best := -1
		for i := range fracs {
			if fracs[i].f >= 0 && (best < 0 || fracs[i].f > fracs[best].f) {
				best = i
			}
		}
		counts[fracs[best].idx]++
		fracs[best].f = -1
	}
	return counts
}

// InstructionStream materializes the opcode sequence of one window in
// a plausible interleaving — the Pin-like instruction-level view used
// by the characterization and latency tooling. The counts come from
// Trace; the ordering round-robins proportionally so phase structure
// is visible without storing 64k-entry slices per program in the
// dataset pipeline.
func (p *Program) InstructionStream(window WindowCounts) []isa.Instruction {
	total := window.Total()
	out := make([]isa.Instruction, 0, total)
	remaining := window.Opcode
	catalog := isa.Catalog()
	for len(out) < total {
		emitted := false
		for op := range remaining {
			if remaining[op] == 0 {
				continue
			}
			// Emit opcodes in proportion: one per pass, plus extra for
			// dominant opcodes so the interleave stays representative.
			n := 1 + remaining[op]/(isa.NumOpcodes/4)
			if n > remaining[op] {
				n = remaining[op]
			}
			for k := 0; k < n; k++ {
				out = append(out, catalog[op])
			}
			remaining[op] -= n
			emitted = true
		}
		if !emitted {
			break
		}
	}
	return out
}
