package trace

import (
	"fmt"

	"shmd/internal/isa"
	"shmd/internal/rng"
)

// Collector is the Pin-tool side of the substrate: it consumes an
// instruction stream one instruction at a time — exactly what a
// dynamic binary instrumentation callback sees — and accumulates
// per-window counts. The dataset pipeline uses Program.Trace directly
// for speed; Collector exists for stream-level tooling (the
// characterization and latency paths) and as the executable
// specification of how windows relate to instruction streams.
type Collector struct {
	windowSize int
	current    WindowCounts
	filled     int
	windows    []WindowCounts

	takenRate float64
	strideMix [StrideBuckets]float64
	rnd       interface{ Float64() float64 }
}

// NewCollector builds a collector with the given window size. The
// branch-taken rate and stride mixture parameterize the side channels
// a real tracer would observe from addresses and outcomes; the
// defaults match a typical phase.
func NewCollector(windowSize int, seed uint64) (*Collector, error) {
	if windowSize < 16 {
		return nil, fmt.Errorf("trace: window size %d too small", windowSize)
	}
	return &Collector{
		windowSize: windowSize,
		takenRate:  0.55,
		strideMix:  [StrideBuckets]float64{0.5, 0.2, 0.1, 0.08, 0.05, 0.03, 0.02, 0.02},
		rnd:        rng.NewRand(seed, 0xC011EC7),
	}, nil
}

// Observe records one executed instruction. When the window fills, it
// is sealed and a new one starts.
func (c *Collector) Observe(ins isa.Instruction) {
	c.current.Opcode[ins.Opcode]++
	if ins.Branch && c.rnd.Float64() < c.takenRate {
		c.current.Taken++
	}
	if ins.Load || ins.Store {
		// Bucket the access by a draw from the stride mixture.
		u := c.rnd.Float64()
		acc := 0.0
		bucket := StrideBuckets - 1
		for b, p := range c.strideMix {
			acc += p
			if u < acc {
				bucket = b
				break
			}
		}
		c.current.Stride[bucket]++
	}
	c.filled++
	if c.filled == c.windowSize {
		c.windows = append(c.windows, c.current)
		c.current = WindowCounts{}
		c.filled = 0
	}
}

// ObserveAll feeds a whole instruction slice.
func (c *Collector) ObserveAll(stream []isa.Instruction) {
	for _, ins := range stream {
		c.Observe(ins)
	}
}

// Windows returns the sealed windows collected so far. A trailing
// partial window is not included (detectors only fire on full
// windows).
func (c *Collector) Windows() []WindowCounts {
	return append([]WindowCounts(nil), c.windows...)
}

// Pending returns how many instructions sit in the unsealed window.
func (c *Collector) Pending() int { return c.filled }
