package trace

import (
	"math"
	"testing"

	"shmd/internal/isa"
)

func TestClassNames(t *testing.T) {
	if Benign.String() != "benign" || Worm.String() != "worm" {
		t.Error("class names wrong")
	}
	if Class(42).String() != "class(42)" {
		t.Errorf("unknown class name = %q", Class(42).String())
	}
	if Benign.IsMalware() {
		t.Error("benign must not be malware")
	}
	for _, c := range MalwareFamilies() {
		if !c.IsMalware() {
			t.Errorf("%v must be malware", c)
		}
	}
	if len(MalwareFamilies()) != NumMalwareFamilies {
		t.Errorf("family count = %d", len(MalwareFamilies()))
	}
}

func TestParseClass(t *testing.T) {
	c, err := ParseClass("trojan")
	if err != nil || c != Trojan {
		t.Errorf("ParseClass(trojan) = %v, %v", c, err)
	}
	if _, err := ParseClass("virus"); err == nil {
		t.Error("unknown class must error")
	}
}

func TestNewProgramValidation(t *testing.T) {
	if _, err := NewProgram(Class(99), 0, 1); err == nil {
		t.Error("invalid class must error")
	}
	if _, err := NewProgram(Benign, -1, 1); err == nil {
		t.Error("negative index must error")
	}
}

func TestProgramDeterminism(t *testing.T) {
	a, err := NewProgram(Trojan, 7, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewProgram(Trojan, 7, 42)
	if err != nil {
		t.Fatal(err)
	}
	ta, err := a.Trace(4, 1024)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := b.Trace(4, 1024)
	if err != nil {
		t.Fatal(err)
	}
	for w := range ta {
		if ta[w] != tb[w] {
			t.Fatalf("window %d differs between identical programs", w)
		}
	}
	// Re-tracing the same program is also deterministic.
	ta2, _ := a.Trace(4, 1024)
	for w := range ta {
		if ta[w] != ta2[w] {
			t.Fatalf("window %d differs between traces of one program", w)
		}
	}
}

func TestProgramsDiffer(t *testing.T) {
	a, _ := NewProgram(Trojan, 1, 42)
	b, _ := NewProgram(Trojan, 2, 42)
	c, _ := NewProgram(Trojan, 1, 43)
	ta, _ := a.Trace(1, 1024)
	tb, _ := b.Trace(1, 1024)
	tc, _ := c.Trace(1, 1024)
	if ta[0] == tb[0] {
		t.Error("different indices must give different traces")
	}
	if ta[0] == tc[0] {
		t.Error("different corpus seeds must give different traces")
	}
}

func TestTraceGeometry(t *testing.T) {
	p, _ := NewProgram(Benign, 0, 1)
	if _, err := p.Trace(0, 1024); err == nil {
		t.Error("zero windows must error")
	}
	if _, err := p.Trace(4, 1); err == nil {
		t.Error("tiny window must error")
	}
	ws, err := p.Trace(5, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 5 {
		t.Fatalf("window count = %d", len(ws))
	}
	for i, w := range ws {
		if w.Total() != 2048 {
			t.Errorf("window %d total = %d, want 2048", i, w.Total())
		}
	}
}

func TestWindowInternalConsistency(t *testing.T) {
	p, _ := NewProgram(Backdoor, 3, 9)
	ws, err := p.Trace(8, 4096)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range ws {
		branches := w.Branches()
		if w.Taken < 0 || w.Taken > branches {
			t.Errorf("window %d: taken %d outside [0, %d]", i, w.Taken, branches)
		}
		memOps := w.MemOps()
		strideTotal := 0
		for _, n := range w.Stride {
			if n < 0 {
				t.Errorf("window %d: negative stride count", i)
			}
			strideTotal += n
		}
		if strideTotal != memOps {
			t.Errorf("window %d: stride total %d != mem ops %d", i, strideTotal, memOps)
		}
		for op, n := range w.Opcode {
			if n < 0 {
				t.Errorf("window %d opcode %d negative count", i, op)
			}
		}
	}
}

func TestFamilySignaturesShowInTraces(t *testing.T) {
	// Averaged over programs, each malware family must over-express
	// its signature opcodes relative to benign — otherwise there is
	// nothing for an HMD to detect.
	meanFreq := func(c Class, mnemonic string) float64 {
		ins, err := isa.ByMnemonic(mnemonic)
		if err != nil {
			t.Fatal(err)
		}
		total, n := 0.0, 0
		for i := 0; i < 30; i++ {
			p, err := NewProgram(c, i, 7)
			if err != nil {
				t.Fatal(err)
			}
			ws, err := p.Trace(4, 4096)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range ws {
				total += float64(w.Opcode[ins.Opcode]) / float64(w.Total())
				n++
			}
		}
		return total / float64(n)
	}
	cases := []struct {
		class    Class
		mnemonic string
	}{
		{Backdoor, "syscall"},
		{PasswordStealer, "scas"},
		{Trojan, "rol"},
		{Worm, "movs"},
	}
	for _, tc := range cases {
		mal := meanFreq(tc.class, tc.mnemonic)
		ben := meanFreq(Benign, tc.mnemonic)
		if mal <= ben {
			t.Errorf("%v should over-express %s: %v vs benign %v", tc.class, tc.mnemonic, mal, ben)
		}
	}
}

func TestWithinFamilyDiversity(t *testing.T) {
	// Two programs of a family must not be near-duplicates.
	a, _ := NewProgram(Rogue, 0, 5)
	b, _ := NewProgram(Rogue, 1, 5)
	wa, _ := a.Trace(1, 8192)
	wb, _ := b.Trace(1, 8192)
	dist := 0.0
	for op := range wa[0].Opcode {
		d := float64(wa[0].Opcode[op]-wb[0].Opcode[op]) / 8192
		dist += math.Abs(d)
	}
	if dist < 0.05 {
		t.Errorf("within-family L1 distance = %v, suspiciously identical", dist)
	}
}

func TestApportionPreservesTotal(t *testing.T) {
	p, _ := NewProgram(Benign, 0, 2)
	for _, total := range []int{16, 100, 4096, 65536} {
		ws, err := p.Trace(1, total)
		if err != nil {
			t.Fatal(err)
		}
		if ws[0].Total() != total {
			t.Errorf("total %d preserved as %d", total, ws[0].Total())
		}
	}
}

func TestInstructionStream(t *testing.T) {
	p, _ := NewProgram(Worm, 0, 3)
	ws, _ := p.Trace(1, 1024)
	stream := p.InstructionStream(ws[0])
	if len(stream) != 1024 {
		t.Fatalf("stream length = %d", len(stream))
	}
	// The stream must contain exactly the window's opcode counts.
	var counts [isa.NumOpcodes]int
	for _, ins := range stream {
		counts[ins.Opcode]++
	}
	if counts != ws[0].Opcode {
		t.Error("stream counts do not match window counts")
	}
	// The interleaving must not be one giant run per opcode: the most
	// common opcode must not occupy one contiguous block.
	best, bestOp := 0, 0
	for op, n := range counts {
		if n > best {
			best, bestOp = n, op
		}
	}
	firstIdx, lastIdx := -1, -1
	for i, ins := range stream {
		if ins.Opcode == bestOp {
			if firstIdx < 0 {
				firstIdx = i
			}
			lastIdx = i
		}
	}
	if lastIdx-firstIdx+1 == best {
		t.Error("dominant opcode forms a contiguous run; interleave is degenerate")
	}
}

func TestProgramMetadata(t *testing.T) {
	p, _ := NewProgram(PasswordStealer, 12, 1)
	if p.Name != "password-stealer-0012" {
		t.Errorf("name = %q", p.Name)
	}
	if !p.IsMalware() {
		t.Error("password stealer must be malware")
	}
	if p.NumPhases() < 2 || p.NumPhases() > 4 {
		t.Errorf("phases = %d, want 2..4", p.NumPhases())
	}
}
