// Package trace is the program-execution substrate standing in for the
// paper's malware/benign corpus and Intel-Pin feature collection.
//
// The paper traces 3000 real malware samples (backdoors, rogues,
// password stealers, trojans, worms — from the Zoo malware database)
// and 600 benign programs on an isolated Windows 7 machine, extracting
// per-window instruction-category frequencies. That corpus cannot be
// redistributed, so this package synthesizes programs with the same
// statistical structure the detector consumes:
//
//   - each program is a seeded, deterministic generator ("we get the
//     exact same trace in every run when we supply the same input" —
//     Section IV) over execution phases;
//   - each phase carries an instruction-mixture, branch-behaviour and
//     memory-stride profile;
//   - malware families share family-characteristic signature tilts,
//     benign programs form a broader, partially overlapping family;
//   - traces expose per-window instruction counts, exactly what the
//     Pin-based extractor of the paper aggregates.
package trace

import "fmt"

// Class labels a program: benign or one of the paper's five malware
// families.
type Class int

// The dataset classes (Section IV).
const (
	Benign Class = iota
	Backdoor
	Rogue
	PasswordStealer
	Trojan
	Worm

	// NumClasses counts benign plus the five malware families.
	NumClasses = int(Worm) + 1
	// NumMalwareFamilies is the number of malware classes.
	NumMalwareFamilies = NumClasses - 1
)

var classNames = [NumClasses]string{
	"benign", "backdoor", "rogue", "password-stealer", "trojan", "worm",
}

// String implements fmt.Stringer.
func (c Class) String() string {
	if c < 0 || int(c) >= NumClasses {
		return fmt.Sprintf("class(%d)", int(c))
	}
	return classNames[c]
}

// IsMalware reports whether the class is one of the malware families.
func (c Class) IsMalware() bool { return c != Benign }

// MalwareFamilies lists the five malware classes.
func MalwareFamilies() []Class {
	return []Class{Backdoor, Rogue, PasswordStealer, Trojan, Worm}
}

// ParseClass resolves a class name.
func ParseClass(name string) (Class, error) {
	for i, n := range classNames {
		if n == name {
			return Class(i), nil
		}
	}
	return 0, fmt.Errorf("trace: unknown class %q", name)
}
