package trace

import (
	"testing"

	"shmd/internal/isa"
)

func TestCollectorValidation(t *testing.T) {
	if _, err := NewCollector(4, 1); err == nil {
		t.Error("tiny window must be rejected")
	}
}

func TestCollectorSealsWindows(t *testing.T) {
	c, err := NewCollector(64, 1)
	if err != nil {
		t.Fatal(err)
	}
	mov, _ := isa.ByMnemonic("mov")
	for i := 0; i < 64*3+10; i++ {
		c.Observe(mov)
	}
	ws := c.Windows()
	if len(ws) != 3 {
		t.Fatalf("sealed windows = %d, want 3", len(ws))
	}
	if c.Pending() != 10 {
		t.Errorf("pending = %d, want 10", c.Pending())
	}
	for i, w := range ws {
		if w.Total() != 64 {
			t.Errorf("window %d total = %d", i, w.Total())
		}
		if w.Opcode[mov.Opcode] != 64 {
			t.Errorf("window %d mov count = %d", i, w.Opcode[mov.Opcode])
		}
	}
}

func TestCollectorMatchesTraceCounts(t *testing.T) {
	// Feeding a window's materialized instruction stream back through
	// the collector must reproduce the opcode counts exactly (the
	// side channels are re-sampled, so only Opcode is compared).
	p, err := NewProgram(Worm, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	traced, err := p.Trace(2, 1024)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCollector(1024, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range traced {
		c.ObserveAll(p.InstructionStream(w))
	}
	collected := c.Windows()
	if len(collected) != len(traced) {
		t.Fatalf("collected %d windows, want %d", len(collected), len(traced))
	}
	for i := range traced {
		if collected[i].Opcode != traced[i].Opcode {
			t.Errorf("window %d opcode counts diverge", i)
		}
	}
}

func TestCollectorSideChannelsConsistent(t *testing.T) {
	p, err := NewProgram(Benign, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	traced, err := p.Trace(1, 2048)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCollector(2048, 5)
	if err != nil {
		t.Fatal(err)
	}
	c.ObserveAll(p.InstructionStream(traced[0]))
	ws := c.Windows()
	if len(ws) != 1 {
		t.Fatalf("windows = %d", len(ws))
	}
	w := ws[0]
	if w.Taken < 0 || w.Taken > w.Branches() {
		t.Errorf("taken %d outside [0, %d]", w.Taken, w.Branches())
	}
	strideTotal := 0
	for _, n := range w.Stride {
		strideTotal += n
	}
	if strideTotal != w.MemOps() {
		t.Errorf("stride total %d != mem ops %d", strideTotal, w.MemOps())
	}
}

func TestCollectorWindowsReturnsCopy(t *testing.T) {
	c, err := NewCollector(16, 1)
	if err != nil {
		t.Fatal(err)
	}
	mov, _ := isa.ByMnemonic("mov")
	for i := 0; i < 16; i++ {
		c.Observe(mov)
	}
	ws := c.Windows()
	ws[0].Taken = -99
	if c.Windows()[0].Taken == -99 {
		t.Error("Windows must return a copy")
	}
}
