package trace

import (
	"fmt"
	"math"
	"math/rand"

	"shmd/internal/isa"
	"shmd/internal/rng"
)

// Trace geometry defaults: 16 windows of 4096 instructions gives the
// ~64k-instruction executions the per-program decision aggregates, and
// lets the two RHMD detection periods (4096 and 8192) share one trace.
const (
	DefaultWindows    = 16
	DefaultWindowSize = 4096
	// StrideBuckets is the size of the memory-stride histogram.
	StrideBuckets = 8
)

// Behaviour-model calibration. These constants set how separable the
// synthetic classes are and how much behaviour varies between programs
// of a family and between windows of a program. They are tuned so the
// baseline HMD reaches the paper's ≈93% program-level accuracy regime
// with an MLP reverse-engineering effectiveness near 99% (Fig 3
// baseline bars).
const (
	familyTilt    = 1.1  // strength of a family's signature emphasis
	programJitter = 0.50 // per-program log-normal mixture jitter
	benignJitter  = 0.85 // benign corpus is a "wide variety" — more diverse
	windowJitter  = 0.32 // per-window log-normal mixture jitter
	phaseTiltVar  = 0.40 // how far a phase tilts from the program mean
)

// phase is one execution phase: an opcode mixture plus branch and
// memory behaviour.
type phase struct {
	mix       [isa.NumOpcodes]float64
	takenRate float64
	strideMix [StrideBuckets]float64
}

// Program is a deterministic synthetic program. Equal (class, index,
// corpus seed) triples produce byte-identical traces.
type Program struct {
	ID    int
	Name  string
	Class Class

	seed        uint64
	phases      []phase
	transitions [][]float64 // phase Markov chain, rows sum to 1
}

// WindowCounts is the raw per-window measurement the Pin-like tracer
// produces: per-opcode instruction counts plus the branch and memory
// side-channels the F2/F3 feature vectors summarize.
type WindowCounts struct {
	// Opcode counts per catalog entry; sums to the window size.
	Opcode [isa.NumOpcodes]int
	// Taken counts taken branches (out of the branch instructions
	// present in Opcode).
	Taken int
	// Stride histograms the load/store address deltas into buckets
	// (0 = sequential ... StrideBuckets-1 = random far).
	Stride [StrideBuckets]int
}

// Total returns the instruction count of the window.
func (w WindowCounts) Total() int {
	total := 0
	for _, n := range w.Opcode {
		total += n
	}
	return total
}

// Branches returns the number of branch instructions in the window.
func (w WindowCounts) Branches() int {
	total := 0
	for _, ins := range isa.Catalog() {
		if ins.Branch {
			total += w.Opcode[ins.Opcode]
		}
	}
	return total
}

// MemOps returns the number of load/store instructions in the window.
func (w WindowCounts) MemOps() int {
	total := 0
	for _, ins := range isa.Catalog() {
		if ins.Load || ins.Store {
			total += w.Opcode[ins.Opcode]
		}
	}
	return total
}

// baseMixture is the background opcode usage shared by all programs: a
// Zipf-flavoured profile over the catalog with the usual suspects
// (mov/add/cmp/jcc/push/pop) dominating, as in any x86 profile.
func baseMixture() [isa.NumOpcodes]float64 {
	var mix [isa.NumOpcodes]float64
	weight := func(mnemonic string, w float64) {
		ins, err := isa.ByMnemonic(mnemonic)
		if err != nil {
			panic(err)
		}
		mix[ins.Opcode] = w
	}
	// Dominant general-purpose profile.
	weight("mov", 24)
	weight("push", 7)
	weight("pop", 6)
	weight("add", 7)
	weight("sub", 4)
	weight("cmp", 8)
	weight("test", 4)
	weight("jcc", 10)
	weight("jmp", 3)
	weight("call", 3.5)
	weight("ret", 3.5)
	weight("lea", 4)
	weight("and", 1.8)
	weight("or", 1.4)
	weight("xor", 2.5)
	weight("shl", 1.0)
	weight("shr", 1.0)
	weight("movzx", 1.6)
	weight("inc", 1.2)
	weight("nop", 1.5)
	weight("imul", 0.8)
	// Everything else gets a small floor so no opcode has zero
	// probability (features stay dense).
	for i := range mix {
		if mix[i] == 0 {
			mix[i] = 0.15
		}
	}
	return normalize(mix)
}

// familySignature returns the opcode emphasis of a class: the
// behavioural signature that makes the family detectable. Weights are
// multiplicative tilts applied on top of the base mixture.
func familySignature(c Class) map[string]float64 {
	switch c {
	case Benign:
		// Benign corpus: browsers, editors, system tools, benchmarks —
		// mild emphasis on FP/SIMD and address arithmetic.
		return map[string]float64{
			"fadd": 1.8, "fmul": 1.8, "fld": 1.8, "mulps": 1.6,
			"movdqa": 1.6, "lea": 1.3, "paddd": 1.4,
		}
	case Backdoor:
		// Remote-shell behaviour: system calls, I/O waits, dispatch.
		return map[string]float64{
			"syscall": 6, "in": 5, "out": 5, "int": 4, "hlt": 3,
			"jmp": 1.6, "cmp": 1.3,
		}
	case Rogue:
		// Fake-AV UI churn: heavy call/ret and stack traffic.
		return map[string]float64{
			"call": 2.2, "ret": 2.2, "push": 1.8, "pop": 1.8,
			"movsreg": 3, "pushf": 3,
		}
	case PasswordStealer:
		// Memory scanning for credentials: string scans and loads.
		return map[string]float64{
			"scas": 8, "cmps": 7, "lods": 6,
			"movzx": 2, "xlat": 4, "bt": 2.5,
		}
	case Trojan:
		// Packed/encrypted payloads: crypto arithmetic.
		return map[string]float64{
			"xor": 3.5, "rol": 6, "shl": 2.5, "shr": 2.5,
			"mul": 5, "imul": 3, "not": 4, "bswap": 5,
		}
	case Worm:
		// Self-replication: bulk copies and network/system calls.
		return map[string]float64{
			"movs": 8, "stos": 7, "syscall": 4, "out": 4,
			"rdrand": 5,
		}
	default:
		return nil
	}
}

// normalize scales a mixture to sum to 1.
func normalize(mix [isa.NumOpcodes]float64) [isa.NumOpcodes]float64 {
	total := 0.0
	for _, w := range mix {
		total += w
	}
	if total == 0 {
		panic("trace: zero mixture")
	}
	for i := range mix {
		mix[i] /= total
	}
	return mix
}

// jitterMixture applies log-normal multiplicative noise with the given
// sigma and renormalizes.
func jitterMixture(mix [isa.NumOpcodes]float64, sigma float64, r *rand.Rand) [isa.NumOpcodes]float64 {
	for i := range mix {
		mix[i] *= math.Exp(sigma * r.NormFloat64())
	}
	return normalize(mix)
}

// NewProgram synthesizes program #index of a class under a corpus
// seed. The construction is deterministic.
func NewProgram(c Class, index int, corpusSeed uint64) (*Program, error) {
	if c < 0 || int(c) >= NumClasses {
		return nil, fmt.Errorf("trace: invalid class %d", int(c))
	}
	if index < 0 {
		return nil, fmt.Errorf("trace: negative program index %d", index)
	}
	seed := rng.DeriveSeed(corpusSeed, uint64(c)+1, uint64(index)+1)
	r := rng.NewRand(seed, 0x9009)

	// Program mean mixture: base, tilted by the family signature, then
	// per-program jitter.
	mean := baseMixture()
	for mnemonic, tilt := range familySignature(c) {
		ins, err := isa.ByMnemonic(mnemonic)
		if err != nil {
			continue // signature names not in the catalog are ignored
		}
		mean[ins.Opcode] *= math.Pow(tilt, familyTilt)
	}
	mean = normalize(mean)
	sigma := programJitter
	if c == Benign {
		sigma = benignJitter
	}
	mean = jitterMixture(mean, sigma, r)

	// Phases: 2..4 tilts of the program mean with distinct branch and
	// memory behaviour.
	nPhases := 2 + r.Intn(3)
	p := &Program{
		ID:    index,
		Name:  fmt.Sprintf("%s-%04d", c, index),
		Class: c,
		seed:  seed,
	}
	for i := 0; i < nPhases; i++ {
		ph := phase{
			mix:       jitterMixture(mean, phaseTiltVar, r),
			takenRate: 0.35 + 0.4*r.Float64(),
		}
		locality := r.Float64() // 0 = random access, 1 = sequential
		total := 0.0
		for b := 0; b < StrideBuckets; b++ {
			// Geometric decay toward far strides, steeper when local.
			ph.strideMix[b] = math.Exp(-float64(b) * (0.3 + 2.2*locality))
			total += ph.strideMix[b]
		}
		for b := range ph.strideMix {
			ph.strideMix[b] /= total
		}
		p.phases = append(p.phases, ph)
	}

	// Markov transitions: sticky diagonal with random escape mass.
	p.transitions = make([][]float64, nPhases)
	for i := range p.transitions {
		row := make([]float64, nPhases)
		stay := 0.55 + 0.3*r.Float64()
		if nPhases == 1 {
			stay = 1
		}
		row[i] = stay
		rest := 1 - stay
		for j := range row {
			if j != i {
				row[j] = rest / float64(nPhases-1)
			}
		}
		p.transitions[i] = row
	}
	return p, nil
}

// NumPhases returns the number of execution phases.
func (p *Program) NumPhases() int { return len(p.phases) }

// IsMalware reports the program's label.
func (p *Program) IsMalware() bool { return p.Class.IsMalware() }
