// Package conform is the statistical conformance suite for the
// stochastic fault injector: it checks that the geometric skip-ahead
// sampler — alias tables, fused draws, bulk kernel and all — still
// produces the exact fault process the paper's analysis assumes
// (i.i.d. Bernoulli(rate) faults with Fig 1 bit locations).
//
// Unlike the bit-identity tests in internal/faults (which pin one RNG
// stream to one output), these checks are distributional: they would
// catch a sampler that is self-consistent but wrong — an off-by-one in
// the gap law, a mis-normalized alias row, a bulk kernel that skips a
// site — by comparing large samples against the closed-form laws with
// chi-square, Kolmogorov-Smirnov, and sequential (SPRT) tests.
//
// Every check runs on a fixed seed, so the suite is deterministic: a
// failure is a real regression, not sampling noise. The significance
// levels still matter — they are the false-alarm probability a *new*
// seed would have, and they bound how surprising the pinned seed's
// statistic is allowed to be. At the suite's alpha of 1e-3 per check
// and fewer than twenty checks (scalar and batched paths together), a
// fresh seed passes the whole suite with probability better than 98%.
package conform

import (
	"fmt"
	"math"
	"math/rand"

	"shmd/internal/faults"
	"shmd/internal/fxp"
	"shmd/internal/rng"
	"shmd/internal/stats"
)

// Result is one conformance verdict: the test statistic, its p-value,
// the significance level it was judged at, and the sample size.
type Result struct {
	Name   string
	Stat   float64
	P      float64
	Alpha  float64
	N      int
	Pass   bool
	Detail string
}

func (r Result) String() string {
	status := "PASS"
	if !r.Pass {
		status = "FAIL"
	}
	return fmt.Sprintf("%s %-28s stat=%.4f p=%.2e alpha=%.0e n=%d %s",
		status, r.Name, r.Stat, r.P, r.Alpha, r.N, r.Detail)
}

// Alpha is the per-check significance level. Each check's p-value is
// computed under the null "the sampler matches the law exactly", so a
// conforming injector fails a single check with probability Alpha on a
// fresh seed.
const Alpha = 1e-3

// conformStream namespaces the suite's RNG streams away from every
// production stream label.
const conformStream = 0xC0F0

// SampleGaps collects n geometric gap draws from a production Injector
// configured at rate, by recording a DrawLog while driving the scalar
// Mul path. The returned gaps are exactly the values the injector used
// to place faults — the lazy first draw plus one draw per fault — so
// any defect in the alias table or log-inversion sampler is present in
// the sample.
func SampleGaps(rate float64, n int, seed uint64) ([]int64, error) {
	if rate <= 0 || rate >= 1 {
		return nil, fmt.Errorf("conform: gap sampling needs rate in (0,1), got %v", rate)
	}
	in, err := faults.NewInjector(rate, nil, rng.NewRand(seed, conformStream))
	if err != nil {
		return nil, err
	}
	var log faults.DrawLog
	in.StartRecord(&log)
	for len(log.Gaps) < n {
		in.Mul(1, 1)
	}
	in.StopRecord()
	return append([]int64(nil), log.Gaps[:n]...), nil
}

// SampleBulkGaps collects n gap draws like SampleGaps but through the
// fused DotRow bulk kernel (rows of width rowLen), exercising the
// segment-skipping path instead of the per-Mul countdown.
func SampleBulkGaps(rate float64, n, rowLen int, seed uint64) ([]int64, error) {
	if rate <= 0 || rate >= 1 {
		return nil, fmt.Errorf("conform: gap sampling needs rate in (0,1), got %v", rate)
	}
	if rowLen < 1 {
		return nil, fmt.Errorf("conform: row length %d", rowLen)
	}
	in, err := faults.NewInjector(rate, nil, rng.NewRand(seed, conformStream))
	if err != nil {
		return nil, err
	}
	w := make([]fxp.Value, rowLen)
	x := make([]fxp.Value, rowLen)
	for i := range w {
		w[i], x[i] = 1, 1
	}
	var log faults.DrawLog
	in.StartRecord(&log)
	for len(log.Gaps) < n {
		in.DotRow(fxp.Format{}, w, x)
	}
	in.StopRecord()
	return append([]int64(nil), log.Gaps[:n]...), nil
}

// SampleBatchDraws collects per-lane draw logs from a production
// BatchInjector driving the span-planned batch kernel: every iteration
// announces a span across all lanes (BeginSpan) and consumes it with
// DotRowBatch over all-ones rows, until each lane has recorded at
// least nGaps gap draws. The geometry knobs matter: with rowLen not
// dividing the span and spans short relative to 1/rate, gap draws
// routinely straddle row and span boundaries, exercising the pending
// carryover bookkeeping the scalar sampler never touches. Recording
// lanes take the batch planner's generic (non-fused) consume loop, but
// draw streams and fault placement are identical to the fused path —
// that equivalence is pinned bit-for-bit in internal/faults; here the
// draws themselves are held to the law.
func SampleBatchDraws(rate float64, dist *faults.Distribution, nGaps, lanes, rowLen int, seed uint64) ([]faults.DrawLog, error) {
	if rate <= 0 || rate >= 1 {
		return nil, fmt.Errorf("conform: batch sampling needs rate in (0,1), got %v", rate)
	}
	if lanes < 1 || rowLen < 1 {
		return nil, fmt.Errorf("conform: batch geometry %d lanes x %d row", lanes, rowLen)
	}
	srcs := make([]rand.Source64, lanes)
	for l := range srcs {
		srcs[l] = rng.NewSource64(seed, conformStream, 3, uint64(l))
	}
	b, err := faults.NewBatchInjector(rate, dist, srcs)
	if err != nil {
		return nil, err
	}
	logs := make([]faults.DrawLog, lanes)
	laneIDs := make([]int, lanes)
	for l := range laneIDs {
		laneIDs[l] = l
		b.Lane(l).StartRecord(&logs[l])
	}
	w := make([]fxp.Value, rowLen)
	xs := make([]fxp.Value, lanes*rowLen)
	for i := range w {
		w[i] = 1
	}
	for i := range xs {
		xs[i] = 1
	}
	bt := &fxp.Batch{Xs: xs, Stride: rowLen, WAbs: float64(rowLen)}
	out := make([]fxp.Value, lanes)
	const spanRows = 16
	for {
		done := true
		for l := range logs {
			if len(logs[l].Gaps) < nGaps {
				done = false
				break
			}
		}
		if done {
			break
		}
		// Exact-consumption contract: every announced span is walked to
		// completion before the next BeginSpan.
		b.BeginSpan(laneIDs, spanRows*rowLen)
		for r := 0; r < spanRows; r++ {
			b.DotRowBatch(fxp.Format{}, w, bt, out)
		}
	}
	for l := range laneIDs {
		b.Lane(l).StopRecord()
	}
	return logs, nil
}

// SampleBits collects nFaults fault-bit draws from a production
// Injector at rate (nil dist means the Fig 1 model), returning the
// per-bit counts.
func SampleBits(rate float64, dist *faults.Distribution, nFaults int, seed uint64) ([faults.ProductBits]float64, error) {
	var counts [faults.ProductBits]float64
	if rate <= 0 || rate > 1 {
		return counts, fmt.Errorf("conform: bit sampling needs rate in (0,1], got %v", rate)
	}
	in, err := faults.NewInjector(rate, dist, rng.NewRand(seed, conformStream))
	if err != nil {
		return counts, err
	}
	var log faults.DrawLog
	in.StartRecord(&log)
	for len(log.Bits) < nFaults {
		in.Mul(1, 1)
	}
	in.StopRecord()
	for _, b := range log.Bits[:nFaults] {
		counts[b]++
	}
	return counts, nil
}

// BinGaps histograms gap values into bins 0..kmax-1 plus a tail bin
// for gaps >= kmax.
func BinGaps(gaps []int64, kmax int) []float64 {
	bins := make([]float64, kmax+1)
	for _, g := range gaps {
		if g >= int64(kmax) {
			bins[kmax]++
		} else {
			bins[g]++
		}
	}
	return bins
}

// geomExpected returns the expected counts of the Geometric(rate) gap
// law over bins 0..kmax-1 plus the >=kmax tail, for n draws:
// P(gap = k) = (1-rate)^k * rate, P(gap >= kmax) = (1-rate)^kmax.
func geomExpected(rate float64, kmax, n int) []float64 {
	exp := make([]float64, kmax+1)
	q := 1.0
	for k := 0; k < kmax; k++ {
		exp[k] = float64(n) * rate * q
		q *= 1 - rate
	}
	exp[kmax] = float64(n) * q
	return exp
}

// GapChi2 tests sampled gaps against the closed-form Geometric(rate)
// gap law with Pearson's chi-square. Bins with expected count below 5
// are pooled, preserving the classical validity condition.
func GapChi2(gaps []int64, rate float64, alpha float64) (Result, error) {
	r := Result{Name: fmt.Sprintf("gap-chi2@%g", rate), Alpha: alpha, N: len(gaps)}
	// kmax covers the law out to the quantile where the tail still
	// expects a poolable count.
	kmax := int(math.Ceil(math.Log(5/float64(len(gaps))) / math.Log1p(-rate)))
	if kmax < 2 {
		kmax = 2
	}
	obs := BinGaps(gaps, kmax)
	exp := geomExpected(rate, kmax, len(gaps))
	pobs, pexp := stats.PoolBins(obs, exp, 5)
	stat, p, err := stats.ChiSquareGOF(pobs, pexp)
	if err != nil {
		return r, err
	}
	r.Stat, r.P = stat, p
	r.Pass = p >= alpha
	r.Detail = fmt.Sprintf("bins=%d", len(pobs))
	return r, nil
}

// GapKS tests sampled gaps against the Geometric(rate) law with a
// one-sample Kolmogorov-Smirnov test. KS assumes a continuous null —
// against the raw discrete law it rejects any sample whose largest
// atom exceeds the critical D — so the test continuifies first: each
// gap gets deterministic Uniform[0,1) jitter (seeded independently of
// the draws), and G + U has the exactly-known piecewise-linear CDF
// F(k + f) = 1 - (1-rate)^k + f·rate·(1-rate)^k. The transform is a
// bijection on distributions, so a wrong gap law is still detected.
func GapKS(gaps []int64, rate float64, seed uint64, alpha float64) (Result, error) {
	r := Result{Name: fmt.Sprintf("gap-ks@%g", rate), Alpha: alpha, N: len(gaps)}
	jit := rng.NewRand(seed, conformStream, 2)
	xs := make([]float64, len(gaps))
	for i, g := range gaps {
		xs[i] = float64(g) + jit.Float64()
	}
	cdf := func(x float64) float64 {
		if x < 0 {
			return 0
		}
		k := math.Floor(x)
		tail := math.Pow(1-rate, k)
		return 1 - tail + (x-k)*rate*tail
	}
	d, p, err := stats.KSOneSample(xs, cdf)
	if err != nil {
		return r, err
	}
	r.Stat, r.P = d, p
	r.Pass = p >= alpha
	return r, nil
}

// BitChi2 tests observed per-bit fault counts against a fault-location
// model (nil means Fig 1) with Pearson's chi-square over the faultable
// bit range, pooling underweight bins.
func BitChi2(counts [faults.ProductBits]float64, dist *faults.Distribution, alpha float64) (Result, error) {
	if dist == nil {
		dist = faults.Fig1Distribution()
	}
	n := 0.0
	for _, c := range counts {
		n += c
	}
	r := Result{Name: "bit-chi2", Alpha: alpha, N: int(n)}
	weights := dist.Weights()
	var obs, exp []float64
	for bit := faults.MinFaultBit; bit <= faults.MaxFaultBit; bit++ {
		if weights[bit] == 0 {
			if counts[bit] > 0 {
				r.Detail = fmt.Sprintf("%v faults at zero-weight bit %d", counts[bit], bit)
				return r, nil // Pass=false: mass where the law has none
			}
			continue
		}
		obs = append(obs, counts[bit])
		exp = append(exp, n*weights[bit])
	}
	pobs, pexp := stats.PoolBins(obs, exp, 5)
	stat, p, err := stats.ChiSquareGOF(pobs, pexp)
	if err != nil {
		return r, err
	}
	r.Stat, r.P = stat, p
	r.Pass = p >= alpha
	r.Detail = fmt.Sprintf("bins=%d", len(pobs))
	return r, nil
}

// Homogeneity tests whether two binned samples come from the same
// distribution (2×k contingency chi-square with margin-derived
// expectations, df = k-1 after pooling). The conformance suite uses it
// to hold the scalar and bulk execution paths to one gap law without
// assuming which one is right.
func Homogeneity(name string, a, b []float64, alpha float64) (Result, error) {
	r := Result{Name: name, Alpha: alpha}
	if len(a) != len(b) {
		return r, fmt.Errorf("conform: homogeneity bins %d vs %d", len(a), len(b))
	}
	na, nb := 0.0, 0.0
	for i := range a {
		na += a[i]
		nb += b[i]
	}
	if na == 0 || nb == 0 {
		return r, fmt.Errorf("conform: empty sample in homogeneity test")
	}
	r.N = int(na + nb)
	// Pool on the combined column expectation so both rows stay
	// aligned; the chi-square validity condition applies per cell.
	type col struct{ a, b float64 }
	var cols []col
	var ca, cb float64
	for i := range a {
		ca += a[i]
		cb += b[i]
		if (ca+cb)*math.Min(na, nb)/(na+nb) >= 5 {
			cols = append(cols, col{ca, cb})
			ca, cb = 0, 0
		}
	}
	if ca+cb > 0 {
		if len(cols) > 0 {
			cols[len(cols)-1].a += ca
			cols[len(cols)-1].b += cb
		} else {
			cols = append(cols, col{ca, cb})
		}
	}
	if len(cols) < 2 {
		return r, fmt.Errorf("conform: %d pooled columns, need 2", len(cols))
	}
	stat := 0.0
	for _, c := range cols {
		tot := c.a + c.b
		ea := tot * na / (na + nb)
		eb := tot * nb / (na + nb)
		stat += (c.a-ea)*(c.a-ea)/ea + (c.b-eb)*(c.b-eb)/eb
	}
	p := stats.ChiSquareP(stat, len(cols)-1)
	r.Stat, r.P = stat, p
	r.Pass = p >= alpha
	r.Detail = fmt.Sprintf("cols=%d", len(cols))
	return r, nil
}
