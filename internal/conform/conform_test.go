package conform

import (
	"math/rand"
	"testing"

	"shmd/internal/fann"
	"shmd/internal/faults"
	"shmd/internal/hmd"
	"shmd/internal/rng"
	"shmd/internal/trace"
)

// Fixed seeds make every check below deterministic: a failure is a
// regression in the sampler (or an intentional mutation), never lab
// noise. The significance levels quantify how surprising the pinned
// seed's statistic is allowed to be; see the package comment for the
// suite-wide false-alarm bound.
const (
	gapSeed   = 11
	bitSeed   = 12
	bulkSeed  = 13
	sprtSeed  = 14
	batchSeed = 15 // batched-sampler checks, batch_test.go
)

// TestGapLaw holds the production sampler's gap draws to the
// closed-form Geometric(rate) law at three operating points that cover
// both sampler implementations: 0.5 and 0.1 use the alias gap table,
// 1/256 sits below gapTableMinRate and uses log-inversion.
func TestGapLaw(t *testing.T) {
	for _, rate := range []float64{0.5, 0.1, 1.0 / 256} {
		n := 20000
		gaps, err := SampleGaps(rate, n, gapSeed)
		if err != nil {
			t.Fatal(err)
		}
		chi, err := GapChi2(gaps, rate, Alpha)
		if err != nil {
			t.Fatal(err)
		}
		t.Log(chi)
		if !chi.Pass {
			t.Errorf("gap law chi-square rejected at rate %g", rate)
		}
		ks, err := GapKS(gaps, rate, gapSeed, Alpha)
		if err != nil {
			t.Fatal(err)
		}
		t.Log(ks)
		if !ks.Pass {
			t.Errorf("gap law KS rejected at rate %g", rate)
		}
	}
}

// TestGapLawRejectsWrongRate is the mutation check: gaps sampled at a
// perturbed rate must fail loudly against the nominal law. If this
// test ever passes its inner assertion the suite has lost its power
// and the conformance guarantee is vacuous.
func TestGapLawRejectsWrongRate(t *testing.T) {
	gaps, err := SampleGaps(0.12, 20000, gapSeed)
	if err != nil {
		t.Fatal(err)
	}
	chi, err := GapChi2(gaps, 0.1, Alpha)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(chi)
	if chi.Pass {
		t.Error("chi-square failed to reject a 20% rate perturbation")
	}
	ks, err := GapKS(gaps, 0.1, gapSeed, Alpha)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(ks)
	if ks.Pass {
		t.Error("KS failed to reject a 20% rate perturbation")
	}
}

// TestBitLaw holds the fused fault-bit draws (the 32-bit alias path
// and the CDF path share Distribution) to the Fig 1 location model.
func TestBitLaw(t *testing.T) {
	counts, err := SampleBits(0.5, nil, 200000, bitSeed)
	if err != nil {
		t.Fatal(err)
	}
	res, err := BitChi2(counts, nil, Alpha)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res)
	if !res.Pass {
		t.Error("bit-location chi-square rejected the Fig 1 model")
	}
}

// tiltedFig1 builds the mutation model for the bit-law rejection
// checks: ~20% of each faultable bit's Fig 1 mass shifted one position
// up.
func tiltedFig1(t testing.TB) *faults.Distribution {
	t.Helper()
	w := faults.Fig1Distribution().Weights()
	var tilted [faults.ProductBits]float64
	for bit := faults.MinFaultBit; bit <= faults.MaxFaultBit; bit++ {
		tilted[bit] += 0.8 * w[bit]
		up := bit + 1
		if up > faults.MaxFaultBit {
			up = faults.MaxFaultBit
		}
		tilted[up] += 0.2 * w[bit]
	}
	dist, err := faults.NewDistribution(tilted)
	if err != nil {
		t.Fatal(err)
	}
	return dist
}

// TestBitLawRejectsPerturbedModel samples from a tilted location model
// and checks the suite rejects it against Fig 1 — the bit-law mutation
// check.
func TestBitLawRejectsPerturbedModel(t *testing.T) {
	counts, err := SampleBits(0.5, tiltedFig1(t), 200000, bitSeed)
	if err != nil {
		t.Fatal(err)
	}
	res, err := BitChi2(counts, nil, Alpha)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res)
	if res.Pass {
		t.Error("bit-location chi-square failed to reject a tilted model")
	}
}

// TestScalarBulkEquivalence holds the scalar Mul path and the fused
// DotRow bulk kernel to the same gap distribution — the distributional
// complement of the bit-identity skip-ahead tests in internal/faults.
func TestScalarBulkEquivalence(t *testing.T) {
	const rate, n, kmax = 0.1, 20000, 60
	scalar, err := SampleGaps(rate, n, bulkSeed)
	if err != nil {
		t.Fatal(err)
	}
	bulk, err := SampleBulkGaps(rate, n, 64, bulkSeed+1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Homogeneity("scalar-vs-bulk", BinGaps(scalar, kmax), BinGaps(bulk, kmax), Alpha)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res)
	if !res.Pass {
		t.Error("scalar and bulk gap distributions diverge")
	}

	// Mutation: a bulk path running at a perturbed rate must be caught.
	drifted, err := SampleBulkGaps(0.12, n, 64, bulkSeed+1)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := Homogeneity("scalar-vs-drifted-bulk", BinGaps(scalar, kmax), BinGaps(drifted, kmax), Alpha)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(bad)
	if bad.Pass {
		t.Error("homogeneity test failed to reject a drifted bulk rate")
	}
}

// TestSPRTBoundaries drives the sequential machinery on simulated
// Bernoulli streams: a stream at p0 must accept the null, streams
// drifted past the indifference region in either direction must
// reject, and empirical error rates over repeated runs must respect
// Wald's bounds.
func TestSPRTBoundaries(t *testing.T) {
	const p0, delta = 0.3, 0.1
	run := func(p float64, seed int64, maxN int) Status {
		c, err := NewRateCheck(p0, delta, 1e-3, 1e-3)
		if err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewSource(seed))
		status := Continue
		for i := 0; i < maxN && status == Continue; i++ {
			status = c.Observe(r.Float64() < p)
		}
		return status
	}
	rejectsAt := func(p float64) int {
		n := 0
		for seed := int64(0); seed < 100; seed++ {
			if run(p, seed, 20000) == RejectNull {
				n++
			}
		}
		return n
	}
	// On-target stream: across 100 seeds the two-sided false-alarm
	// bound is 2e-3 per run, so even a handful of rejections would be
	// far outside spec.
	if n := rejectsAt(p0); n > 2 {
		t.Errorf("false alarms: %d/100 on-target runs rejected (bound 2e-3/run)", n)
	}
	// Drifted streams (a full delta past the indifference edge): the
	// miss bound is beta=1e-3 per run.
	if n := rejectsAt(p0 + 2*delta); n < 98 {
		t.Errorf("misses: only %d/100 high-drift runs rejected", n)
	}
	if n := rejectsAt(p0 - 2*delta); n < 98 {
		t.Errorf("misses: only %d/100 low-drift runs rejected", n)
	}
}

// --- End-to-end detection-rate conformance ---------------------------

// flipModel builds the fixed small HMD the detection-rate check runs
// on (untrained: the check pins the stochastic *perturbation* of
// decisions, which needs a fixed model, not an accurate one).
func flipModel(t testing.TB) *hmd.HMD {
	t.Helper()
	net, err := fann.New(fann.Config{
		Layers: []int{64, 4, 1},
		Hidden: fann.SigmoidSymmetric,
		Output: fann.Sigmoid,
		Seed:   99,
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := hmd.FromNetwork(net, hmd.Config{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

var flipFixture struct {
	h        *hmd.HMD
	programs [][]trace.WindowCounts
	exact    []bool
}

// initFlipFixture lazily builds the shared model, program traces, and
// exact-inference verdicts used by both the scalar and batched
// detection-rate checks.
func initFlipFixture(t testing.TB) {
	t.Helper()
	if flipFixture.h != nil {
		return
	}
	flipFixture.h = flipModel(t)
	const nProgs = 16
	for i := 0; i < nProgs; i++ {
		cls := []trace.Class{trace.Benign, trace.Backdoor, trace.Rogue, trace.Trojan}[i%4]
		prog, err := trace.NewProgram(cls, i/4, 1)
		if err != nil {
			t.Fatal(err)
		}
		ws, err := prog.Trace(4, 256)
		if err != nil {
			t.Fatal(err)
		}
		flipFixture.programs = append(flipFixture.programs, ws)
		flipFixture.exact = append(flipFixture.exact, flipFixture.h.DetectProgram(ws).Malware)
	}
}

// flipTrial runs one Bernoulli trial of the end-to-end check: decide a
// synthetic program through an undervolted unit at rate er with an
// independent fault stream, and report whether the stochastic verdict
// flipped relative to exact inference.
func flipTrial(t testing.TB, er float64, seed uint64) bool {
	t.Helper()
	initFlipFixture(t)
	idx := int(seed) % len(flipFixture.programs)
	inj, err := faults.NewInjector(er, nil, rng.NewRand(seed, conformStream, 1))
	if err != nil {
		t.Fatal(err)
	}
	d := flipFixture.h.DetectProgramUnit(inj, flipFixture.programs[idx])
	return d.Malware != flipFixture.exact[idx]
}

// pinnedFlipRate is the golden verdict-flip probability of the fixture
// above at error rate 0.3: measured once over 20000 independent fault
// streams (seeds sprtSeed*1000000+i) and pinned. It is the end-to-end
// quantity the whole injector stack feeds — a drift here means
// decisions changed, not just draws. Re-derive after an intentional
// change by re-running that average (sum flipTrial over i in
// [0, 20000)) and updating the constant.
const (
	pinnedFlipER   = 0.3
	pinnedFlipRate = 0.0776
)

// TestDetectionRateSPRT sequentially checks the live flip rate against
// the pinned value. The indifference half-width tolerates the residual
// seed-to-seed wobble; the budget is sized several times Wald's
// expected sample number so Continue at exhaustion still carries the
// documented miss bound.
func TestDetectionRateSPRT(t *testing.T) {
	const delta = 0.03
	check, err := NewRateCheck(pinnedFlipRate, delta, 1e-3, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	status := Continue
	const maxTrials = 8000
	for i := 0; i < maxTrials && status == Continue; i++ {
		status = check.Observe(flipTrial(t, pinnedFlipER, uint64(sprtSeed*1000000+i)))
	}
	res := check.Result("detection-flip-sprt", status)
	t.Log(res)
	if !res.Pass {
		t.Errorf("flip rate drifted from pinned %.4f: %s", pinnedFlipRate, res.Detail)
	}
}
