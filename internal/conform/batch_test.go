package conform

import (
	"math/rand"
	"testing"

	"shmd/internal/faults"
	"shmd/internal/rng"
	"shmd/internal/trace"
)

// The checks in this file hold the *batched* sampler — BatchInjector's
// span-planned draws consumed through the batch-lane kernels — to the
// same closed-form laws the scalar suite enforces. The bit-identity
// tests in internal/faults prove batched == scalar stream-for-stream;
// these prove the batched machinery's draws obey the law on their own,
// so a defect that slipped into both paths at once (a shared alias
// table rebuilt wrong, a span planner consuming a biased stream) is
// still caught.

// pooledGaps concatenates the first n gap draws of every lane. Lanes
// are independent streams of the same law, so the pooled sample is
// i.i.d. and the one-sample tests apply directly.
func pooledGaps(logs []faults.DrawLog, n int) []int64 {
	out := make([]int64, 0, len(logs)*n)
	for l := range logs {
		out = append(out, logs[l].Gaps[:n]...)
	}
	return out
}

// TestBatchGapLaw holds the batched sampler's gap draws to the
// Geometric(rate) law at an alias-table rate (0.1) and a log-inversion
// rate (1/256). The geometry is adversarial on purpose: rows of width
// 7 and 112-multiplication spans mean gaps at the low rate (mean 256)
// almost always straddle row and span boundaries, so the pending-gap
// carryover between spans is on the tested path.
func TestBatchGapLaw(t *testing.T) {
	const lanes, perLane = 4, 6000
	for _, rate := range []float64{0.1, 1.0 / 256} {
		logs, err := SampleBatchDraws(rate, nil, perLane, lanes, 7, batchSeed)
		if err != nil {
			t.Fatal(err)
		}
		gaps := pooledGaps(logs, perLane)
		chi, err := GapChi2(gaps, rate, Alpha)
		if err != nil {
			t.Fatal(err)
		}
		t.Log(chi)
		if !chi.Pass {
			t.Errorf("batched gap law chi-square rejected at rate %g", rate)
		}
		ks, err := GapKS(gaps, rate, batchSeed, Alpha)
		if err != nil {
			t.Fatal(err)
		}
		t.Log(ks)
		if !ks.Pass {
			t.Errorf("batched gap law KS rejected at rate %g", rate)
		}
	}
}

// TestBatchGapLawRejectsWrongRate is the batched gap-law mutation
// check: draws planned at a perturbed rate must fail against the
// nominal law, or the batched checks above carry no power.
func TestBatchGapLawRejectsWrongRate(t *testing.T) {
	logs, err := SampleBatchDraws(0.12, nil, 6000, 4, 7, batchSeed)
	if err != nil {
		t.Fatal(err)
	}
	gaps := pooledGaps(logs, 6000)
	chi, err := GapChi2(gaps, 0.1, Alpha)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(chi)
	if chi.Pass {
		t.Error("batched chi-square failed to reject a 20% rate perturbation")
	}
	ks, err := GapKS(gaps, 0.1, batchSeed, Alpha)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(ks)
	if ks.Pass {
		t.Error("batched KS failed to reject a 20% rate perturbation")
	}
}

// TestScalarBatchEquivalence holds the scalar Mul path and the batched
// span sampler to one gap distribution without assuming which is
// right, and holds the lanes of one batch to each other — lane
// homogeneity is what batch-size invariance looks like
// distributionally.
func TestScalarBatchEquivalence(t *testing.T) {
	const rate, perLane, kmax = 0.1, 5000, 60
	scalar, err := SampleGaps(rate, 4*perLane, batchSeed)
	if err != nil {
		t.Fatal(err)
	}
	logs, err := SampleBatchDraws(rate, nil, perLane, 4, 24, batchSeed+1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Homogeneity("scalar-vs-batch", BinGaps(scalar, kmax), BinGaps(pooledGaps(logs, perLane), kmax), Alpha)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res)
	if !res.Pass {
		t.Error("scalar and batched gap distributions diverge")
	}
	lane, err := Homogeneity("lane0-vs-lane3", BinGaps(logs[0].Gaps[:perLane], kmax), BinGaps(logs[3].Gaps[:perLane], kmax), Alpha)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(lane)
	if !lane.Pass {
		t.Error("lanes of one batch draw different gap distributions")
	}

	// Mutation: a batch planner running at a drifted rate must be caught.
	drifted, err := SampleBatchDraws(0.12, nil, perLane, 4, 24, batchSeed+1)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := Homogeneity("scalar-vs-drifted-batch", BinGaps(scalar, kmax), BinGaps(pooledGaps(drifted, perLane), kmax), Alpha)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(bad)
	if bad.Pass {
		t.Error("homogeneity test failed to reject a drifted batch rate")
	}
}

// TestBatchBitLaw holds the fault-bit draws made by the span planner
// (one fused site+bit draw per presampled fault) to the Fig 1 location
// model, with the mutation pairing: a tilted model sampled through the
// batched path must be rejected against Fig 1.
func TestBatchBitLaw(t *testing.T) {
	count := func(dist *faults.Distribution, seed uint64) [faults.ProductBits]float64 {
		logs, err := SampleBatchDraws(0.5, dist, 30000, 4, 24, seed)
		if err != nil {
			t.Fatal(err)
		}
		var counts [faults.ProductBits]float64
		for l := range logs {
			for _, b := range logs[l].Bits {
				counts[b]++
			}
		}
		return counts
	}
	res, err := BitChi2(count(nil, batchSeed+2), nil, Alpha)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res)
	if !res.Pass {
		t.Error("batched bit-location chi-square rejected the Fig 1 model")
	}
	bad, err := BitChi2(count(tiltedFig1(t), batchSeed+2), nil, Alpha)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(bad)
	if bad.Pass {
		t.Error("batched bit-location chi-square failed to reject a tilted model")
	}
}

// flipTrialsBatch runs one batch of end-to-end verdict-flip trials
// through the fully batched path: lane j decides its program via
// DetectTracesUnit over a BatchInjector whose lane streams use the
// scalar trial derivation, so lane j is the exact batched counterpart
// of flipTrial(t, er, seeds[j]).
func flipTrialsBatch(t testing.TB, er float64, seeds []uint64) []bool {
	t.Helper()
	initFlipFixture(t)
	srcs := make([]rand.Source64, len(seeds))
	traces := make([][]trace.WindowCounts, len(seeds))
	exact := make([]bool, len(seeds))
	for j, seed := range seeds {
		srcs[j] = rng.NewSource64(seed, conformStream, 1)
		idx := int(seed) % len(flipFixture.programs)
		traces[j] = flipFixture.programs[idx]
		exact[j] = flipFixture.exact[idx]
	}
	b, err := faults.NewBatchInjector(er, nil, srcs)
	if err != nil {
		t.Fatal(err)
	}
	flips := make([]bool, len(seeds))
	for j, d := range flipFixture.h.DetectTracesUnit(b, traces) {
		flips[j] = d.Malware != exact[j]
	}
	return flips
}

// TestBatchDetectionRateSPRT re-runs the end-to-end detection-rate
// check through the batched serving path: trials arrive 64 lanes at a
// time from DetectTracesUnit and feed the same SPRT against the same
// pinned flip rate — pinnedFlipRate is a property of the fault law,
// not of the execution layout, so the batched path must reproduce it.
// The first batch is additionally asserted flip-for-flip equal to
// scalar trials on the same streams: the end-to-end form of the
// per-lane bit-identity guarantee.
func TestBatchDetectionRateSPRT(t *testing.T) {
	const delta = 0.03
	const lanes = 64
	check, err := NewRateCheck(pinnedFlipRate, delta, 1e-3, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	status := Continue
	const maxTrials = 8000
	for base := 0; base < maxTrials && status == Continue; base += lanes {
		seeds := make([]uint64, lanes)
		for j := range seeds {
			seeds[j] = uint64(sprtSeed*1000000 + base + j)
		}
		flips := flipTrialsBatch(t, pinnedFlipER, seeds)
		if base == 0 {
			for j, f := range flips {
				if f != flipTrial(t, pinnedFlipER, seeds[j]) {
					t.Fatalf("lane %d: batched flip trial disagrees with the scalar trial on the same stream", j)
				}
			}
		}
		for _, f := range flips {
			if status != Continue {
				break
			}
			status = check.Observe(f)
		}
	}
	res := check.Result("batch-detection-flip-sprt", status)
	t.Log(res)
	if !res.Pass {
		t.Errorf("batched flip rate drifted from pinned %.4f: %s", pinnedFlipRate, res.Detail)
	}
}
