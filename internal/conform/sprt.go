package conform

import (
	"fmt"
	"math"
)

// Wald's sequential probability ratio test, used by the conformance
// suite to hold end-to-end detection rates to their pinned golden
// values without a fixed (and wastefully conservative) sample size.
//
// A single wald tests H0: p = p0 against H1: p = p1 by accumulating
// the log-likelihood ratio one Bernoulli observation at a time and
// stopping at Wald's boundaries ln((1-beta)/alpha) (accept H1) and
// ln(beta/(1-alpha)) (accept H0); those boundaries bound the type-I
// error by alpha and the type-II error by beta regardless of when the
// walk stops. RateCheck composes two of them symmetrically around p0
// so a drift in either direction is caught.

// Status is the state of a sequential test.
type Status int

const (
	// Continue means neither boundary has been crossed yet.
	Continue Status = iota
	// AcceptNull means the data supports the pinned rate p0.
	AcceptNull
	// RejectNull means the data supports the alternative (a drifted
	// rate): the implementation no longer conforms.
	RejectNull
)

// wald is one one-sided SPRT of p0 against p1.
type wald struct {
	llr        float64
	lSucc, lFail float64 // per-observation LLR increments
	upper, lower float64 // accept-H1 / accept-H0 boundaries
	done       Status
}

func newWald(p0, p1, alpha, beta float64) *wald {
	return &wald{
		lSucc: math.Log(p1 / p0),
		lFail: math.Log((1 - p1) / (1 - p0)),
		upper: math.Log((1 - beta) / alpha),
		lower: math.Log(beta / (1 - alpha)),
	}
}

func (w *wald) observe(success bool) Status {
	if w.done != Continue {
		return w.done
	}
	if success {
		w.llr += w.lSucc
	} else {
		w.llr += w.lFail
	}
	if w.llr >= w.upper {
		w.done = RejectNull
	} else if w.llr <= w.lower {
		w.done = AcceptNull
	}
	return w.done
}

// RateCheck is a two-sided sequential conformance check of a Bernoulli
// rate against a pinned value p0: two Wald SPRTs test p0 against
// p0+delta and p0-delta. The check rejects as soon as either side
// accepts its alternative, and accepts when both sides have accepted
// the null. Delta is the indifference region half-width — drifts
// smaller than delta are tolerated by design (they are within the
// run-to-run variation the paper's figures quote).
type RateCheck struct {
	p0, delta, alpha float64
	up, down         *wald
	n, successes     int
}

// NewRateCheck builds the two-sided check. alpha and beta bound the
// per-side false-alarm and miss probabilities; the two-sided
// false-alarm probability is at most 2*alpha.
func NewRateCheck(p0, delta, alpha, beta float64) (*RateCheck, error) {
	if p0-delta <= 0 || p0+delta >= 1 {
		return nil, fmt.Errorf("conform: rate check needs (p0±delta) in (0,1), got p0=%v delta=%v", p0, delta)
	}
	if alpha <= 0 || alpha >= 1 || beta <= 0 || beta >= 1 {
		return nil, fmt.Errorf("conform: alpha=%v beta=%v outside (0,1)", alpha, beta)
	}
	return &RateCheck{
		p0: p0, delta: delta, alpha: alpha,
		up:   newWald(p0, p0+delta, alpha, beta),
		down: newWald(p0, p0-delta, alpha, beta),
	}, nil
}

// Observe feeds one Bernoulli trial. It returns RejectNull the moment
// either side concludes the rate drifted, AcceptNull once both sides
// have concluded it did not, and Continue otherwise.
func (c *RateCheck) Observe(success bool) Status {
	c.n++
	if success {
		c.successes++
	}
	u := c.up.observe(success)
	d := c.down.observe(success)
	if u == RejectNull || d == RejectNull {
		return RejectNull
	}
	if u == AcceptNull && d == AcceptNull {
		return AcceptNull
	}
	return Continue
}

// N returns the number of observations fed so far.
func (c *RateCheck) N() int { return c.n }

// UpCheck is a one-sided sequential drift check: a single Wald SPRT of
// H0: p = p0 against H1: p = p1 with p1 > p0. RejectNull means the
// rate drifted up to (at least) p1; AcceptNull means the data supports
// p0. It exists for rates pinned at a boundary — a success rate near 0
// (or, mirrored by the caller, near 1) leaves no room below p0 for the
// two-sided RateCheck's down test, but an upward drift is still the
// failure mode worth catching (the serve canary uses it to compare a
// candidate model's verdict stream against an incumbent that almost
// never, or almost always, fires).
type UpCheck struct {
	w            *wald
	n, successes int
}

// NewUpCheck builds the one-sided check. Requires 0 < p0 < p1 < 1;
// alpha bounds the false-alarm probability, beta the miss probability.
func NewUpCheck(p0, p1, alpha, beta float64) (*UpCheck, error) {
	if !(p0 > 0 && p0 < p1 && p1 < 1) {
		return nil, fmt.Errorf("conform: up check needs 0 < p0 < p1 < 1, got p0=%v p1=%v", p0, p1)
	}
	if alpha <= 0 || alpha >= 1 || beta <= 0 || beta >= 1 {
		return nil, fmt.Errorf("conform: alpha=%v beta=%v outside (0,1)", alpha, beta)
	}
	return &UpCheck{w: newWald(p0, p1, alpha, beta)}, nil
}

// Observe feeds one Bernoulli trial: RejectNull once the walk supports
// the drifted rate p1, AcceptNull once it supports p0, Continue before
// either boundary is crossed.
func (c *UpCheck) Observe(success bool) Status {
	c.n++
	if success {
		c.successes++
	}
	return c.w.observe(success)
}

// N returns the number of observations fed so far.
func (c *UpCheck) N() int { return c.n }

// Rate returns the observed success rate.
func (c *UpCheck) Rate() float64 {
	if c.n == 0 {
		return 0
	}
	return float64(c.successes) / float64(c.n)
}

// Rate returns the observed success rate.
func (c *RateCheck) Rate() float64 {
	if c.n == 0 {
		return 0
	}
	return float64(c.successes) / float64(c.n)
}

// Result packages the check's state. A walk still in Continue when the
// caller's sample budget ran out passes: Wald's bounds guarantee a
// rate drifted by at least delta would have been rejected with
// probability >= 1-beta within the budget (the budget must be sized
// above the expected sample number, roughly ln(beta/(1-alpha)) /
// E[llr increment] ≈ 2·ln(1/alpha)·p0(1-p0)/delta² trials).
func (c *RateCheck) Result(name string, status Status) Result {
	r := Result{
		Name:  name,
		Stat:  c.Rate(),
		Alpha: 2 * c.alpha,
		N:     c.n,
		Pass:  status != RejectNull,
	}
	switch status {
	case AcceptNull:
		r.Detail = fmt.Sprintf("accepted p0=%g after %d trials (rate %.4f)", c.p0, c.n, c.Rate())
	case RejectNull:
		r.Detail = fmt.Sprintf("rejected p0=%g: observed %.4f, indifference ±%g", c.p0, c.Rate(), c.delta)
	default:
		r.Detail = fmt.Sprintf("budget exhausted at %d trials inside indifference region (rate %.4f)", c.n, c.Rate())
	}
	return r
}
