package chaos

import (
	"fmt"
	"math/rand"
	"sync"

	"shmd/internal/rng"
	"shmd/internal/volt"
)

// Env wraps a volt.Regulator and presents the same voltage-plane
// surface (it satisfies core.Plane structurally), but every write may
// suffer an injected environmental fault, and the effective operating
// point — temperature, supply — drifts underneath the caller between
// calibrations. Reads stay truthful: sensors keep working even when
// the write path is dead, which is what lets a supervisor verify the
// plane is nominal after a failure.
//
// Stateful fault durations are counted in plane writes (SetUndervolt,
// CalibrateToRate, SetTemperature); a typical detection cycle performs
// two (enter and exit).
//
// An Env is safe for concurrent use.
type Env struct {
	mu  sync.Mutex
	reg *volt.Regulator
	cfg Config
	rnd *rand.Rand

	// baseTempC is the commanded die temperature; the regulator holds
	// baseTempC + driftC while an excursion is active.
	baseTempC float64
	driftC    float64
	driftLeft int

	droopMV   float64
	droopLeft int

	contendLeft int
	crashLeft   int
	dead        bool

	// pendingTransients is the scripted transient burst: that many
	// upcoming writes fail.
	pendingTransients int

	ev Events
}

// NewEnv wraps reg in a fault-injecting environment.
func NewEnv(reg *volt.Regulator, cfg Config) (*Env, error) {
	if reg == nil {
		return nil, fmt.Errorf("chaos: nil regulator")
	}
	for _, r := range cfg.Rules {
		if err := r.validate(); err != nil {
			return nil, err
		}
	}
	if cfg.CrashMarginMV == 0 {
		cfg.CrashMarginMV = DefaultCrashMarginMV
	}
	if cfg.CrashMarginMV < 0 {
		return nil, fmt.Errorf("chaos: negative crash margin %v", cfg.CrashMarginMV)
	}
	return &Env{
		reg:       reg,
		cfg:       cfg,
		rnd:       rng.NewRand(cfg.Seed, 0xC4A05),
		baseTempC: reg.Temperature(),
	}, nil
}

// Regulator returns the wrapped ideal device (tests and demos inspect
// it; production code talks only to the Env).
func (e *Env) Regulator() *volt.Regulator { return e.reg }

// Trigger fires a fault immediately, bypassing the probability rules —
// tests and demos script deterministic scenarios with it. For
// TransientMSR, Duration is the number of upcoming writes to fail
// (default 1); for the stateful kinds it is the persistence in writes.
func (e *Env) Trigger(r Rule) error {
	if err := r.validate(); err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	switch r.Kind {
	case TransientMSR:
		n := r.Duration
		if n <= 0 {
			n = 1
		}
		e.pendingTransients += n
	case PermanentMSR:
		e.dead = true
		e.ev.Permanents++
	case LockContention:
		e.contendLeft = r.duration()
		e.ev.Contentions++
	case ThermalExcursion:
		e.driftC = r.Magnitude
		e.driftLeft = r.duration()
		e.applyTemp()
		e.ev.Excursions++
	case SupplyDroop:
		e.droopMV = r.Magnitude
		e.droopLeft = r.duration()
		e.ev.Droops++
	case Crash:
		e.crash(r.duration())
	}
	return nil
}

// Events returns a snapshot of the injected-fault counters.
func (e *Env) Events() Events {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.ev
}

// Dead reports whether the regulator has failed permanently.
func (e *Env) Dead() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.dead
}

// Crashed reports whether the plane is mid-reboot after a crash.
func (e *Env) Crashed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.crashLeft > 0
}

// DriftC returns the active thermal-excursion offset in °C.
func (e *Env) DriftC() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.driftC
}

// DroopMV returns the active uncommanded supply sag in mV.
func (e *Env) DroopMV() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.droopMV
}

// --- the core.Plane surface -------------------------------------------

// Lock forwards to the regulator; a dead regulator or a contended
// mailbox rejects it. Lock attempts do not advance the environment.
func (e *Env) Lock(owner string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.dead {
		return permErr()
	}
	if e.contendLeft > 0 {
		return contendErr()
	}
	return e.reg.Lock(owner)
}

// Unlock forwards to the regulator.
func (e *Env) Unlock(owner string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.dead {
		return permErr()
	}
	return e.reg.Unlock(owner)
}

// Owner forwards to the regulator.
func (e *Env) Owner() string { return e.reg.Owner() }

// Profile forwards the device calibration.
func (e *Env) Profile() volt.DeviceProfile { return e.reg.Profile() }

// SetUndervolt is a plane write: the environment advances, injected
// faults may reject it, and a depth landing inside the crash margin
// (after droop) may crash the core.
func (e *Env) SetUndervolt(caller string, depthMV float64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.advance(); err != nil {
		return err
	}
	if err := e.reg.SetUndervolt(caller, depthMV); err != nil {
		return err
	}
	return e.maybeCrash(depthMV)
}

// CalibrateToRate is a plane write subject to the same injection as
// SetUndervolt; the depth it lands on is crash-checked too.
func (e *Env) CalibrateToRate(caller string, rate float64) (float64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.advance(); err != nil {
		return 0, err
	}
	depth, err := e.reg.CalibrateToRate(caller, rate)
	if err != nil {
		return 0, err
	}
	if err := e.maybeCrash(depth); err != nil {
		return 0, err
	}
	return depth, nil
}

// SetTemperature commands a new base die temperature (a plane write);
// an active excursion keeps drifting on top of it.
func (e *Env) SetTemperature(tempC float64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.advance(); err != nil {
		return err
	}
	if err := e.reg.SetTemperature(tempC); err != nil {
		return err
	}
	e.baseTempC = tempC
	e.applyTemp()
	return nil
}

// Temperature returns the true die temperature, drift included — the
// sensor a recalibration loop reads.
func (e *Env) Temperature() float64 { return e.reg.Temperature() }

// UndervoltMV returns the commanded depth below nominal.
func (e *Env) UndervoltMV() float64 { return e.reg.UndervoltMV() }

// SupplyVoltage returns the true rail voltage, droop included.
func (e *Env) SupplyVoltage() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return volt.SupplyVoltageAt(e.reg.UndervoltMV() + e.droopMV)
}

// ErrorRate returns the fault rate the silicon actually produces at
// the effective operating point — commanded depth plus droop, at the
// true (possibly drifted) temperature. This is what makes calibration
// drift observable: it can differ from the rate the caller calibrated
// for.
func (e *Env) ErrorRate() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.reg.Profile().ErrorRate(e.reg.UndervoltMV()+e.droopMV, e.reg.Temperature())
}

// --- fault machinery --------------------------------------------------

// advance moves the environment forward one plane write: armed rules
// roll, the write is rejected if a fault gates it, and stateful faults
// age by one write on the way out (so a fault with Duration n gates
// exactly n writes, counting the one that armed it). Callers hold
// e.mu.
func (e *Env) advance() error {
	if e.dead {
		return permErr()
	}
	e.ev.Writes++
	oneshot := e.sample()
	defer e.tick()
	if e.dead {
		return permErr()
	}
	if e.crashLeft > 0 {
		return crashErr()
	}
	if e.contendLeft > 0 {
		return contendErr()
	}
	if e.pendingTransients > 0 {
		e.pendingTransients--
		e.ev.Transients++
		return transientErr()
	}
	if oneshot {
		e.ev.Transients++
		return transientErr()
	}
	return nil
}

// tick ages the stateful faults by one write, restoring the
// environment when one expires.
func (e *Env) tick() {
	if e.crashLeft > 0 {
		e.crashLeft--
	}
	if e.contendLeft > 0 {
		e.contendLeft--
	}
	if e.droopLeft > 0 {
		e.droopLeft--
		if e.droopLeft == 0 {
			e.droopMV = 0
		}
	}
	if e.driftLeft > 0 {
		e.driftLeft--
		if e.driftLeft == 0 {
			e.driftC = 0
			e.applyTemp()
		}
	}
}

// sample rolls every armed rule for this write. Crash rules do not
// roll here — their P is the conditional crash probability applied
// when a write lands inside the crash margin (see maybeCrash).
func (e *Env) sample() (oneshotTransient bool) {
	for _, r := range e.cfg.Rules {
		if r.P <= 0 || r.Kind == Crash || e.rnd.Float64() >= r.P {
			continue
		}
		switch r.Kind {
		case TransientMSR:
			oneshotTransient = true
		case PermanentMSR:
			e.dead = true
			e.ev.Permanents++
		case LockContention:
			if e.contendLeft == 0 {
				e.contendLeft = r.duration()
				e.ev.Contentions++
			}
		case ThermalExcursion:
			if e.driftLeft == 0 {
				e.driftC = r.Magnitude
				e.driftLeft = r.duration()
				e.applyTemp()
				e.ev.Excursions++
			}
		case SupplyDroop:
			if e.droopLeft == 0 {
				e.droopMV = r.Magnitude
				e.droopLeft = r.duration()
				e.ev.Droops++
			}
		}
	}
	return oneshotTransient
}

// maybeCrash rolls the crash rule after a write landed depthMV: inside
// the crash margin (droop included), the core hangs with the rule's
// probability. Callers hold e.mu.
func (e *Env) maybeCrash(depthMV float64) error {
	margin := e.reg.Profile().FreezeMV - e.cfg.CrashMarginMV
	if depthMV+e.droopMV < margin {
		return nil
	}
	for _, r := range e.cfg.Rules {
		if r.Kind != Crash || r.P <= 0 {
			continue
		}
		if e.rnd.Float64() < r.P {
			e.crash(r.duration())
			return crashErr()
		}
	}
	return nil
}

// crash hangs the plane: the watchdog reboot forces the rail back to
// nominal (the fail-safe a real reset gives you) and rejects writes
// for n more writes. Callers hold e.mu.
func (e *Env) crash(n int) {
	e.crashLeft = n
	e.ev.Crashes++
	owner := e.reg.Owner()
	if owner == "" {
		owner = "chaos-watchdog"
	}
	// The reboot cannot fail in the model; depth 0 is always legal.
	_ = e.reg.SetUndervolt(owner, 0)
}

// applyTemp pushes base + drift to the regulator, clamped to the
// sensor range. Callers hold e.mu.
func (e *Env) applyTemp() {
	t := e.baseTempC + e.driftC
	if t < -40 {
		t = -40
	}
	if t > 110 {
		t = 110
	}
	_ = e.reg.SetTemperature(t)
}

func transientErr() error { return &planeError{sentinel: ErrTransient} }
func contendErr() error   { return &planeError{sentinel: ErrContended} }
func crashErr() error     { return &planeError{sentinel: ErrCrashed} }
func permErr() error      { return &planeError{sentinel: ErrPermanent, perm: true} }
