// Package chaos perturbs the environment the Stochastic-HMD operates
// in. The paper's deployment (Section IX) holds the detection core
// just above crash voltage, where real hardware is anything but ideal:
// MSR writes to the overclocking mailbox fail transiently, other
// agents contend for the voltage plane, die temperature drifts the
// fault rate away from its calibration, supply droop pushes the
// effective depth toward the crash margin, and the regulator itself
// can die. Package volt models none of that — its Regulator is an
// ideal device — so this package wraps a Regulator in an Env that
// injects exactly those faults, driven by seeded per-operation
// probability rules plus deterministic scripted triggers.
//
// The shape follows rule-driven fault-injection middleware (one rule
// per fault kind, each with a probability and, for stateful kinds, a
// duration and magnitude); the consumer is core.Supervisor, which must
// ride through everything injected here.
package chaos

import (
	"errors"
	"fmt"
)

// Kind enumerates the environmental fault taxonomy.
type Kind int

const (
	// TransientMSR fails a single voltage-plane write; the next
	// attempt succeeds. Models mailbox timeouts and bus glitches.
	TransientMSR Kind = iota
	// PermanentMSR kills the regulator: every subsequent write fails
	// forever. Models a failed VR or revoked undervolting interface.
	PermanentMSR
	// LockContention makes writes fail while another agent holds the
	// voltage-plane mailbox; clears after Duration writes.
	LockContention
	// ThermalExcursion shifts the die temperature by Magnitude °C for
	// Duration writes, drifting the effective fault rate away from the
	// calibrated operating point (hotter silicon faults at shallower
	// undervolt).
	ThermalExcursion
	// SupplyDroop adds Magnitude mV of uncommanded sag to the
	// effective depth for Duration writes — the fault rate rises and
	// the crash margin shrinks without any MSR write.
	SupplyDroop
	// Crash hangs the detection core when a write lands the effective
	// depth inside the crash margin; the watchdog reboots the plane to
	// nominal over Duration writes, during which writes fail.
	Crash
	numKinds
)

// String names the fault kind for logs and health reports.
func (k Kind) String() string {
	switch k {
	case TransientMSR:
		return "transient-msr"
	case PermanentMSR:
		return "permanent-msr"
	case LockContention:
		return "lock-contention"
	case ThermalExcursion:
		return "thermal-excursion"
	case SupplyDroop:
		return "supply-droop"
	case Crash:
		return "crash"
	default:
		return fmt.Sprintf("chaos.Kind(%d)", int(k))
	}
}

// Rule arms one fault kind. P is the per-write probability of the
// fault firing; Duration is how many plane writes a stateful fault
// persists (contention, excursion, droop, crash reboot); Magnitude is
// the fault size (°C for ThermalExcursion, mV for SupplyDroop).
type Rule struct {
	Kind      Kind
	P         float64
	Duration  int
	Magnitude float64
}

func (r Rule) validate() error {
	if r.Kind < 0 || r.Kind >= numKinds {
		return fmt.Errorf("chaos: unknown fault kind %d", int(r.Kind))
	}
	if r.P < 0 || r.P > 1 {
		return fmt.Errorf("chaos: %v probability %v outside [0,1]", r.Kind, r.P)
	}
	switch r.Kind {
	case LockContention, ThermalExcursion, SupplyDroop, Crash:
		if r.Duration < 0 {
			return fmt.Errorf("chaos: %v duration %d < 0", r.Kind, r.Duration)
		}
	}
	return nil
}

// duration returns the rule's persistence, defaulted for stateful
// kinds armed without one.
func (r Rule) duration() int {
	if r.Duration > 0 {
		return r.Duration
	}
	return defaultDuration
}

const defaultDuration = 8

// Config configures an Env. Rules may repeat a kind; each rule rolls
// independently per write.
type Config struct {
	// Seed drives the fault stream; runs with the same seed inject
	// the same faults at the same writes.
	Seed uint64
	// Rules is the armed probabilistic fault set. An empty set makes
	// the Env a transparent wrapper that only fires scripted triggers.
	Rules []Rule
	// CrashMarginMV is how close (mV) the effective depth — commanded
	// depth plus droop — may come to the device freeze depth before a
	// write risks a crash. Zero selects DefaultCrashMarginMV.
	CrashMarginMV float64
}

// DefaultCrashMarginMV is the crash-risk band below the freeze depth.
const DefaultCrashMarginMV = 12.0

// DefaultConfig arms every fault kind at modest rates — enough that a
// long detection run exercises each, while any single detection almost
// always needs at most a retry or two.
func DefaultConfig(seed uint64) Config {
	return Config{
		Seed: seed,
		Rules: []Rule{
			{Kind: TransientMSR, P: 0.02},
			{Kind: LockContention, P: 0.004, Duration: 3},
			{Kind: ThermalExcursion, P: 0.004, Duration: 40, Magnitude: 35},
			{Kind: SupplyDroop, P: 0.004, Duration: 20, Magnitude: 25},
			{Kind: Crash, P: 0.5, Duration: 6},
		},
		CrashMarginMV: DefaultCrashMarginMV,
	}
}

// Sentinel errors for injected faults. Callers classify retryability
// with Transient/Permanent (or the Permanent() method the error
// values carry) rather than matching sentinels directly.
var (
	ErrTransient = errors.New("chaos: transient MSR write failure")
	ErrPermanent = errors.New("chaos: voltage regulator failed permanently")
	ErrContended = errors.New("chaos: voltage-plane mailbox held by another agent")
	ErrCrashed   = errors.New("chaos: detection core crashed, watchdog rebooting")
)

// planeError is the concrete injected-fault error: it unwraps to its
// sentinel and reports permanence so consumers that cannot import
// this package (or do not want to) can classify it structurally via
// interface{ Permanent() bool }.
type planeError struct {
	sentinel error
	perm     bool
	detail   string
}

func (e *planeError) Error() string {
	if e.detail == "" {
		return e.sentinel.Error()
	}
	return e.sentinel.Error() + ": " + e.detail
}

func (e *planeError) Unwrap() error   { return e.sentinel }
func (e *planeError) Permanent() bool { return e.perm }

// Transient reports whether err is an injected fault worth retrying.
func Transient(err error) bool {
	return errors.Is(err, ErrTransient) || errors.Is(err, ErrContended) ||
		errors.Is(err, ErrCrashed)
}

// Permanent reports whether err is an injected fault that no retry
// will clear.
func Permanent(err error) bool {
	var p interface{ Permanent() bool }
	return errors.As(err, &p) && p.Permanent()
}

// Events counts injected faults by kind, plus the writes observed —
// the Env-side half of the health picture (core.Supervisor holds the
// recovery-side half).
type Events struct {
	Writes      uint64
	Transients  uint64
	Permanents  uint64
	Contentions uint64
	Excursions  uint64
	Droops      uint64
	Crashes     uint64
}
