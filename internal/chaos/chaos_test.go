package chaos

import (
	"errors"
	"math"
	"testing"

	"shmd/internal/volt"
)

func newEnv(t *testing.T, cfg Config) *Env {
	t.Helper()
	reg, err := volt.NewRegulator(volt.PlaneCore, volt.DefaultProfile())
	if err != nil {
		t.Fatal(err)
	}
	env, err := NewEnv(reg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestNewEnvValidation(t *testing.T) {
	if _, err := NewEnv(nil, Config{}); err == nil {
		t.Error("nil regulator must be rejected")
	}
	reg, err := volt.NewRegulator(volt.PlaneCore, volt.DefaultProfile())
	if err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Rules: []Rule{{Kind: Kind(99), P: 0.1}}},
		{Rules: []Rule{{Kind: TransientMSR, P: 1.5}}},
		{Rules: []Rule{{Kind: SupplyDroop, P: 0.1, Duration: -1}}},
		{CrashMarginMV: -3},
	}
	for i, cfg := range bad {
		if _, err := NewEnv(reg, cfg); err == nil {
			t.Errorf("config %d must be rejected", i)
		}
	}
}

func TestTransparentWithoutRules(t *testing.T) {
	env := newEnv(t, Config{Seed: 1})
	if err := env.SetUndervolt("x", 130); err != nil {
		t.Fatal(err)
	}
	if got := env.UndervoltMV(); got != 130 {
		t.Errorf("depth = %v", got)
	}
	want := env.Regulator().ErrorRate()
	if got := env.ErrorRate(); math.Abs(got-want) > 1e-12 {
		t.Errorf("error rate %v, regulator says %v", got, want)
	}
	if err := env.SetUndervolt("x", 0); err != nil {
		t.Fatal(err)
	}
}

func TestScriptedTransientBurst(t *testing.T) {
	env := newEnv(t, Config{Seed: 1})
	if err := env.Trigger(Rule{Kind: TransientMSR, Duration: 2}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		err := env.SetUndervolt("x", 100)
		if !errors.Is(err, ErrTransient) {
			t.Fatalf("write %d: err = %v, want ErrTransient", i, err)
		}
		if !Transient(err) || Permanent(err) {
			t.Errorf("transient fault misclassified: %v", err)
		}
	}
	if err := env.SetUndervolt("x", 100); err != nil {
		t.Fatalf("burst must clear after 2 writes: %v", err)
	}
	if ev := env.Events(); ev.Transients != 2 {
		t.Errorf("transients = %d", ev.Transients)
	}
}

func TestPermanentDeath(t *testing.T) {
	env := newEnv(t, Config{Seed: 1})
	if err := env.Trigger(Rule{Kind: PermanentMSR}); err != nil {
		t.Fatal(err)
	}
	if !env.Dead() {
		t.Fatal("env not dead after permanent trigger")
	}
	err := env.SetUndervolt("x", 100)
	if !errors.Is(err, ErrPermanent) || !Permanent(err) {
		t.Fatalf("err = %v, want permanent", err)
	}
	if err := env.Lock("y"); !errors.Is(err, ErrPermanent) {
		t.Errorf("Lock on dead env: %v", err)
	}
	// Reads survive: the sensor path outlives the write path.
	if got := env.UndervoltMV(); got != 0 {
		t.Errorf("depth readable = %v", got)
	}
	if got := env.SupplyVoltage(); got != volt.NominalVoltage {
		t.Errorf("supply = %v", got)
	}
}

func TestLockContentionWindow(t *testing.T) {
	env := newEnv(t, Config{Seed: 1})
	if err := env.Trigger(Rule{Kind: LockContention, Duration: 2}); err != nil {
		t.Fatal(err)
	}
	if err := env.Lock("x"); !errors.Is(err, ErrContended) {
		t.Errorf("Lock during contention: %v", err)
	}
	// Writes tick the window down while failing.
	if err := env.SetUndervolt("x", 50); !errors.Is(err, ErrContended) {
		t.Errorf("write 1: %v", err)
	}
	if err := env.SetUndervolt("x", 50); !errors.Is(err, ErrContended) {
		t.Errorf("write 2: %v", err)
	}
	if err := env.SetUndervolt("x", 50); err != nil {
		t.Fatalf("contention must clear: %v", err)
	}
}

func TestThermalExcursionDriftsRate(t *testing.T) {
	env := newEnv(t, Config{Seed: 1})
	if err := env.SetUndervolt("x", 130); err != nil {
		t.Fatal(err)
	}
	calm := env.ErrorRate()
	if err := env.Trigger(Rule{Kind: ThermalExcursion, Magnitude: 40, Duration: 3}); err != nil {
		t.Fatal(err)
	}
	if got := env.Temperature(); math.Abs(got-(volt.ReferenceTempC+40)) > 1e-9 {
		t.Errorf("temperature = %v", got)
	}
	hot := env.ErrorRate()
	if hot <= calm {
		t.Errorf("excursion must raise the fault rate: %v -> %v", calm, hot)
	}
	// Age the excursion out: three writes.
	for i := 0; i < 3; i++ {
		if err := env.SetUndervolt("x", 130); err != nil {
			t.Fatal(err)
		}
	}
	if got := env.Temperature(); math.Abs(got-volt.ReferenceTempC) > 1e-9 {
		t.Errorf("temperature after expiry = %v", got)
	}
	if got := env.ErrorRate(); math.Abs(got-calm) > 1e-12 {
		t.Errorf("rate after expiry = %v, want %v", got, calm)
	}
}

func TestSupplyDroopRaisesEffectiveDepth(t *testing.T) {
	env := newEnv(t, Config{Seed: 1})
	if err := env.SetUndervolt("x", 130); err != nil {
		t.Fatal(err)
	}
	calm := env.ErrorRate()
	if err := env.Trigger(Rule{Kind: SupplyDroop, Magnitude: 30, Duration: 2}); err != nil {
		t.Fatal(err)
	}
	if got := env.DroopMV(); got != 30 {
		t.Errorf("droop = %v", got)
	}
	if got := env.ErrorRate(); got <= calm {
		t.Errorf("droop must raise the fault rate: %v -> %v", calm, got)
	}
	wantSupply := volt.SupplyVoltageAt(160)
	if got := env.SupplyVoltage(); math.Abs(got-wantSupply) > 1e-12 {
		t.Errorf("supply = %v, want %v", got, wantSupply)
	}
	// The commanded depth is unchanged — droop is uncommanded sag.
	if got := env.UndervoltMV(); got != 130 {
		t.Errorf("commanded depth = %v", got)
	}
}

func TestCrashInsideMargin(t *testing.T) {
	env := newEnv(t, Config{
		Seed:          1,
		Rules:         []Rule{{Kind: Crash, P: 1, Duration: 2}},
		CrashMarginMV: 12,
	})
	freeze := env.Profile().FreezeMV
	// Outside the margin: safe.
	if err := env.SetUndervolt("x", freeze-20); err != nil {
		t.Fatalf("safe depth crashed: %v", err)
	}
	// Inside the margin: crashes with P=1, and the watchdog reboot
	// fails the write and forces the rail to nominal.
	err := env.SetUndervolt("x", freeze-5)
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
	if !env.Crashed() {
		t.Error("env not mid-reboot")
	}
	if got := env.UndervoltMV(); got != 0 {
		t.Errorf("crash must reset the rail to nominal, depth = %v", got)
	}
	// Writes fail for the reboot's duration, then recover.
	for i := 0; i < 2; i++ {
		if err := env.SetUndervolt("x", 50); !errors.Is(err, ErrCrashed) {
			t.Errorf("write %d during reboot: %v", i, err)
		}
	}
	if err := env.SetUndervolt("x", 50); err != nil {
		t.Fatalf("reboot must complete: %v", err)
	}
	if ev := env.Events(); ev.Crashes != 1 {
		t.Errorf("crashes = %d", ev.Crashes)
	}
}

func TestSeededRulesReproduce(t *testing.T) {
	run := func() (Events, []error) {
		env := newEnv(t, Config{
			Seed: 42,
			Rules: []Rule{
				{Kind: TransientMSR, P: 0.3},
				{Kind: SupplyDroop, P: 0.1, Duration: 3, Magnitude: 20},
			},
		})
		var errs []error
		for i := 0; i < 200; i++ {
			errs = append(errs, env.SetUndervolt("x", 120))
		}
		return env.Events(), errs
	}
	ev1, errs1 := run()
	ev2, errs2 := run()
	if ev1 != ev2 {
		t.Errorf("events diverged: %+v vs %+v", ev1, ev2)
	}
	for i := range errs1 {
		if (errs1[i] == nil) != (errs2[i] == nil) {
			t.Fatalf("write %d diverged: %v vs %v", i, errs1[i], errs2[i])
		}
	}
	if ev1.Transients == 0 {
		t.Error("no transients injected in 200 writes at P=0.3")
	}
	if ev1.Droops == 0 {
		t.Error("no droops injected in 200 writes at P=0.1")
	}
}

func TestDefaultConfigValid(t *testing.T) {
	env := newEnv(t, DefaultConfig(7))
	// A long write sequence under the default rules must never wedge:
	// every fault either clears by itself or is transient.
	okStreak := 0
	for i := 0; i < 500; i++ {
		if err := env.SetUndervolt("x", 120); err == nil {
			okStreak++
		}
	}
	if okStreak < 300 {
		t.Errorf("default rules too hostile: only %d/500 writes succeeded", okStreak)
	}
	if env.Dead() {
		t.Error("default rules must not include permanent death")
	}
}

func TestKindString(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == "" || k.String()[:5] == "chaos" {
			t.Errorf("Kind(%d) has no name", int(k))
		}
	}
}
