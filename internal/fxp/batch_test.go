package fxp

import (
	"math"
	"math/rand"
	"testing"
)

// randLanes builds a lane-major arena of k lanes of n values drawn
// from the given magnitude range.
func randLanes(rnd *rand.Rand, k, n, stride int, maxMag int32) []Value {
	xs := make([]Value, k*stride)
	for i := range xs {
		xs[i] = Value(rnd.Int31n(2*maxMag+1) - maxMag)
	}
	return xs
}

func randRow(rnd *rand.Rand, n int, maxMag int32) []Value {
	w := make([]Value, n)
	for i := range w {
		w[i] = Value(rnd.Int31n(2*maxMag+1) - maxMag)
	}
	return w
}

// TestBatchDotMatchesScalar pins the checked batch kernel to the
// scalar reference across batch sizes, including the tail lanes the
// 4-lane blocking leaves for the cleanup loop.
func TestBatchDotMatchesScalar(t *testing.T) {
	f := DefaultFormat
	rnd := rand.New(rand.NewSource(1))
	for _, k := range []int{1, 2, 3, 4, 5, 7, 16, 64} {
		for _, n := range []int{1, 2, 33, 65} {
			stride := n + 3 // deliberately padded
			w := randRow(rnd, n, 1<<14)
			xs := randLanes(rnd, k, n, stride, 1<<14)
			out := make([]Value, k)
			BatchDot(f, w, xs, stride, out)
			for j := 0; j < k; j++ {
				want := Dot(Exact{}, f, w, xs[j*stride:j*stride+n])
				if out[j] != want {
					t.Fatalf("k=%d n=%d lane %d: batch %d, scalar %d", k, n, j, out[j], want)
				}
			}
		}
	}
}

// TestBatchAccumSaturation drives the blocked kernel into accumulator
// saturation with adversarial magnitudes and checks the per-lane
// saturating-add sequence stays identical to AccumExact — including
// the non-sticky recovery after a saturated step.
func TestBatchAccumSaturation(t *testing.T) {
	rnd := rand.New(rand.NewSource(2))
	const n, k = 64, 6
	stride := n
	w := make([]Value, n)
	xs := make([]Value, k*stride)
	for i := range w {
		w[i] = Value(rnd.Int31()) // full-range weights
	}
	for i := range xs {
		xs[i] = Value(rnd.Int31())
		if rnd.Intn(2) == 0 {
			xs[i] = -xs[i]
		}
	}
	accs := make([]Product, k)
	BatchAccum(accs, w, xs, stride)
	for j := 0; j < k; j++ {
		want := AccumExact(0, w, xs[j*stride:j*stride+n])
		if accs[j] != want {
			t.Fatalf("lane %d: batch %d, scalar %d", j, accs[j], want)
		}
	}
}

// TestDotUncheckedExactUnderBound checks the fast-path kernel against
// the saturating reference whenever the magnitude bound holds — the
// exact precondition under which DotRowBatch selects it.
func TestDotUncheckedExactUnderBound(t *testing.T) {
	rnd := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rnd.Intn(90)
		w := randRow(rnd, n, 1<<20)
		x := randRow(rnd, n, 1<<20)
		var maxAbs int64
		for _, v := range x {
			a := int64(v)
			if a < 0 {
				a = -a
			}
			if a > maxAbs {
				maxAbs = a
			}
		}
		if float64(SumAbs(w))*float64(maxAbs) >= noSatBound {
			continue
		}
		got := Product(DotUnchecked(w, x))
		want := AccumExact(0, w, x)
		if got != want {
			t.Fatalf("trial %d: unchecked %d, checked %d", trial, got, want)
		}
	}
}

// TestExactDotRowBatch covers both unit paths: bounded lanes (fast
// path) and unbounded/adversarial lanes (checked path), with a lane
// map that permutes packed positions.
func TestExactDotRowBatch(t *testing.T) {
	f := DefaultFormat
	rnd := rand.New(rand.NewSource(4))
	const n, k = 33, 7
	stride := n + 1
	w := randRow(rnd, n, 1<<13)
	xs := randLanes(rnd, k, n, stride, 1<<13)
	maxAbs := make([]int64, k)
	for j := 0; j < k; j++ {
		for _, v := range xs[j*stride : j*stride+n] {
			a := int64(v)
			if a < 0 {
				a = -a
			}
			if a > maxAbs[j] {
				maxAbs[j] = a
			}
		}
	}
	lanes := []int{6, 0, 3, 1, 5, 2, 4}
	for _, withBounds := range []bool{true, false} {
		b := &Batch{Xs: xs, Stride: stride, Lanes: lanes}
		if withBounds {
			b.MaxAbs = maxAbs
			b.WAbs = float64(SumAbs(w))
		}
		out := make([]Value, k)
		Exact{}.DotRowBatch(f, w, b, out)
		for j := 0; j < k; j++ {
			want := Dot(Exact{}, f, w, xs[j*stride:j*stride+n])
			if out[j] != want {
				t.Fatalf("bounds=%v lane %d: batch %d, scalar %d", withBounds, j, out[j], want)
			}
		}
	}
}

// TestExactDotRowBatchSaturatingLane forces one lane over the bound so
// the unit must fall back to the checked kernel for it while the other
// lanes stay on the fast path — all lanes must still match the scalar
// reference exactly.
func TestExactDotRowBatchSaturatingLane(t *testing.T) {
	f := DefaultFormat
	const n, k = 48, 5
	stride := n
	w := make([]Value, n)
	xs := make([]Value, k*stride)
	rnd := rand.New(rand.NewSource(5))
	for i := range w {
		w[i] = Value(rnd.Int31()>>1 + 1)
	}
	for j := 0; j < k; j++ {
		for i := 0; i < n; i++ {
			if j == 2 {
				xs[j*stride+i] = math.MaxInt32 // saturating lane
			} else {
				xs[j*stride+i] = Value(rnd.Int31n(1 << 10))
			}
		}
	}
	maxAbs := make([]int64, k)
	for j := 0; j < k; j++ {
		for _, v := range xs[j*stride : j*stride+n] {
			if int64(v) > maxAbs[j] {
				maxAbs[j] = int64(v)
			}
		}
	}
	b := &Batch{Xs: xs, Stride: stride, MaxAbs: maxAbs, WAbs: float64(SumAbs(w))}
	out := make([]Value, k)
	Exact{}.DotRowBatch(f, w, b, out)
	for j := 0; j < k; j++ {
		want := Dot(Exact{}, f, w, xs[j*stride:j*stride+n])
		if out[j] != want {
			t.Fatalf("lane %d: batch %d, scalar %d", j, out[j], want)
		}
	}
	if float64(maxAbs[2])*b.WAbs < noSatBound {
		t.Fatal("test construction broken: lane 2 should exceed the fast-path bound")
	}
}

// TestBatchLaneMapping checks Batch.Lane's identity default.
func TestBatchLaneMapping(t *testing.T) {
	b := &Batch{}
	if b.Lane(3) != 3 {
		t.Fatalf("identity Lane(3) = %d", b.Lane(3))
	}
	b.Lanes = []int{9, 4}
	if b.Lane(1) != 4 {
		t.Fatalf("mapped Lane(1) = %d", b.Lane(1))
	}
}

func BenchmarkDotUnchecked65(b *testing.B) {
	rnd := rand.New(rand.NewSource(6))
	w := randRow(rnd, 65, 1<<14)
	x := randRow(rnd, 65, 1<<14)
	b.ReportAllocs()
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += DotUnchecked(w, x)
	}
	_ = sink
}

func BenchmarkBatchAccum65x16(b *testing.B) {
	rnd := rand.New(rand.NewSource(7))
	const n, k = 65, 16
	w := randRow(rnd, n, 1<<14)
	xs := randLanes(rnd, k, n, n, 1<<14)
	accs := make([]Product, k)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		BatchAccum(accs, w, xs, n)
	}
}
