// Package fxp implements the FANN-style fixed-point arithmetic the
// Stochastic-HMD inference path runs on.
//
// FANN's fixed-point execution mode stores weights and activations as
// 32-bit integers with an implicit binary point. Every neuron input is
// a sum of products of two such values; the product is a 64-bit
// integer carrying twice the fractional bits. The paper's fault
// injector corrupts exactly those 64-bit multiplication outputs
// (Section II characterizes faults on 64-bit multiply results; Section
// VI-A injects "timing violation errors ... at the output of
// arithmetic operations").
//
// The Unit interface is the integration point: the exact multiplier
// and the undervolted (fault-injecting) multiplier are interchangeable,
// so the same pre-trained network runs either nominally or
// stochastically without any model change — mirroring the paper's
// claim that no retraining or model modification is needed.
package fxp

import (
	"fmt"
	"math"
)

// Value is a fixed-point number: a 32-bit integer with Format.FracBits
// fractional bits (Q notation: Q(31-F).F).
type Value int32

// Product is the full-width result of multiplying two Values. It
// carries 2*Format.FracBits fractional bits. Fig 1 of the paper plots
// fault locations over exactly these 64 output bits.
type Product int64

// Format fixes the binary-point position for a network execution.
type Format struct {
	// FracBits is the number of fractional bits F in Q(31-F).F.
	FracBits uint
}

// DefaultFracBits matches what FANN's save_to_fixed chooses for small
// MLPs with sigmoid activations: enough headroom for sums of a few
// hundred products of values in roughly [-8, 8).
const DefaultFracBits = 12

// DefaultFormat is the format used by the HMD inference path.
var DefaultFormat = Format{FracBits: DefaultFracBits}

// Validate reports whether the format is usable.
func (f Format) Validate() error {
	if f.FracBits < 1 || f.FracBits > 30 {
		return fmt.Errorf("fxp: FracBits %d outside [1,30]", f.FracBits)
	}
	return nil
}

// One returns the fixed-point representation of 1.0.
func (f Format) One() Value { return Value(1) << f.FracBits }

// MaxFloat returns the largest representable magnitude.
func (f Format) MaxFloat() float64 {
	return float64(math.MaxInt32) / float64(int64(1)<<f.FracBits)
}

// FromFloat converts x to fixed point with round-to-nearest and
// saturation at the representable range.
func (f Format) FromFloat(x float64) Value {
	if math.IsNaN(x) {
		return 0
	}
	scaled := x * float64(int64(1)<<f.FracBits)
	scaled = math.RoundToEven(scaled)
	if scaled >= float64(math.MaxInt32) {
		return math.MaxInt32
	}
	if scaled <= float64(math.MinInt32) {
		return math.MinInt32
	}
	return Value(scaled)
}

// ToFloat converts v back to a float64.
func (f Format) ToFloat(v Value) float64 {
	return float64(v) / float64(int64(1)<<f.FracBits)
}

// ProductToFloat converts a full-width product (2F fractional bits)
// back to float64.
func (f Format) ProductToFloat(p Product) float64 {
	return float64(p) / float64(int64(1)<<(2*f.FracBits))
}

// ScaleProduct reduces a full-width product back to Value precision
// (shift right by F with rounding) and saturates to the int32 range.
func (f Format) ScaleProduct(p Product) Value {
	half := Product(1) << (f.FracBits - 1)
	var shifted Product
	if p >= 0 {
		if p > math.MaxInt64-half {
			return math.MaxInt32 // rounding bias would overflow; already saturated
		}
		shifted = (p + half) >> f.FracBits
	} else {
		if p < math.MinInt64+half {
			return math.MinInt32
		}
		shifted = -((-p + half) >> f.FracBits)
	}
	return saturate32(shifted)
}

// saturate32 clamps a Product into the Value range.
func saturate32(p Product) Value {
	if p > math.MaxInt32 {
		return math.MaxInt32
	}
	if p < math.MinInt32 {
		return math.MinInt32
	}
	return Value(p)
}

// SatAdd adds two products with saturation at the int64 range, so a
// fault-inflated product cannot wrap the accumulator.
func SatAdd(a, b Product) Product {
	sum := a + b
	if a > 0 && b > 0 && sum < 0 {
		return math.MaxInt64
	}
	if a < 0 && b < 0 && sum >= 0 {
		return math.MinInt64
	}
	return sum
}

// Unit performs the multiply step of a multiply-accumulate. The exact
// unit returns the true 64-bit product; the undervolted unit in
// internal/faults returns a product whose bits may have flipped.
//
// The paper's characterization found that additions, subtractions and
// bit-wise operations never faulted under the tested undervolting
// levels (shorter propagation paths), so accumulation is always exact
// and only Mul is behind the interface.
type Unit interface {
	// Mul multiplies two fixed-point values and returns the
	// full-width product with 2F fractional bits.
	Mul(a, b Value) Product
}

// BulkUnit is the optional fast-path interface: a Unit that can
// process a whole multiply-accumulate row in one call, avoiding the
// per-element interface dispatch of the scalar path. Dot fast-paths
// any unit implementing it. DotRow must return exactly what the
// scalar Dot loop would — same saturation, same scaling — and may
// assume len(w) == len(x) (Dot validates before delegating).
type BulkUnit interface {
	Unit
	// DotRow computes the inner product of w and x, accumulating with
	// SatAdd semantics and scaling back to Value precision.
	DotRow(f Format, w, x []Value) Value
}

// Exact is the fault-free multiplier used at nominal voltage.
type Exact struct{}

// Mul returns the true product.
func (Exact) Mul(a, b Value) Product {
	return Product(int64(a) * int64(b))
}

// DotRow implements BulkUnit with the fused exact kernel.
func (Exact) DotRow(f Format, w, x []Value) Value {
	return DotExact(f, w, x)
}

var _ BulkUnit = Exact{}

// AccumExact extends a running accumulator with the exact products of
// w[i]*x[i], using the same saturating addition as SatAdd, in one
// fused loop with no per-element interface call. It is the kernel the
// exact dot product and the fault injector's between-fault-sites
// segments are built on. Panics are the caller's concern: w and x must
// have equal length.
func AccumExact(acc Product, w, x []Value) Product {
	a := int64(acc)
	x = x[:len(w)] // one bounds check here instead of one per element
	for i := range w {
		p := int64(w[i]) * int64(x[i])
		s := a + p
		// Inline SatAdd via the branchless overflow test: a signed add
		// overflows iff both operands disagree in sign with the result.
		// A product of two int32s cannot itself overflow int64, but the
		// running sum can; the branch is never taken in trained-network
		// regimes, so it predicts perfectly.
		if (a^s)&(p^s) < 0 {
			if a > 0 {
				a = math.MaxInt64
			} else {
				a = math.MinInt64
			}
			continue
		}
		a = s
	}
	return Product(a)
}

// DotExact is the fused exact dot-product kernel: a plain int64 MAC
// loop with saturating accumulation, bit-identical to
// Dot(Exact{}, f, w, x) but without the per-element interface
// dispatch. The scalar Dot loop remains the reference implementation.
func DotExact(f Format, w, x []Value) Value {
	return f.ScaleProduct(AccumExact(0, w, x))
}

// Dot computes the inner product of w and x through u, accumulating in
// a saturating 64-bit register and scaling back to Value precision.
// Units implementing BulkUnit take the fused whole-row fast path; any
// other unit runs the scalar reference loop. It panics if the slices
// differ in length — a layer-wiring bug.
func Dot(u Unit, f Format, w, x []Value) Value {
	if len(w) != len(x) {
		panic(fmt.Sprintf("fxp: Dot length mismatch %d vs %d", len(w), len(x)))
	}
	if bu, ok := u.(BulkUnit); ok {
		return bu.DotRow(f, w, x)
	}
	var acc Product
	for i := range w {
		acc = SatAdd(acc, u.Mul(w[i], x[i]))
	}
	return f.ScaleProduct(acc)
}

// FromFloats converts a float64 slice into fixed point.
func (f Format) FromFloats(xs []float64) []Value {
	out := make([]Value, len(xs))
	for i, x := range xs {
		out[i] = f.FromFloat(x)
	}
	return out
}

// ToFloats converts a fixed-point slice back to float64.
func (f Format) ToFloats(vs []Value) []float64 {
	out := make([]float64, len(vs))
	for i, v := range vs {
		out[i] = f.ToFloat(v)
	}
	return out
}
