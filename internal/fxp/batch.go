package fxp

import "fmt"

// This file holds the batch-lane kernels: the same fixed-point MAC the
// scalar path runs, restructured so one walk over a weight row drives
// N independent activation lanes. The layout is structure-of-arrays
// and lane-major — lane j's activations live at
// Xs[j*Stride : j*Stride+len(w)] — so each lane streams contiguously
// while the weight row stays resident in L1 across lanes, and the
// per-row bounds checks, loop control, and weight loads are paid once
// per row instead of once per lane.
//
// Every batch kernel is bit-identical per lane to the scalar reference
// (Dot / AccumExact): the checked kernels run the identical saturating
// add sequence, and the unchecked fast path is only taken when a
// conservative magnitude bound proves no intermediate sum can leave
// the int64 range in any association order — in which case plain adds,
// reassociated adds, and saturating adds all compute the same value.

// Batch describes one packed batch of activation lanes for a batched
// MAC row. Packing is dense: packed position j holds an active lane;
// Lanes maps packed positions back to a unit's stable lane identities
// so lanes can drop out (ragged tails, expired deadlines) without
// disturbing the surviving lanes' state or streams.
type Batch struct {
	// Xs is the lane-major activation arena: packed lane j's inputs are
	// Xs[j*Stride : j*Stride+rowLen].
	Xs []Value
	// Stride is the lane pitch in Xs (>= the row length).
	Stride int
	// Lanes maps packed position j to the unit's lane identity. A nil
	// Lanes means the identity mapping (packed j is unit lane j).
	Lanes []int
	// MaxAbs, when non-nil, gives for each packed lane an upper bound
	// on |x| over that lane's activations. Units use it to prove the
	// no-saturation bound that unlocks the unchecked fast path; nil
	// means unknown, forcing the checked kernels.
	MaxAbs []int64
	// WAbs, when nonzero, is Σ|w| of the current weight row (the caller
	// typically precomputes it once per model). Zero means unknown; the
	// unit computes it on the fly if it wants the fast path.
	WAbs float64
}

// Lane returns the unit lane identity of packed position j.
func (b *Batch) Lane(j int) int {
	if b.Lanes == nil {
		return j
	}
	return b.Lanes[j]
}

// BatchUnit is a multiply unit that can drive a whole batch of lanes
// down one weight row per call. Implementations must produce, for each
// packed lane, exactly the Value the scalar Dot path would produce for
// that lane's multiplication sequence — batching is a layout change,
// never a semantics change.
type BatchUnit interface {
	// DotRowBatch computes out[j] = Dot(w, lane j's activations) for
	// every packed lane j in [0, len(out)), with per-lane state (fault
	// streams, draw logs) addressed through b.Lane(j).
	DotRowBatch(f Format, w []Value, b *Batch, out []Value)
}

// SpanPlanner is an optional BatchUnit extension: a unit that can
// presample all per-lane randomness for a span of multiplications in
// one pass per lane. Batched callers that know their total
// multiplication count up front (a forward pass is a fixed mul
// sequence) announce it so the unit can draw each lane's faults in one
// tight cache-hot loop instead of interleaving tiny per-row draws
// across many lanes — draw order and values per lane are unchanged.
//
// The contract is exact consumption: planning a lane draws from its
// stream, so after BeginSpan(lanes, muls) the subsequent DotRowBatch
// calls must walk exactly muls multiplications on each announced lane
// — and only announced lanes — before the next BeginSpan or any scalar
// use of a lane's stream. Callers must pass the explicit unit lane ids
// they will address through Batch.Lanes (materializing the identity
// list when using nil Batch.Lanes).
type SpanPlanner interface {
	BeginSpan(lanes []int, muls int)
}

// NoSatBound is the magnitude budget under which the unchecked kernels
// are provably exact: if the sum of absolute contributions to a row's
// accumulator stays below 2^62, no partial sum in any association
// order can overflow int64 (the bound is evaluated in float64, whose
// rounding error at these magnitudes is dwarfed by the 2x headroom to
// 2^63). Fault units add their sampled bit-flip inflation (Σ 2^bit)
// to the weight-activation bound before comparing.
const NoSatBound = float64(1 << 62)

const noSatBound = NoSatBound

// SumAbs returns Σ|w| as an int64. With len(w) bounded by network
// fan-in (thousands) and |w| < 2^31 the sum cannot overflow.
func SumAbs(w []Value) int64 {
	var s int64
	for _, v := range w {
		x := int64(v)
		if x < 0 {
			x = -x
		}
		s += x
	}
	return s
}

// DotUnchecked is the fast-path row kernel: a 4-way unrolled plain MAC
// with independent partial accumulators, so the multiply latency is
// off the critical path and the loop runs at multiplier throughput.
// It is exact (bit-identical to AccumExact(0, w, x)) precisely when no
// partial sum in any order can overflow — the caller must establish
// that via the noSatBound test before choosing this kernel.
func DotUnchecked(w, x []Value) int64 {
	x = x[:len(w)] // one bounds check for the whole row
	var a0, a1, a2, a3 int64
	i := 0
	for ; i+4 <= len(w); i += 4 {
		a0 += int64(w[i]) * int64(x[i])
		a1 += int64(w[i+1]) * int64(x[i+1])
		a2 += int64(w[i+2]) * int64(x[i+2])
		a3 += int64(w[i+3]) * int64(x[i+3])
	}
	for ; i < len(w); i++ {
		a0 += int64(w[i]) * int64(x[i])
	}
	return a0 + a1 + a2 + a3
}

// DotUncheckedBatch runs the unchecked MAC over all packed lanes,
// blocked four at a time so each weight element is loaded and
// sign-extended once per four lanes instead of once per lane, writing
// each lane's raw int64 sum into accs. Exactness has the same
// precondition as DotUnchecked, and the caller must have proven it for
// every lane: per lane the products are accumulated in ascending index
// order, so under the no-saturation bound the result is bit-identical
// to the scalar kernel.
func DotUncheckedBatch(w, xs []Value, stride int, accs []int64) {
	n := len(w)
	k := len(accs)
	j := 0
	for ; j+4 <= k; j += 4 {
		x0 := xs[(j+0)*stride:]
		x1 := xs[(j+1)*stride:]
		x2 := xs[(j+2)*stride:]
		x3 := xs[(j+3)*stride:]
		x0, x1, x2, x3 = x0[:n], x1[:n], x2[:n], x3[:n]
		var a0, a1, a2, a3 int64
		i := 0
		for ; i+2 <= n; i += 2 {
			wi, wk := int64(w[i]), int64(w[i+1])
			a0 += wi*int64(x0[i]) + wk*int64(x0[i+1])
			a1 += wi*int64(x1[i]) + wk*int64(x1[i+1])
			a2 += wi*int64(x2[i]) + wk*int64(x2[i+1])
			a3 += wi*int64(x3[i]) + wk*int64(x3[i+1])
		}
		if i < n {
			wi := int64(w[i])
			a0 += wi * int64(x0[i])
			a1 += wi * int64(x1[i])
			a2 += wi * int64(x2[i])
			a3 += wi * int64(x3[i])
		}
		accs[j+0] = a0
		accs[j+1] = a1
		accs[j+2] = a2
		accs[j+3] = a3
	}
	for ; j < k; j++ {
		accs[j] = DotUnchecked(w, xs[j*stride:j*stride+n])
	}
}

// BatchAccum extends one running accumulator per lane with the exact
// products of the shared weight row against each lane's activations,
// using AccumExact's saturating-add semantics per lane. Lanes are
// walked four at a time so the weight load and loop control amortize
// across lanes; the per-lane add sequence (and therefore saturation
// behavior) is identical to the scalar kernel. len(xs) must cover
// (len(accs)-1)*stride + len(w).
func BatchAccum(accs []Product, w, xs []Value, stride int) {
	n := len(w)
	k := len(accs)
	j := 0
	for ; j+4 <= k; j += 4 {
		x0 := xs[(j+0)*stride:]
		x1 := xs[(j+1)*stride:]
		x2 := xs[(j+2)*stride:]
		x3 := xs[(j+3)*stride:]
		x0, x1, x2, x3 = x0[:n], x1[:n], x2[:n], x3[:n]
		a0 := int64(accs[j+0])
		a1 := int64(accs[j+1])
		a2 := int64(accs[j+2])
		a3 := int64(accs[j+3])
		for i := 0; i < n; i++ {
			wi := int64(w[i])
			a0 = satMac(a0, wi, int64(x0[i]))
			a1 = satMac(a1, wi, int64(x1[i]))
			a2 = satMac(a2, wi, int64(x2[i]))
			a3 = satMac(a3, wi, int64(x3[i]))
		}
		accs[j+0] = Product(a0)
		accs[j+1] = Product(a1)
		accs[j+2] = Product(a2)
		accs[j+3] = Product(a3)
	}
	for ; j < k; j++ {
		accs[j] = AccumExact(accs[j], w, xs[j*stride:j*stride+n])
	}
}

// satMac is one saturating multiply-accumulate step, the branchless-
// test body of AccumExact shared by the blocked kernel.
func satMac(a, w, x int64) int64 {
	p := w * x
	s := a + p
	if (a^s)&(p^s) < 0 {
		if a > 0 {
			return int64(maxProduct)
		}
		return int64(minProduct)
	}
	return s
}

const (
	maxProduct = Product(1<<63 - 1)
	minProduct = Product(-1 << 63)
)

// BatchDot runs the checked batch kernel from zero accumulators and
// scales each lane's sum back to Value precision: out[j] is
// bit-identical to Dot(Exact{}, f, w, xs[j*stride:j*stride+len(w)]).
func BatchDot(f Format, w, xs []Value, stride int, out []Value) {
	if stride < len(w) {
		panic(fmt.Sprintf("fxp: BatchDot stride %d shorter than row %d", stride, len(w)))
	}
	var accArr [16]Product
	accs := accArr[:0]
	if len(out) <= len(accArr) {
		accs = accArr[:len(out)]
	} else {
		accs = make([]Product, len(out))
	}
	for j := range accs {
		accs[j] = 0
	}
	BatchAccum(accs, w, xs, stride)
	for j := range out {
		out[j] = f.ScaleProduct(accs[j])
	}
}

// DotRowBatch implements BatchUnit for the exact multiplier. Lanes
// whose magnitude bound clears noSatBound take the unchecked fast
// path; the rest (or all lanes, when no bounds are known) run the
// checked kernel. Either way each lane's result is bit-identical to
// the scalar exact dot product.
func (Exact) DotRowBatch(f Format, w []Value, b *Batch, out []Value) {
	if b.MaxAbs == nil {
		BatchDot(f, w, b.Xs, b.Stride, out)
		return
	}
	wAbs := b.WAbs
	if wAbs == 0 {
		wAbs = float64(SumAbs(w))
	}
	n := len(w)
	var maxAbs int64
	for _, m := range b.MaxAbs[:len(out)] {
		if m > maxAbs {
			maxAbs = m
		}
	}
	if wAbs*float64(maxAbs) < noSatBound && len(out) <= 64 {
		// Every lane clears the bound: one blocked walk over the row,
		// weight loads shared across lanes.
		var accArr [64]int64
		accs := accArr[:len(out)]
		DotUncheckedBatch(w, b.Xs, b.Stride, accs)
		for j := range out {
			out[j] = f.ScaleProduct(Product(accs[j]))
		}
		return
	}
	for j := range out {
		x := b.Xs[j*b.Stride : j*b.Stride+n]
		if wAbs*float64(b.MaxAbs[j]) < noSatBound {
			out[j] = f.ScaleProduct(Product(DotUnchecked(w, x)))
		} else {
			out[j] = f.ScaleProduct(AccumExact(0, w, x))
		}
	}
}

var _ BatchUnit = Exact{}
