package fxp

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFormatValidate(t *testing.T) {
	for _, bits := range []uint{1, 12, 30} {
		if err := (Format{FracBits: bits}).Validate(); err != nil {
			t.Errorf("FracBits %d should be valid: %v", bits, err)
		}
	}
	for _, bits := range []uint{0, 31, 64} {
		if err := (Format{FracBits: bits}).Validate(); err == nil {
			t.Errorf("FracBits %d should be invalid", bits)
		}
	}
}

func TestRoundTripExactValues(t *testing.T) {
	f := DefaultFormat
	// Values exactly representable in Q.12 round-trip without loss.
	for _, x := range []float64{0, 1, -1, 0.5, -0.25, 3.75, -100.0625} {
		if got := f.ToFloat(f.FromFloat(x)); got != x {
			t.Errorf("round trip %v = %v", x, got)
		}
	}
}

func TestFromFloatSaturates(t *testing.T) {
	f := DefaultFormat
	if got := f.FromFloat(1e12); got != math.MaxInt32 {
		t.Errorf("positive saturation = %d", got)
	}
	if got := f.FromFloat(-1e12); got != math.MinInt32 {
		t.Errorf("negative saturation = %d", got)
	}
	if got := f.FromFloat(math.NaN()); got != 0 {
		t.Errorf("NaN should map to 0, got %d", got)
	}
	if got := f.FromFloat(math.Inf(1)); got != math.MaxInt32 {
		t.Errorf("+Inf should saturate, got %d", got)
	}
}

func TestOne(t *testing.T) {
	f := Format{FracBits: 10}
	if f.One() != 1024 {
		t.Errorf("One = %d", f.One())
	}
	if f.ToFloat(f.One()) != 1.0 {
		t.Errorf("ToFloat(One) = %v", f.ToFloat(f.One()))
	}
}

func TestExactMul(t *testing.T) {
	f := DefaultFormat
	var u Exact
	a := f.FromFloat(2.5)
	b := f.FromFloat(-4.0)
	p := u.Mul(a, b)
	if got := f.ProductToFloat(p); got != -10.0 {
		t.Errorf("2.5 * -4.0 = %v", got)
	}
	if got := f.ToFloat(f.ScaleProduct(p)); got != -10.0 {
		t.Errorf("scaled product = %v", got)
	}
}

func TestScaleProductRounding(t *testing.T) {
	f := Format{FracBits: 4}
	// Product value 0b111 (7) with F=4: scaling divides by 16 and
	// rounds 7/16 -> 0; 9/16 -> 1 (round half away handled via +half).
	if got := f.ScaleProduct(7); got != 0 {
		t.Errorf("ScaleProduct(7) = %d, want 0", got)
	}
	if got := f.ScaleProduct(9); got != 1 {
		t.Errorf("ScaleProduct(9) = %d, want 1", got)
	}
	if got := f.ScaleProduct(-7); got != 0 {
		t.Errorf("ScaleProduct(-7) = %d, want 0", got)
	}
	if got := f.ScaleProduct(-9); got != -1 {
		t.Errorf("ScaleProduct(-9) = %d, want -1", got)
	}
}

func TestScaleProductSaturates(t *testing.T) {
	f := DefaultFormat
	if got := f.ScaleProduct(math.MaxInt64); got != math.MaxInt32 {
		t.Errorf("positive saturation = %d", got)
	}
	if got := f.ScaleProduct(math.MinInt64 + 1); got != math.MinInt32 {
		t.Errorf("negative saturation = %d", got)
	}
}

func TestSatAdd(t *testing.T) {
	if got := SatAdd(1, 2); got != 3 {
		t.Errorf("SatAdd(1,2) = %d", got)
	}
	if got := SatAdd(math.MaxInt64, 1); got != math.MaxInt64 {
		t.Errorf("positive overflow = %d", got)
	}
	if got := SatAdd(math.MinInt64, -1); got != math.MinInt64 {
		t.Errorf("negative overflow = %d", got)
	}
	if got := SatAdd(math.MaxInt64, math.MinInt64); got != -1 {
		t.Errorf("mixed signs = %d", got)
	}
}

func TestDotMatchesFloat(t *testing.T) {
	f := DefaultFormat
	w := f.FromFloats([]float64{0.5, -1.25, 2.0, 0.125})
	x := f.FromFloats([]float64{1.0, 2.0, -0.5, 8.0})
	got := f.ToFloat(Dot(Exact{}, f, w, x))
	want := 0.5*1.0 + -1.25*2.0 + 2.0*-0.5 + 0.125*8.0
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("Dot = %v, want %v", got, want)
	}
}

func TestDotLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on length mismatch")
		}
	}()
	Dot(Exact{}, DefaultFormat, make([]Value, 2), make([]Value, 3))
}

func TestSliceConversions(t *testing.T) {
	f := DefaultFormat
	in := []float64{1, -2, 0.5}
	out := f.ToFloats(f.FromFloats(in))
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("slice round trip[%d] = %v, want %v", i, out[i], in[i])
		}
	}
	if len(f.FromFloats(nil)) != 0 {
		t.Error("FromFloats(nil) should be empty")
	}
}

// Property: conversion error is bounded by half an LSB for in-range values.
func TestQuantizationErrorBound(t *testing.T) {
	f := DefaultFormat
	lsb := 1.0 / float64(int64(1)<<f.FracBits)
	check := func(raw int32) bool {
		x := float64(raw) / float64(1<<16) // roughly [-32768, 32768)
		if math.Abs(x) > f.MaxFloat()-1 {
			return true
		}
		got := f.ToFloat(f.FromFloat(x))
		return math.Abs(got-x) <= lsb/2+1e-15
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

// Property: fixed-point dot product tracks the float dot product within
// an error bound linear in the vector length.
func TestDotErrorBound(t *testing.T) {
	f := DefaultFormat
	lsb := 1.0 / float64(int64(1)<<f.FracBits)
	check := func(rawW, rawX [8]int16) bool {
		w64 := make([]float64, 8)
		x64 := make([]float64, 8)
		for i := 0; i < 8; i++ {
			w64[i] = float64(rawW[i]) / (1 << 12) // [-8, 8)
			x64[i] = float64(rawX[i]) / (1 << 12)
		}
		w := f.FromFloats(w64)
		x := f.FromFloats(x64)
		got := f.ToFloat(Dot(Exact{}, f, w, x))
		want := 0.0
		for i := range w64 {
			want += w64[i] * x64[i]
		}
		// Each product contributes at most ~ (|w|+|x|)*lsb/2 error plus
		// the final scale-back rounding; a generous linear bound.
		bound := lsb * float64(len(w64)) * 20
		return math.Abs(got-want) <= bound
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

// Property: Exact.Mul is commutative and matches int64 multiplication.
func TestExactMulProperties(t *testing.T) {
	check := func(a, b int32) bool {
		u := Exact{}
		p1 := u.Mul(Value(a), Value(b))
		p2 := u.Mul(Value(b), Value(a))
		return p1 == p2 && int64(p1) == int64(a)*int64(b)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}
