package fxp

import (
	"math"
	"testing"
	"testing/quick"
)

// scalarOnly hides a unit's BulkUnit implementation, forcing Dot down
// the scalar reference loop. Benchmarks and differential tests use it
// to compare the fused fast path against the reference path.
type scalarOnly struct{ u Unit }

func (s scalarOnly) Mul(a, b Value) Product { return s.u.Mul(a, b) }

// refDot is the scalar reference dot product: the exact code Dot runs
// for a non-BulkUnit unit.
func refDot(f Format, w, x []Value) Value {
	return Dot(scalarOnly{Exact{}}, f, w, x)
}

func TestDotExactMatchesReferenceTargeted(t *testing.T) {
	f := DefaultFormat
	max, min := Value(math.MaxInt32), Value(math.MinInt32)
	cases := [][2][]Value{
		{{}, {}},
		{{0}, {0}},
		{{max}, {max}}, // single saturating-scale product
		{{min}, {min}}, // MinInt32² = 2^62
		{{min}, {max}}, // most negative single product
		{{max, max, max, max}, {max, max, max, max}}, // accumulator saturates positive
		{{min, min, min, min}, {min, min, min, min}}, // products all +2^62, saturates
		{{max, min, max, min}, {max, max, min, min}}, // saturate then pull back
		{{min, min, min}, {max, max, max}},           // saturates negative
		{{max, min}, {max, max}},                     // cancel to ~0
	}
	// A long row that drives the accumulator to MaxInt64 and then keeps
	// adding: SatAdd semantics (sticky until an opposite sign arrives)
	// must match exactly.
	long := make([][2][]Value, 0)
	w := make([]Value, 64)
	x := make([]Value, 64)
	for i := range w {
		w[i], x[i] = max, max
	}
	w[40], x[40] = min, max // one huge negative product mid-row
	long = append(long, [2][]Value{w, x})
	cases = append(cases, long...)

	for i, c := range cases {
		got := DotExact(f, c[0], c[1])
		want := refDot(f, c[0], c[1])
		if got != want {
			t.Errorf("case %d: DotExact = %d, reference = %d", i, got, want)
		}
		// The BulkUnit fast path through Dot must take the same kernel.
		if fast := Dot(Exact{}, f, c[0], c[1]); fast != want {
			t.Errorf("case %d: Dot(Exact) fast path = %d, reference = %d", i, fast, want)
		}
	}
}

// Property: for random rows (including extreme magnitudes), the fused
// kernel, the BulkUnit fast path, and the scalar reference agree
// bit-exactly across formats.
func TestDotExactMatchesReferenceProperty(t *testing.T) {
	check := func(raw []int32, fracBits uint8) bool {
		f := Format{FracBits: uint(fracBits%30) + 1}
		n := len(raw) / 2
		w := make([]Value, n)
		x := make([]Value, n)
		for i := 0; i < n; i++ {
			w[i] = Value(raw[i])
			x[i] = Value(raw[n+i])
			// Push some elements to the extremes so saturation paths
			// are exercised, not just the common small-value regime.
			switch raw[i] % 7 {
			case 1:
				w[i] = math.MaxInt32
			case 2:
				w[i] = math.MinInt32
			case 3:
				x[i] = math.MinInt32
			}
		}
		want := refDot(f, w, x)
		return DotExact(f, w, x) == want && Dot(Exact{}, f, w, x) == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// FuzzDotExact differentially fuzzes the fused exact kernel against
// the generic scalar Dot loop, including saturation edge cases fed via
// the seed corpus.
func FuzzDotExact(f *testing.F) {
	f.Add([]byte{}, uint8(12))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x7F, 0xFF, 0xFF, 0xFF, 0x7F}, uint8(12))
	f.Add([]byte{0x00, 0x00, 0x00, 0x80, 0x00, 0x00, 0x00, 0x80}, uint8(1))
	f.Add([]byte{0x00, 0x00, 0x00, 0x80, 0xFF, 0xFF, 0xFF, 0x7F,
		0x00, 0x00, 0x00, 0x80, 0x00, 0x00, 0x00, 0x80}, uint8(30))
	f.Fuzz(func(t *testing.T, data []byte, fracBits uint8) {
		format := Format{FracBits: uint(fracBits%30) + 1}
		// Decode pairs of int32s: first half weights, second half inputs.
		vals := make([]Value, len(data)/4)
		for i := range vals {
			v := uint32(data[4*i]) | uint32(data[4*i+1])<<8 |
				uint32(data[4*i+2])<<16 | uint32(data[4*i+3])<<24
			vals[i] = Value(int32(v))
		}
		n := len(vals) / 2
		w, x := vals[:n], vals[n:2*n]
		want := refDot(format, w, x)
		if got := DotExact(format, w, x); got != want {
			t.Fatalf("DotExact = %d, scalar reference = %d (w=%v x=%v F=%d)",
				got, want, w, x, format.FracBits)
		}
		if got := Dot(Exact{}, format, w, x); got != want {
			t.Fatalf("Dot fast path = %d, scalar reference = %d", got, want)
		}
	})
}

// The accumulator-continuation kernel must compose: splitting a row at
// any point and chaining AccumExact equals one fused pass.
func TestAccumExactComposes(t *testing.T) {
	f := DefaultFormat
	w := []Value{math.MaxInt32, 12345, math.MinInt32, -987654, math.MaxInt32, 7}
	x := []Value{math.MaxInt32, -54321, math.MaxInt32, 123456, math.MaxInt32, -7}
	whole := AccumExact(0, w, x)
	for split := 0; split <= len(w); split++ {
		part := AccumExact(AccumExact(0, w[:split], x[:split]), w[split:], x[split:])
		if part != whole {
			t.Errorf("split at %d: %d != %d", split, part, whole)
		}
	}
	if got := f.ScaleProduct(whole); got != DotExact(f, w, x) {
		t.Error("DotExact must equal ScaleProduct(AccumExact)")
	}
}
