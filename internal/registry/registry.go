package registry

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"shmd/internal/wire"
)

// Registry is the on-disk model store. Layout inside the directory:
//
//	v<N>.mdl  one SHMDMDL1 manifest block per version
//	ACTIVE    one SHMDMDL1 active-pointer block (optional)
//
// All writes go through internal/wire's atomic write (temp + fsync +
// rename), so a crash mid-write leaves either the old record or the
// new one, never a torn file. Decoded models are cached and their
// golden verdicts re-verified once per load; Activate re-reads the
// manifest from disk first, because the bytes a warm restart would
// adopt are the ones that must be proven valid before the pointer
// flips.
type Registry struct {
	dir  string
	logf func(string, ...any)

	mu        sync.RWMutex
	manifests map[uint32]*Manifest
	models    map[uint32]Model
	active    uint32 // 0 = none
}

// Info summarizes one registered version for the admin surface.
type Info struct {
	Version     uint32 `json:"version"`
	Type        string `json:"type"`
	Fingerprint string `json:"fingerprint"`
	Created     uint64 `json:"created"`
	Golden      int    `json:"golden"`
	Active      bool   `json:"active"`
}

// Open loads (or initializes) a registry directory. Corrupt manifest
// files are skipped with a log line — boot must survive a torn disk —
// and an ACTIVE pointer naming a missing, corrupt, or
// fingerprint-mismatched version is ignored the same way. Strictness
// lives in Register and Activate, which refuse bad records with typed
// errors instead of ever persisting them.
func Open(dir string, logf func(string, ...any)) (*Registry, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}
	r := &Registry{
		dir:       dir,
		logf:      logf,
		manifests: make(map[uint32]*Manifest),
		models:    make(map[uint32]Model),
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		var v uint32
		if n, err := fmt.Sscanf(e.Name(), "v%d.mdl", &v); n != 1 || err != nil || e.Name() != manifestName(v) {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			r.logf("registry: skipping %s: %v", e.Name(), err)
			continue
		}
		m, err := DecodeManifest(raw)
		if err != nil {
			r.logf("registry: skipping corrupt %s: %v", e.Name(), err)
			continue
		}
		if m.Version != v {
			r.logf("registry: skipping %s: manifest claims version %d", e.Name(), m.Version)
			continue
		}
		r.manifests[v] = m
	}
	r.loadActive()
	return r, nil
}

// loadActive restores the ACTIVE pointer if it is valid.
func (r *Registry) loadActive() {
	path := filepath.Join(r.dir, "ACTIVE")
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return
	}
	if err != nil {
		r.logf("registry: ignoring ACTIVE: %v", err)
		return
	}
	a, err := DecodeActive(raw)
	if err != nil {
		r.logf("registry: ignoring corrupt ACTIVE: %v", err)
		return
	}
	m, ok := r.manifests[a.Version]
	if !ok {
		r.logf("registry: ignoring ACTIVE: version %d not registered", a.Version)
		return
	}
	model, err := r.decode(m)
	if err != nil {
		r.logf("registry: ignoring ACTIVE: version %d: %v", a.Version, err)
		return
	}
	if model.Fingerprint() != a.Fingerprint {
		r.logf("registry: ignoring ACTIVE: version %d fingerprint %s != %s",
			a.Version, model.Fingerprint(), a.Fingerprint)
		return
	}
	r.models[a.Version] = model
	r.active = a.Version
}

// decode resolves and validates a manifest's model, without caching.
func (r *Registry) decode(m *Manifest) (Model, error) {
	codec, err := CodecFor(m.Type)
	if err != nil {
		return nil, err
	}
	model, err := codec.Decode(m.Params)
	if err != nil {
		return nil, err
	}
	if err := verifyGolden(model.Detector(), m.Golden); err != nil {
		return nil, err
	}
	return model, nil
}

func manifestName(version uint32) string {
	return fmt.Sprintf("v%d.mdl", version)
}

// Dir returns the registry directory.
func (r *Registry) Dir() string { return r.dir }

// Register validates a manifest (structure, codec decode, every
// pinned golden verdict) and persists it atomically. Registering the
// same version with the same fingerprint is idempotent; a different
// model under a taken version is ErrVersionExists.
func (r *Registry) Register(m *Manifest) error {
	if err := m.validate(); err != nil {
		return err
	}
	model, err := r.decode(m)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.manifests[m.Version]; ok {
		oldModel, err := r.decode(old)
		if err != nil || oldModel.Fingerprint() != model.Fingerprint() {
			return fmt.Errorf("%w: version %d", ErrVersionExists, m.Version)
		}
		r.models[m.Version] = oldModel
		return nil // identical re-register
	}
	raw, err := EncodeManifest(m)
	if err != nil {
		return err
	}
	if err := wire.WriteFileAtomic(filepath.Join(r.dir, manifestName(m.Version)), raw); err != nil {
		return fmt.Errorf("registry: persist v%d: %w", m.Version, err)
	}
	cp := *m
	r.manifests[m.Version] = &cp
	r.models[m.Version] = model
	return nil
}

// Manifest returns the stored manifest for a version.
func (r *Registry) Manifest(version uint32) (*Manifest, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok := r.manifests[version]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownVersion, version)
	}
	return m, nil
}

// Model returns the decoded, golden-verified model for a version,
// caching the decode.
func (r *Registry) Model(version uint32) (Model, error) {
	r.mu.RLock()
	model, ok := r.models[version]
	m := r.manifests[version]
	r.mu.RUnlock()
	if ok {
		return model, nil
	}
	if m == nil {
		return nil, fmt.Errorf("%w: %d", ErrUnknownVersion, version)
	}
	model, err := r.decode(m)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.models[version] = model
	r.mu.Unlock()
	return model, nil
}

// Activate flips the ACTIVE pointer to a registered version. The
// manifest is re-read from disk and fully re-validated first — an
// unknown version is ErrUnknownVersion, torn or tampered on-disk bytes
// are ErrCorrupt (or ErrGoldenMismatch), and in every failure case the
// incumbent pointer is untouched, in memory and on disk.
func (r *Registry) Activate(version uint32) error {
	r.mu.RLock()
	_, ok := r.manifests[version]
	r.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownVersion, version)
	}
	raw, err := os.ReadFile(filepath.Join(r.dir, manifestName(version)))
	if err != nil {
		return fmt.Errorf("%w: v%d: %v", ErrCorrupt, version, err)
	}
	m, err := DecodeManifest(raw)
	if err != nil {
		return fmt.Errorf("activate v%d: %w", version, err)
	}
	if m.Version != version {
		return corrupt("v%d manifest claims version %d", version, m.Version)
	}
	model, err := r.decode(m)
	if err != nil {
		return fmt.Errorf("activate v%d: %w", version, err)
	}
	rec, err := EncodeActive(&Active{
		Version:     version,
		Fingerprint: model.Fingerprint(),
		Saved:       m.Created,
	})
	if err != nil {
		return err
	}
	if err := wire.WriteFileAtomic(filepath.Join(r.dir, "ACTIVE"), rec); err != nil {
		return fmt.Errorf("registry: persist ACTIVE: %w", err)
	}
	r.mu.Lock()
	r.manifests[version] = m
	r.models[version] = model
	r.active = version
	r.mu.Unlock()
	return nil
}

// Active returns the active version, if any.
func (r *Registry) Active() (uint32, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.active, r.active != 0
}

// Versions lists registered versions in ascending order.
func (r *Registry) Versions() []Info {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Info, 0, len(r.manifests))
	for v, m := range r.manifests {
		info := Info{
			Version: v,
			Type:    m.Type,
			Created: m.Created,
			Golden:  len(m.Golden),
			Active:  v == r.active,
		}
		if model, ok := r.models[v]; ok {
			info.Fingerprint = model.Fingerprint()
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Version < out[j].Version })
	return out
}
