package registry

import (
	"bytes"
	"fmt"
	"math"

	"shmd/internal/hmd"
	"shmd/internal/trace"
)

// Model is a decoded, validated detector model. Every registered
// manifest resolves to one; the serve pool builds sessions off
// Detector() exactly as it does off the compiled-in seed model, so a
// registry-loaded copy of a model is bit-identical to the compiled-in
// path by construction (same *hmd.HMD, same scalar and batch kernels).
type Model interface {
	// Type names the codec that produced the model.
	Type() string
	// Fingerprint is a short stable content hash of the model.
	Fingerprint() string
	// Detector returns the runnable detector: scalar
	// (DetectProgram/ScoreWindows) and batch (DetectTracesUnit /
	// EvaluateBatch) forward passes both hang off it.
	Detector() *hmd.HMD
}

// Codec (de)serializes one model type's params blob. Codecs are the
// extension point for heterogeneous detector types behind the one
// registry format.
type Codec interface {
	// Type is the manifest model-type string this codec owns.
	Type() string
	// Decode builds a model from a manifest's params.
	Decode(params []byte) (Model, error)
	// Encode serializes a detector into params this codec can
	// decode back.
	Encode(det *hmd.HMD) ([]byte, error)
}

// FannType is the built-in codec for the seed FANN MLP detector: the
// params blob is the canonical hmd bundle (feature set, period,
// threshold, network weights).
const FannType = "fann-mlp"

// codecs is the codec table; fixed at init (no registration API yet —
// new detector types land as new built-in codecs).
var codecs = map[string]Codec{
	FannType: fannCodec{},
}

// CodecFor resolves the codec for a model type.
func CodecFor(modelType string) (Codec, error) {
	c, ok := codecs[modelType]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownType, modelType)
	}
	return c, nil
}

type fannCodec struct{}

func (fannCodec) Type() string { return FannType }

func (fannCodec) Decode(params []byte) (Model, error) {
	det, err := hmd.LoadBundle(bytes.NewReader(params))
	if err != nil {
		return nil, corrupt("fann-mlp params: %v", err)
	}
	fp, err := det.Fingerprint()
	if err != nil {
		return nil, corrupt("fann-mlp fingerprint: %v", err)
	}
	return &fannModel{det: det, fp: fp}, nil
}

func (fannCodec) Encode(det *hmd.HMD) ([]byte, error) {
	var buf bytes.Buffer
	if _, err := det.SaveBundle(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

type fannModel struct {
	det *hmd.HMD
	fp  string
}

func (m *fannModel) Type() string        { return FannType }
func (m *fannModel) Fingerprint() string { return m.fp }
func (m *fannModel) Detector() *hmd.HMD  { return m.det }

// GoldenSpec names a deterministic synthetic program to pin a golden
// verdict on.
type GoldenSpec struct {
	Class      trace.Class
	Index      int
	Seed       uint64
	Windows    int
	WindowSize int
}

// DefaultGoldenSpecs pins one benign and one malware program from the
// quick corpus — enough to catch a wrong-model swap (weights,
// threshold, or feature binding) without bloating every manifest.
func DefaultGoldenSpecs() []GoldenSpec {
	return []GoldenSpec{
		{Class: trace.Benign, Index: 0, Seed: 1, Windows: 4, WindowSize: 256},
		{Class: trace.Trojan, Index: 0, Seed: 1, Windows: 4, WindowSize: 256},
	}
}

// pinGolden runs the exact nominal-voltage pass for each spec and
// records the verdict and bit-exact score.
func pinGolden(det *hmd.HMD, specs []GoldenSpec) ([]GoldenVerdict, error) {
	golden := make([]GoldenVerdict, 0, len(specs))
	for _, sp := range specs {
		windows, err := goldenWindows(sp)
		if err != nil {
			return nil, err
		}
		dec := det.DetectProgram(windows)
		golden = append(golden, GoldenVerdict{
			Class:      sp.Class,
			Index:      sp.Index,
			Seed:       sp.Seed,
			Windows:    sp.Windows,
			WindowSize: sp.WindowSize,
			Malware:    dec.Malware,
			Score:      dec.Score,
		})
	}
	return golden, nil
}

// verifyGolden replays every pinned verdict against the decoded model.
func verifyGolden(det *hmd.HMD, golden []GoldenVerdict) error {
	for i, g := range golden {
		windows, err := goldenWindows(GoldenSpec{
			Class: g.Class, Index: g.Index, Seed: g.Seed,
			Windows: g.Windows, WindowSize: g.WindowSize,
		})
		if err != nil {
			return err
		}
		dec := det.DetectProgram(windows)
		if dec.Malware != g.Malware || math.Float64bits(dec.Score) != math.Float64bits(g.Score) {
			return fmt.Errorf("%w: golden %d (%s/%d): got malware=%v score=%x, pinned malware=%v score=%x",
				ErrGoldenMismatch, i, g.Class, g.Index,
				dec.Malware, math.Float64bits(dec.Score),
				g.Malware, math.Float64bits(g.Score))
		}
	}
	return nil
}

func goldenWindows(sp GoldenSpec) ([]trace.WindowCounts, error) {
	prog, err := trace.NewProgram(sp.Class, sp.Index, sp.Seed)
	if err != nil {
		return nil, fmt.Errorf("registry: golden program: %w", err)
	}
	windows, err := prog.Trace(sp.Windows, sp.WindowSize)
	if err != nil {
		return nil, fmt.Errorf("registry: golden trace: %w", err)
	}
	return windows, nil
}

// NewManifest builds a manifest for a detector: encodes the params
// with the named codec and pins golden verdicts for the given specs
// (DefaultGoldenSpecs if nil).
func NewManifest(version uint32, modelType string, det *hmd.HMD, created uint64, specs []GoldenSpec) (*Manifest, error) {
	if version == 0 {
		return nil, fmt.Errorf("registry: manifest version must be >= 1")
	}
	codec, err := CodecFor(modelType)
	if err != nil {
		return nil, err
	}
	params, err := codec.Encode(det)
	if err != nil {
		return nil, fmt.Errorf("registry: encode params: %w", err)
	}
	if specs == nil {
		specs = DefaultGoldenSpecs()
	}
	golden, err := pinGolden(det, specs)
	if err != nil {
		return nil, err
	}
	return &Manifest{
		Version: version,
		Type:    modelType,
		Created: created,
		Params:  params,
		Golden:  golden,
	}, nil
}
