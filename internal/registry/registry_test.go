package registry

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"shmd/internal/wire"
)

func openTest(t *testing.T, dir string) *Registry {
	t.Helper()
	r, err := Open(dir, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestRegisterActivateReload pins the basic lifecycle: register two
// versions, activate one, and a fresh Open of the same directory
// restores both manifests and the active pointer.
func TestRegisterActivateReload(t *testing.T) {
	dir := t.TempDir()
	r := openTest(t, dir)
	m1, m2 := testManifest(t, 1, 7), testManifest(t, 2, 8)
	if err := r.Register(m1); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(m2); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Active(); ok {
		t.Fatal("active version before any Activate")
	}
	if err := r.Activate(2); err != nil {
		t.Fatal(err)
	}
	if v, ok := r.Active(); !ok || v != 2 {
		t.Fatalf("active = %d, %v", v, ok)
	}

	r2 := openTest(t, dir)
	if v, ok := r2.Active(); !ok || v != 2 {
		t.Fatalf("reloaded active = %d, %v", v, ok)
	}
	infos := r2.Versions()
	if len(infos) != 2 || infos[0].Version != 1 || infos[1].Version != 2 || !infos[1].Active || infos[0].Active {
		t.Fatalf("versions = %+v", infos)
	}
	// The reloaded model must be the same detector bit for bit.
	want, got := mustModel(t, r, 2), mustModel(t, r2, 2)
	if want.Fingerprint() != got.Fingerprint() {
		t.Fatalf("fingerprint drifted across reload: %s vs %s", want.Fingerprint(), got.Fingerprint())
	}
}

func mustModel(t *testing.T, r *Registry, v uint32) Model {
	t.Helper()
	m, err := r.Model(v)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestRegisterIdempotentAndConflicting pins version-number semantics:
// re-registering the identical model is a no-op, a different model
// under a taken version is ErrVersionExists.
func TestRegisterIdempotentAndConflicting(t *testing.T) {
	r := openTest(t, t.TempDir())
	if err := r.Register(testManifest(t, 1, 7)); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(testManifest(t, 1, 7)); err != nil {
		t.Fatalf("identical re-register: %v", err)
	}
	if err := r.Register(testManifest(t, 1, 99)); !errors.Is(err, ErrVersionExists) {
		t.Fatalf("conflicting register: %v, want ErrVersionExists", err)
	}
}

// TestRegisterRejectsGoldenMismatch pins the known-answer gate: a
// manifest whose pinned verdicts disagree with its own params never
// lands on disk.
func TestRegisterRejectsGoldenMismatch(t *testing.T) {
	dir := t.TempDir()
	r := openTest(t, dir)
	m := testManifest(t, 1, 7)
	m.Golden[0].Score = math.Nextafter(m.Golden[0].Score, 2)
	if err := r.Register(m); !errors.Is(err, ErrGoldenMismatch) {
		t.Fatalf("err = %v, want ErrGoldenMismatch", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "v1.mdl")); !os.IsNotExist(err) {
		t.Fatalf("rejected manifest reached disk: %v", err)
	}
	flipped := testManifest(t, 2, 7)
	flipped.Golden[1].Malware = !flipped.Golden[1].Malware
	if err := r.Register(flipped); !errors.Is(err, ErrGoldenMismatch) {
		t.Fatalf("flipped verdict: %v, want ErrGoldenMismatch", err)
	}
}

// TestRegisterRejectsUnknownType pins the codec gate.
func TestRegisterRejectsUnknownType(t *testing.T) {
	r := openTest(t, t.TempDir())
	m := testManifest(t, 1, 7)
	m.Type = "rhmd-committee"
	if err := r.Register(m); !errors.Is(err, ErrUnknownType) {
		t.Fatalf("err = %v, want ErrUnknownType", err)
	}
}

// TestActivateUnknownOrCorruptKeepsIncumbent is the rollback-safety
// contract: activating an unknown version or a version whose on-disk
// bytes are torn fails with the typed error and leaves the incumbent
// pointer untouched in memory and on disk.
func TestActivateUnknownOrCorruptKeepsIncumbent(t *testing.T) {
	dir := t.TempDir()
	r := openTest(t, dir)
	if err := r.Register(testManifest(t, 1, 7)); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(testManifest(t, 2, 8)); err != nil {
		t.Fatal(err)
	}
	if err := r.Activate(1); err != nil {
		t.Fatal(err)
	}

	if err := r.Activate(42); !errors.Is(err, ErrUnknownVersion) {
		t.Fatalf("unknown version: %v, want ErrUnknownVersion", err)
	}
	if v, _ := r.Active(); v != 1 {
		t.Fatalf("incumbent moved to %d after failed activate", v)
	}

	// Tear v2 on disk (flip one params byte, CRC catches it).
	path := filepath.Join(dir, "v2.mdl")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := r.Activate(2); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt version: %v, want ErrCorrupt", err)
	}
	if v, _ := r.Active(); v != 1 {
		t.Fatalf("incumbent moved to %d after corrupt activate", v)
	}
	// The on-disk pointer must still name v1 for the next warm restart.
	if v, ok := openTest(t, dir).Active(); !ok || v != 1 {
		t.Fatalf("on-disk active = %d, %v", v, ok)
	}
}

// TestOpenSurvivesTornDisk pins boot behavior: corrupt manifests and a
// corrupt or dangling ACTIVE pointer are skipped, never fatal.
func TestOpenSurvivesTornDisk(t *testing.T) {
	dir := t.TempDir()
	r := openTest(t, dir)
	if err := r.Register(testManifest(t, 1, 7)); err != nil {
		t.Fatal(err)
	}
	if err := r.Activate(1); err != nil {
		t.Fatal(err)
	}
	// Torn manifest alongside the good one.
	if err := os.WriteFile(filepath.Join(dir, "v2.mdl"), []byte("SHMDMDL1 torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	r2 := openTest(t, dir)
	if len(r2.Versions()) != 1 {
		t.Fatalf("versions = %+v", r2.Versions())
	}
	if v, ok := r2.Active(); !ok || v != 1 {
		t.Fatalf("active = %d, %v", v, ok)
	}
	// Now tear ACTIVE itself: boot must come up with no active version
	// but all good manifests intact.
	if err := os.WriteFile(filepath.Join(dir, "ACTIVE"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	r3 := openTest(t, dir)
	if _, ok := r3.Active(); ok {
		t.Fatal("corrupt ACTIVE resurrected an active version")
	}
	if len(r3.Versions()) != 1 {
		t.Fatalf("versions after torn ACTIVE = %+v", r3.Versions())
	}
}

// TestActiveFingerprintMismatchIgnored pins the ACTIVE cross-check: a
// pointer whose fingerprint disagrees with the manifest it names (say,
// a restored-from-backup v1.mdl) is ignored rather than trusted.
func TestActiveFingerprintMismatchIgnored(t *testing.T) {
	dir := t.TempDir()
	r := openTest(t, dir)
	if err := r.Register(testManifest(t, 1, 7)); err != nil {
		t.Fatal(err)
	}
	rec, err := EncodeActive(&Active{Version: 1, Fingerprint: "0000000000000000", Saved: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteFileAtomic(filepath.Join(dir, "ACTIVE"), rec); err != nil {
		t.Fatal(err)
	}
	if _, ok := openTest(t, dir).Active(); ok {
		t.Fatal("fingerprint-mismatched ACTIVE was trusted")
	}
}

// TestRegistryModelBitIdenticalToSource is the package-level half of
// the cross-version bit-identity criterion: a detector round-tripped
// through manifest encode → disk → reload scores every golden program
// bit-identically to the original.
func TestRegistryModelBitIdenticalToSource(t *testing.T) {
	dir := t.TempDir()
	src := testHMD(t, 7)
	m, err := NewManifest(1, FannType, src, 1700000000, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := openTest(t, dir)
	if err := r.Register(m); err != nil {
		t.Fatal(err)
	}
	loaded := mustModel(t, openTest(t, dir), 1).Detector()

	var a, b bytes.Buffer
	if _, err := src.SaveBundle(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := loaded.SaveBundle(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("reloaded bundle differs from source")
	}
	for _, sp := range DefaultGoldenSpecs() {
		windows, err := goldenWindows(sp)
		if err != nil {
			t.Fatal(err)
		}
		want, got := src.DetectProgram(windows), loaded.DetectProgram(windows)
		if want.Malware != got.Malware || math.Float64bits(want.Score) != math.Float64bits(got.Score) {
			t.Fatalf("%s/%d drifted: %+v vs %+v", sp.Class, sp.Index, got, want)
		}
	}
}

// TestFingerprintStability pins the fingerprint as a pure content
// hash: equal models hash equal, different weights hash different.
func TestFingerprintStability(t *testing.T) {
	a, err := testHMD(t, 7).Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	b, err := testHMD(t, 7).Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	c, err := testHMD(t, 8).Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same model, different fingerprints: %s vs %s", a, b)
	}
	if a == c {
		t.Fatalf("different models share fingerprint %s", a)
	}
	if len(a) != 32 {
		t.Fatalf("fingerprint %q not 16 hex bytes", a)
	}
}
