// Package registry is the versioned model store behind shmd serve:
// crash-safe SHMDMDL1 manifests (model params plus pinned golden
// verdicts, CRC-framed and atomically persisted via internal/wire),
// load/validate/activate semantics, and the codec seam that lets
// heterogeneous detector types (FANN MLP today, RHMD committees and
// logistic heads tomorrow) live behind one serving API.
package registry

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"shmd/internal/trace"
	"shmd/internal/wire"
)

// ManifestMagic frames every registry record on disk and on the admin
// wire. The payload's first byte selects the record type.
const ManifestMagic = "SHMDMDL1"

// Record types carried inside a SHMDMDL1 block.
const (
	// recManifest is a versioned model manifest (record type 1).
	recManifest = 0x01
	// recActive is the active-version pointer (record type 2),
	// stored in the registry directory's ACTIVE file.
	recActive = 0x02
)

// Layout limits. Decoders reject anything outside these bounds as
// corrupt rather than allocating attacker-controlled sizes.
const (
	maxParams      = 8 << 20 // serialized model parameters
	maxGolden      = 64      // pinned golden verdicts per manifest
	maxTypeLen     = 32
	maxFingerprint = 64
	maxGoldenIndex = 1 << 20
	maxPayload     = maxParams + 64*1024
)

// Typed failures. ErrCorrupt covers framing and structural decode
// errors (it matches wire.ErrCorrupt failures too); the others are
// semantic.
var (
	// ErrCorrupt means the record bytes are malformed: bad framing,
	// bad CRC, truncation, or out-of-range fields.
	ErrCorrupt = errors.New("registry: corrupt record")
	// ErrUnknownVersion means the requested version is not registered.
	ErrUnknownVersion = errors.New("registry: unknown model version")
	// ErrUnknownType means no codec is registered for the manifest's
	// model type.
	ErrUnknownType = errors.New("registry: unknown model type")
	// ErrGoldenMismatch means the decoded model disagreed with a
	// pinned golden verdict — the params and the pins describe
	// different models.
	ErrGoldenMismatch = errors.New("registry: golden verdict mismatch")
	// ErrVersionExists means the version number is taken by a model
	// with a different fingerprint.
	ErrVersionExists = errors.New("registry: version already registered")
)

func corrupt(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// GoldenVerdict pins one known-answer check: the program is
// regenerated deterministically from (class, index, seed, windows,
// windowSize) and the model's exact nominal-voltage pass must
// reproduce the verdict and the score bit-for-bit.
type GoldenVerdict struct {
	Class      trace.Class
	Index      int
	Seed       uint64
	Windows    int
	WindowSize int
	Malware    bool
	Score      float64
}

// Manifest is one versioned model record.
type Manifest struct {
	// Version is the registry version number (>= 1).
	Version uint32
	// Type names the params codec ("fann-mlp" is built in).
	Type string
	// Created is a unix-seconds timestamp, informational only.
	Created uint64
	// Params is the codec-specific serialized model.
	Params []byte
	// Golden pins the model's behavior; Register re-verifies every
	// entry against the decoded model before accepting the manifest.
	Golden []GoldenVerdict
}

// Active is the active-version pointer persisted in the ACTIVE file.
type Active struct {
	Version     uint32
	Fingerprint string
	// Saved is a unix-seconds timestamp, informational only.
	Saved uint64
}

// validate checks structural invariants shared by encode and decode.
func (m *Manifest) validate() error {
	if m.Version == 0 {
		return corrupt("version 0")
	}
	if len(m.Type) == 0 || len(m.Type) > maxTypeLen {
		return corrupt("model type length %d", len(m.Type))
	}
	if len(m.Params) == 0 || len(m.Params) > maxParams {
		return corrupt("params length %d", len(m.Params))
	}
	if len(m.Golden) == 0 || len(m.Golden) > maxGolden {
		return corrupt("%d golden verdicts (want 1..%d)", len(m.Golden), maxGolden)
	}
	for i, g := range m.Golden {
		if g.Class < 0 || int(g.Class) >= trace.NumClasses {
			return corrupt("golden %d: class %d", i, int(g.Class))
		}
		if g.Index < 0 || g.Index > maxGoldenIndex {
			return corrupt("golden %d: index %d", i, g.Index)
		}
		if g.Windows < 1 || g.Windows > 256 {
			return corrupt("golden %d: %d windows", i, g.Windows)
		}
		if g.WindowSize < 1 || g.WindowSize > 4096 {
			return corrupt("golden %d: window size %d", i, g.WindowSize)
		}
		if math.IsNaN(g.Score) {
			return corrupt("golden %d: NaN score", i)
		}
	}
	return nil
}

func appendStr8(b []byte, s string) []byte {
	b = append(b, byte(len(s)))
	return append(b, s...)
}

// EncodeManifest serializes a manifest as a complete SHMDMDL1 block
// (magic, length, payload, CRC). The encoding is canonical: decoding
// and re-encoding any valid block reproduces it byte for byte.
func EncodeManifest(m *Manifest) ([]byte, error) {
	if err := m.validate(); err != nil {
		return nil, err
	}
	p := make([]byte, 0, 64+len(m.Params)+24*len(m.Golden))
	p = append(p, recManifest)
	p = binary.AppendUvarint(p, uint64(m.Version))
	p = appendStr8(p, m.Type)
	p = binary.AppendUvarint(p, m.Created)
	p = binary.BigEndian.AppendUint32(p, uint32(len(m.Params)))
	p = append(p, m.Params...)
	p = binary.AppendUvarint(p, uint64(len(m.Golden)))
	for _, g := range m.Golden {
		p = append(p, byte(g.Class))
		p = binary.AppendUvarint(p, uint64(g.Index))
		p = binary.AppendUvarint(p, g.Seed)
		p = binary.AppendUvarint(p, uint64(g.Windows))
		p = binary.AppendUvarint(p, uint64(g.WindowSize))
		p = binary.BigEndian.AppendUint64(p, math.Float64bits(g.Score))
		var flags byte
		if g.Malware {
			flags |= 1
		}
		p = append(p, flags)
	}
	return wire.EncodeBlock(ManifestMagic, p), nil
}

// DecodeManifest parses a complete SHMDMDL1 manifest block. All
// failures are ErrCorrupt; a well-framed block of the wrong record
// type is corrupt too (callers asking for a manifest got something
// else).
func DecodeManifest(raw []byte) (*Manifest, error) {
	payload, err := wire.DecodeBlock(ManifestMagic, raw, maxPayload)
	if err != nil {
		return nil, corrupt("%v", err)
	}
	r := recReader{b: payload}
	rt, err := r.byte()
	if err != nil {
		return nil, err
	}
	if rt != recManifest {
		return nil, corrupt("record type 0x%02x, want manifest 0x%02x", rt, recManifest)
	}
	var m Manifest
	v, err := r.uvarint32("version")
	if err != nil {
		return nil, err
	}
	m.Version = v
	m.Type, err = r.str8("model type", maxTypeLen)
	if err != nil {
		return nil, err
	}
	m.Created, err = r.uvarint("created")
	if err != nil {
		return nil, err
	}
	plen, err := r.be32("params length")
	if err != nil {
		return nil, err
	}
	if plen == 0 || plen > maxParams {
		return nil, corrupt("params length %d", plen)
	}
	params, err := r.take(int(plen), "params")
	if err != nil {
		return nil, err
	}
	m.Params = append([]byte(nil), params...)
	n, err := r.uvarint("golden count")
	if err != nil {
		return nil, err
	}
	if n == 0 || n > maxGolden {
		return nil, corrupt("%d golden verdicts", n)
	}
	m.Golden = make([]GoldenVerdict, n)
	for i := range m.Golden {
		g := &m.Golden[i]
		cls, err := r.byte()
		if err != nil {
			return nil, err
		}
		g.Class = trace.Class(cls)
		idx, err := r.uvarint("golden index")
		if err != nil {
			return nil, err
		}
		if idx > maxGoldenIndex {
			return nil, corrupt("golden index %d", idx)
		}
		g.Index = int(idx)
		if g.Seed, err = r.uvarint("golden seed"); err != nil {
			return nil, err
		}
		w, err := r.uvarint("golden windows")
		if err != nil {
			return nil, err
		}
		g.Windows = int(w)
		ws, err := r.uvarint("golden window size")
		if err != nil {
			return nil, err
		}
		g.WindowSize = int(ws)
		bits, err := r.be64("golden score")
		if err != nil {
			return nil, err
		}
		g.Score = math.Float64frombits(bits)
		flags, err := r.byte()
		if err != nil {
			return nil, err
		}
		if flags&^1 != 0 {
			return nil, corrupt("golden flags 0x%02x", flags)
		}
		g.Malware = flags&1 != 0
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	if err := m.validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// EncodeActive serializes an active-version pointer as a SHMDMDL1
// block (record type 2).
func EncodeActive(a *Active) ([]byte, error) {
	if a.Version == 0 {
		return nil, corrupt("active version 0")
	}
	if len(a.Fingerprint) == 0 || len(a.Fingerprint) > maxFingerprint {
		return nil, corrupt("active fingerprint length %d", len(a.Fingerprint))
	}
	p := make([]byte, 0, 16+len(a.Fingerprint))
	p = append(p, recActive)
	p = binary.AppendUvarint(p, uint64(a.Version))
	p = appendStr8(p, a.Fingerprint)
	p = binary.AppendUvarint(p, a.Saved)
	return wire.EncodeBlock(ManifestMagic, p), nil
}

// DecodeActive parses an active-version pointer block.
func DecodeActive(raw []byte) (*Active, error) {
	payload, err := wire.DecodeBlock(ManifestMagic, raw, maxPayload)
	if err != nil {
		return nil, corrupt("%v", err)
	}
	r := recReader{b: payload}
	rt, err := r.byte()
	if err != nil {
		return nil, err
	}
	if rt != recActive {
		return nil, corrupt("record type 0x%02x, want active 0x%02x", rt, recActive)
	}
	var a Active
	if a.Version, err = r.uvarint32("active version"); err != nil {
		return nil, err
	}
	if a.Fingerprint, err = r.str8("active fingerprint", maxFingerprint); err != nil {
		return nil, err
	}
	if a.Saved, err = r.uvarint("active saved"); err != nil {
		return nil, err
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return &a, nil
}

// recReader is a bounds-checked cursor over a record payload; every
// failure is ErrCorrupt.
type recReader struct {
	b []byte
}

func (r *recReader) byte() (byte, error) {
	if len(r.b) < 1 {
		return 0, corrupt("truncated record")
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v, nil
}

func (r *recReader) uvarint(field string) (uint64, error) {
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		return 0, corrupt("bad %s varint", field)
	}
	// Only the minimal encoding is canonical: a padded varint would
	// decode fine but break decode→encode byte identity.
	if n > 1 && v>>(7*uint(n-1)) == 0 {
		return 0, corrupt("non-minimal %s varint", field)
	}
	r.b = r.b[n:]
	return v, nil
}

func (r *recReader) uvarint32(field string) (uint32, error) {
	v, err := r.uvarint(field)
	if err != nil {
		return 0, err
	}
	if v == 0 || v > math.MaxUint32 {
		return 0, corrupt("%s %d out of range", field, v)
	}
	return uint32(v), nil
}

func (r *recReader) take(n int, field string) ([]byte, error) {
	if n < 0 || len(r.b) < n {
		return nil, corrupt("truncated %s", field)
	}
	v := r.b[:n]
	r.b = r.b[n:]
	return v, nil
}

func (r *recReader) str8(field string, max int) (string, error) {
	n, err := r.byte()
	if err != nil {
		return "", err
	}
	if n == 0 || int(n) > max {
		return "", corrupt("%s length %d", field, n)
	}
	v, err := r.take(int(n), field)
	if err != nil {
		return "", err
	}
	return string(v), nil
}

func (r *recReader) be32(field string) (uint32, error) {
	v, err := r.take(4, field)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(v), nil
}

func (r *recReader) be64(field string) (uint64, error) {
	v, err := r.take(8, field)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(v), nil
}

func (r *recReader) done() error {
	if len(r.b) != 0 {
		return corrupt("%d trailing bytes", len(r.b))
	}
	return nil
}
