package registry

import (
	"errors"
	"testing"
)

// FuzzModelManifestDecode holds both SHMDMDL1 record decoders to their
// contract on arbitrary bytes: never a panic, every failure wraps
// ErrCorrupt, and anything that decodes re-encodes byte-identically
// (the encoding is canonical: the CRC-framed block admits exactly one
// byte representation per value, so decode→encode is identity on
// every accepted input).
func FuzzModelManifestDecode(f *testing.F) {
	for _, raw := range goldenRecords(f) {
		f.Add(raw)
		// Truncated at an awkward boundary and bit-flipped mid-record.
		f.Add(raw[:len(raw)/2])
		flipped := append([]byte{}, raw...)
		flipped[len(flipped)/2] ^= 0x10
		f.Add(flipped)
	}
	f.Add([]byte{})
	f.Add([]byte("SHMDMDL1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if m, err := DecodeManifest(data); err == nil {
			reenc, encErr := EncodeManifest(m)
			if encErr != nil {
				t.Fatalf("decoded manifest failed to re-encode: %v", encErr)
			}
			if string(reenc) != string(data) {
				t.Fatalf("manifest re-encode not identity:\n got %x\nwant %x", reenc, data)
			}
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("untyped manifest decode error: %v", err)
		}
		if a, err := DecodeActive(data); err == nil {
			reenc, encErr := EncodeActive(a)
			if encErr != nil {
				t.Fatalf("decoded active failed to re-encode: %v", encErr)
			}
			if string(reenc) != string(data) {
				t.Fatalf("active re-encode not identity:\n got %x\nwant %x", reenc, data)
			}
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("untyped active decode error: %v", err)
		}
	})
}
