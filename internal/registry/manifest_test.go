package registry

import (
	"bytes"
	"encoding/hex"
	"errors"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"shmd/internal/fann"
	"shmd/internal/features"
	"shmd/internal/hmd"
	"shmd/internal/trace"
)

// update regenerates the golden record corpus. The corpus is the
// manifest compatibility contract: regenerating it is an intentional,
// reviewed format change, never a test-fixing reflex.
var update = flag.Bool("update", false, "rewrite the golden record corpus")

// testHMD builds a deterministic untrained detector (seeded random
// weights): verdicts are arbitrary but stable, which is all the
// registry tests need.
func testHMD(t testing.TB, seed uint64) *hmd.HMD {
	t.Helper()
	net, err := fann.New(fann.Config{
		Layers: []int{features.DimInstrFreq, 8, 1},
		Hidden: fann.SigmoidSymmetric,
		Output: fann.Sigmoid,
		Seed:   seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := hmd.FromNetwork(net, hmd.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func testManifest(t testing.TB, version uint32, seed uint64) *Manifest {
	t.Helper()
	m, err := NewManifest(version, FannType, testHMD(t, seed), 1700000000, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// goldenRecords enumerates every SHMDMDL1 record type with a
// canonical sample value. Each becomes a byte-exact hex fixture.
func goldenRecords(t testing.TB) map[string][]byte {
	t.Helper()
	man, err := EncodeManifest(testManifest(t, 3, 7))
	if err != nil {
		t.Fatal(err)
	}
	act, err := EncodeActive(&Active{Version: 3, Fingerprint: "deadbeefdeadbeefdeadbeefdeadbeef", Saved: 1700000001})
	if err != nil {
		t.Fatal(err)
	}
	return map[string][]byte{
		"manifest": man,
		"active":   act,
	}
}

func goldenPath(name string) string {
	return filepath.Join("testdata", "record_"+name+".hex")
}

func readGolden(t *testing.T, name string) []byte {
	t.Helper()
	raw, err := os.ReadFile(goldenPath(name))
	if err != nil {
		t.Fatalf("golden fixture %s missing (run with -update to regenerate): %v", name, err)
	}
	data, err := hex.DecodeString(strings.TrimSpace(string(raw)))
	if err != nil {
		t.Fatalf("golden fixture %s is not hex: %v", name, err)
	}
	return data
}

// TestGoldenRecordCorpus pins both SHMDMDL1 record types byte-exactly:
// the committed fixture must decode, and re-encoding the decoded value
// must reproduce the fixture bit for bit.
func TestGoldenRecordCorpus(t *testing.T) {
	records := goldenRecords(t)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		for name, raw := range records {
			enc := hex.EncodeToString(raw) + "\n"
			if err := os.WriteFile(goldenPath(name), []byte(enc), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	for name, built := range records {
		t.Run(name, func(t *testing.T) {
			raw := readGolden(t, name)
			if !bytes.Equal(built, raw) {
				t.Fatalf("encoding drifted from committed fixture:\n got %x\nwant %x", built, raw)
			}
			var reenc []byte
			var err error
			switch name {
			case "manifest":
				var m *Manifest
				if m, err = DecodeManifest(raw); err == nil {
					reenc, err = EncodeManifest(m)
				}
			case "active":
				var a *Active
				if a, err = DecodeActive(raw); err == nil {
					reenc, err = EncodeActive(a)
				}
			}
			if err != nil {
				t.Fatalf("decode/re-encode committed fixture: %v", err)
			}
			if !bytes.Equal(reenc, raw) {
				t.Fatalf("re-encode is not identity:\n got %x\nwant %x", reenc, raw)
			}
		})
	}
}

// TestGoldenRecordMutationsFailTyped flips bytes of every fixture and
// asserts the decoder reports ErrCorrupt — never a panic, never a
// silent success (CRC32 catches every single-byte mutation).
func TestGoldenRecordMutationsFailTyped(t *testing.T) {
	for name, raw := range goldenRecords(t) {
		for i := range raw {
			for _, flip := range []byte{0x01, 0x80} {
				mut := append([]byte{}, raw...)
				mut[i] ^= flip
				var err error
				if name == "manifest" {
					_, err = DecodeManifest(mut)
				} else {
					_, err = DecodeActive(mut)
				}
				if err == nil {
					t.Fatalf("%s: byte %d ^ %#x decoded silently", name, i, flip)
				}
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("%s: byte %d ^ %#x: untyped error %v", name, i, flip, err)
				}
			}
		}
		// Truncation at every prefix length must fail typed too.
		for n := 0; n < len(raw); n += 7 {
			var err error
			if name == "manifest" {
				_, err = DecodeManifest(raw[:n])
			} else {
				_, err = DecodeActive(raw[:n])
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("%s: truncation to %d bytes: %v", name, n, err)
			}
		}
	}
}

// TestRecordTypeConfusionIsCorrupt pins cross-type decoding: a valid
// active block is not a manifest and vice versa.
func TestRecordTypeConfusionIsCorrupt(t *testing.T) {
	records := goldenRecords(t)
	if _, err := DecodeManifest(records["active"]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("active-as-manifest: %v", err)
	}
	if _, err := DecodeActive(records["manifest"]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("manifest-as-active: %v", err)
	}
}

// TestManifestRoundTripSemantics round-trips a manifest through
// encode/decode and compares every field, including bit-exact golden
// scores.
func TestManifestRoundTripSemantics(t *testing.T) {
	m := testManifest(t, 9, 11)
	raw, err := EncodeManifest(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeManifest(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != m.Version || got.Type != m.Type || got.Created != m.Created {
		t.Fatalf("header mismatch: %+v vs %+v", got, m)
	}
	if !bytes.Equal(got.Params, m.Params) {
		t.Fatal("params mismatch")
	}
	if len(got.Golden) != len(m.Golden) {
		t.Fatalf("%d golden, want %d", len(got.Golden), len(m.Golden))
	}
	for i := range m.Golden {
		w, g := m.Golden[i], got.Golden[i]
		if w.Class != g.Class || w.Index != g.Index || w.Seed != g.Seed ||
			w.Windows != g.Windows || w.WindowSize != g.WindowSize ||
			w.Malware != g.Malware || math.Float64bits(w.Score) != math.Float64bits(g.Score) {
			t.Fatalf("golden %d mismatch: %+v vs %+v", i, g, w)
		}
	}
}

// TestEncodeManifestRejectsInvalid pins structural validation on the
// encode side.
func TestEncodeManifestRejectsInvalid(t *testing.T) {
	base := testManifest(t, 1, 7)
	cases := map[string]func(m *Manifest){
		"version zero":   func(m *Manifest) { m.Version = 0 },
		"empty type":     func(m *Manifest) { m.Type = "" },
		"long type":      func(m *Manifest) { m.Type = strings.Repeat("x", maxTypeLen+1) },
		"empty params":   func(m *Manifest) { m.Params = nil },
		"no golden":      func(m *Manifest) { m.Golden = nil },
		"bad class":      func(m *Manifest) { m.Golden[0].Class = trace.Class(99) },
		"zero windows":   func(m *Manifest) { m.Golden[0].Windows = 0 },
		"huge window":    func(m *Manifest) { m.Golden[0].WindowSize = 1 << 20 },
		"nan score":      func(m *Manifest) { m.Golden[0].Score = math.NaN() },
		"negative index": func(m *Manifest) { m.Golden[0].Index = -1 },
	}
	for name, mutate := range cases {
		m := *base
		m.Golden = append([]GoldenVerdict(nil), base.Golden...)
		mutate(&m)
		if _, err := EncodeManifest(&m); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
}
