package isa

import "testing"

func TestCatalogSize(t *testing.T) {
	if len(Catalog()) != NumOpcodes {
		t.Fatalf("catalog size = %d, want %d", len(Catalog()), NumOpcodes)
	}
}

func TestOpcodesAreSequential(t *testing.T) {
	for i, ins := range Catalog() {
		if ins.Opcode != i {
			t.Errorf("entry %d has Opcode %d", i, ins.Opcode)
		}
	}
}

func TestEveryCategoryRepresented(t *testing.T) {
	for c := Category(0); int(c) < NumCategories; c++ {
		if len(OpcodesInCategory(c)) == 0 {
			t.Errorf("category %v has no instructions", c)
		}
	}
}

func TestByMnemonic(t *testing.T) {
	ins, err := ByMnemonic("imul")
	if err != nil {
		t.Fatal(err)
	}
	if ins.Category != CatBinaryArith || !ins.Mul {
		t.Errorf("imul = %+v", ins)
	}
	if _, err := ByMnemonic("bogus"); err == nil {
		t.Error("unknown mnemonic must error")
	}
}

func TestByOpcode(t *testing.T) {
	ins, err := ByOpcode(0)
	if err != nil || ins.Mnemonic != "mov" {
		t.Errorf("opcode 0 = %+v err=%v", ins, err)
	}
	if _, err := ByOpcode(-1); err == nil {
		t.Error("negative opcode must error")
	}
	if _, err := ByOpcode(NumOpcodes); err == nil {
		t.Error("out-of-range opcode must error")
	}
}

func TestFlagConsistency(t *testing.T) {
	for _, ins := range Catalog() {
		if ins.Cond && !ins.Branch {
			t.Errorf("%s: conditional but not a branch", ins.Mnemonic)
		}
		if (ins.Call || ins.Ret) && !ins.Branch {
			t.Errorf("%s: call/ret but not a branch", ins.Mnemonic)
		}
		if ins.Branch && ins.Category != CatControlTransfer && ins.Category != CatSystem {
			t.Errorf("%s: branch outside control-transfer/system (%v)", ins.Mnemonic, ins.Category)
		}
		if ins.Mul {
			switch ins.Category {
			case CatBinaryArith, CatX87FPU, CatSIMD:
			default:
				t.Errorf("%s: multiplier use in unexpected category %v", ins.Mnemonic, ins.Category)
			}
		}
	}
}

func TestMultiplierInstructionsExist(t *testing.T) {
	// The undervolting fault model needs multiplier-using instructions
	// in the stream.
	muls := 0
	for _, ins := range Catalog() {
		if ins.Mul {
			muls++
		}
	}
	if muls < 3 {
		t.Errorf("only %d multiplier instructions in catalog", muls)
	}
}

func TestCategoryString(t *testing.T) {
	if CatBinaryArith.String() != "binary-arithmetic" {
		t.Errorf("name = %q", CatBinaryArith.String())
	}
	if Category(99).String() != "category(99)" {
		t.Errorf("unknown name = %q", Category(99).String())
	}
}

func TestCategoryCounts(t *testing.T) {
	counts := make([]int, NumOpcodes)
	counts[0] = 5 // mov: data transfer
	movs, _ := ByMnemonic("movs")
	counts[movs.Opcode] = 3 // string
	byCat, err := CategoryCounts(counts)
	if err != nil {
		t.Fatal(err)
	}
	if byCat[CatDataTransfer] != 5 {
		t.Errorf("data-transfer count = %d", byCat[CatDataTransfer])
	}
	if byCat[CatString] != 3 {
		t.Errorf("string count = %d", byCat[CatString])
	}
	if _, err := CategoryCounts(make([]int, 3)); err == nil {
		t.Error("wrong-length vector must error")
	}
}

func TestCategoryCountsTotalPreserved(t *testing.T) {
	counts := make([]int, NumOpcodes)
	total := 0
	for i := range counts {
		counts[i] = i * 3
		total += counts[i]
	}
	byCat, err := CategoryCounts(counts)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, n := range byCat {
		sum += n
	}
	if sum != total {
		t.Errorf("category sum %d != opcode sum %d", sum, total)
	}
}
