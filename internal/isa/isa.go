// Package isa models the Intel-SDM instruction taxonomy the paper's
// feature collection is built on: "The extracted features are based on
// the frequency of executed instruction categories; based on Intel's
// sub-grouping of instructions, e.g., binary arithmetic, control
// transfer, and system instructions sub-groups."
//
// The catalog enumerates 64 representative mnemonics across the
// sub-groups of SDM Volume 1 Chapter 5, each annotated with the memory
// and control-flow behaviour the Pin-like tracer and the feature
// extractors need. 64 mnemonics is also the input width of the HMD.
package isa

import "fmt"

// Category is an Intel SDM instruction sub-group.
type Category int

// The sub-groups of SDM Vol. 1 Ch. 5 (general-purpose groups first).
const (
	CatDataTransfer Category = iota
	CatBinaryArith
	CatDecimalArith
	CatLogical
	CatShiftRotate
	CatBitByte
	CatControlTransfer
	CatString
	CatIO
	CatFlagControl
	CatSegmentRegister
	CatMisc
	CatX87FPU
	CatSIMD
	CatSystem
	CatRandomNumber

	// NumCategories is the number of sub-groups.
	NumCategories = int(CatRandomNumber) + 1
)

// categoryNames indexes Category.String.
var categoryNames = [NumCategories]string{
	"data-transfer", "binary-arithmetic", "decimal-arithmetic", "logical",
	"shift-rotate", "bit-byte", "control-transfer", "string", "io",
	"flag-control", "segment-register", "misc", "x87-fpu", "simd",
	"system", "random-number",
}

// String implements fmt.Stringer.
func (c Category) String() string {
	if c < 0 || int(c) >= NumCategories {
		return fmt.Sprintf("category(%d)", int(c))
	}
	return categoryNames[c]
}

// Instruction describes one catalog entry.
type Instruction struct {
	// Opcode is the catalog index, the position in feature vectors.
	Opcode int
	// Mnemonic is the assembly name.
	Mnemonic string
	// Category is the SDM sub-group.
	Category Category
	// Load/Store mark typical memory behaviour.
	Load, Store bool
	// Branch marks control transfers; Cond marks conditional ones.
	Branch, Cond bool
	// Call/Ret mark procedure linkage.
	Call, Ret bool
	// Mul marks instructions that exercise the multiplier array — the
	// unit undervolting faults (Section II: only multiplications
	// faulted).
	Mul bool
}

// catalog is the fixed 64-entry instruction set. Order is part of the
// feature-vector contract; append-only.
var catalog = []Instruction{
	// Data transfer (8).
	{Mnemonic: "mov", Category: CatDataTransfer, Load: true},
	{Mnemonic: "movzx", Category: CatDataTransfer, Load: true},
	{Mnemonic: "movsx", Category: CatDataTransfer, Load: true},
	{Mnemonic: "push", Category: CatDataTransfer, Store: true},
	{Mnemonic: "pop", Category: CatDataTransfer, Load: true},
	{Mnemonic: "xchg", Category: CatDataTransfer, Load: true, Store: true},
	{Mnemonic: "cmovcc", Category: CatDataTransfer, Load: true},
	{Mnemonic: "bswap", Category: CatDataTransfer},
	// Binary arithmetic (8).
	{Mnemonic: "add", Category: CatBinaryArith},
	{Mnemonic: "sub", Category: CatBinaryArith},
	{Mnemonic: "adc", Category: CatBinaryArith},
	{Mnemonic: "imul", Category: CatBinaryArith, Mul: true},
	{Mnemonic: "mul", Category: CatBinaryArith, Mul: true},
	{Mnemonic: "idiv", Category: CatBinaryArith},
	{Mnemonic: "inc", Category: CatBinaryArith},
	{Mnemonic: "cmp", Category: CatBinaryArith},
	// Decimal arithmetic (1).
	{Mnemonic: "daa", Category: CatDecimalArith},
	// Logical (4).
	{Mnemonic: "and", Category: CatLogical},
	{Mnemonic: "or", Category: CatLogical},
	{Mnemonic: "xor", Category: CatLogical},
	{Mnemonic: "not", Category: CatLogical},
	// Shift and rotate (4).
	{Mnemonic: "shl", Category: CatShiftRotate},
	{Mnemonic: "shr", Category: CatShiftRotate},
	{Mnemonic: "sar", Category: CatShiftRotate},
	{Mnemonic: "rol", Category: CatShiftRotate},
	// Bit and byte (4).
	{Mnemonic: "bt", Category: CatBitByte},
	{Mnemonic: "bts", Category: CatBitByte},
	{Mnemonic: "setcc", Category: CatBitByte},
	{Mnemonic: "test", Category: CatBitByte},
	// Control transfer (8).
	{Mnemonic: "jmp", Category: CatControlTransfer, Branch: true},
	{Mnemonic: "jcc", Category: CatControlTransfer, Branch: true, Cond: true},
	{Mnemonic: "call", Category: CatControlTransfer, Branch: true, Call: true, Store: true},
	{Mnemonic: "ret", Category: CatControlTransfer, Branch: true, Ret: true, Load: true},
	{Mnemonic: "loop", Category: CatControlTransfer, Branch: true, Cond: true},
	{Mnemonic: "jecxz", Category: CatControlTransfer, Branch: true, Cond: true},
	{Mnemonic: "int", Category: CatControlTransfer, Branch: true},
	{Mnemonic: "iret", Category: CatControlTransfer, Branch: true, Ret: true, Load: true},
	// String (5).
	{Mnemonic: "movs", Category: CatString, Load: true, Store: true},
	{Mnemonic: "cmps", Category: CatString, Load: true},
	{Mnemonic: "scas", Category: CatString, Load: true},
	{Mnemonic: "lods", Category: CatString, Load: true},
	{Mnemonic: "stos", Category: CatString, Store: true},
	// I/O (2).
	{Mnemonic: "in", Category: CatIO, Load: true},
	{Mnemonic: "out", Category: CatIO, Store: true},
	// Flag control (2).
	{Mnemonic: "stc", Category: CatFlagControl},
	{Mnemonic: "pushf", Category: CatFlagControl, Store: true},
	// Segment register (1).
	{Mnemonic: "movsreg", Category: CatSegmentRegister},
	// Miscellaneous (4).
	{Mnemonic: "lea", Category: CatMisc},
	{Mnemonic: "nop", Category: CatMisc},
	{Mnemonic: "cpuid", Category: CatMisc},
	{Mnemonic: "xlat", Category: CatMisc, Load: true},
	// x87 FPU (3).
	{Mnemonic: "fadd", Category: CatX87FPU},
	{Mnemonic: "fmul", Category: CatX87FPU, Mul: true},
	{Mnemonic: "fld", Category: CatX87FPU, Load: true},
	// SIMD (5).
	{Mnemonic: "movdqa", Category: CatSIMD, Load: true},
	{Mnemonic: "pxor", Category: CatSIMD},
	{Mnemonic: "paddd", Category: CatSIMD},
	{Mnemonic: "pmulld", Category: CatSIMD, Mul: true},
	{Mnemonic: "mulps", Category: CatSIMD, Mul: true},
	// System (4).
	{Mnemonic: "syscall", Category: CatSystem, Branch: true, Call: true},
	{Mnemonic: "rdmsr", Category: CatSystem},
	{Mnemonic: "wrmsr", Category: CatSystem},
	{Mnemonic: "hlt", Category: CatSystem},
	// Random number (1).
	{Mnemonic: "rdrand", Category: CatRandomNumber},
}

// NumOpcodes is the catalog size and the width of the F1 feature
// vector.
const NumOpcodes = 64

// byMnemonic indexes the catalog by name.
var byMnemonic map[string]int

func init() {
	if len(catalog) != NumOpcodes {
		panic(fmt.Sprintf("isa: catalog has %d entries, want %d", len(catalog), NumOpcodes))
	}
	byMnemonic = make(map[string]int, NumOpcodes)
	for i := range catalog {
		catalog[i].Opcode = i
		if _, dup := byMnemonic[catalog[i].Mnemonic]; dup {
			panic("isa: duplicate mnemonic " + catalog[i].Mnemonic)
		}
		byMnemonic[catalog[i].Mnemonic] = i
	}
}

// Catalog returns the full instruction table (shared, read-only).
func Catalog() []Instruction { return catalog }

// ByOpcode returns the instruction at a catalog index.
func ByOpcode(op int) (Instruction, error) {
	if op < 0 || op >= NumOpcodes {
		return Instruction{}, fmt.Errorf("isa: opcode %d outside catalog", op)
	}
	return catalog[op], nil
}

// ByMnemonic looks an instruction up by name.
func ByMnemonic(name string) (Instruction, error) {
	i, ok := byMnemonic[name]
	if !ok {
		return Instruction{}, fmt.Errorf("isa: unknown mnemonic %q", name)
	}
	return catalog[i], nil
}

// OpcodesInCategory lists the catalog indices of a sub-group.
func OpcodesInCategory(c Category) []int {
	var out []int
	for i := range catalog {
		if catalog[i].Category == c {
			out = append(out, i)
		}
	}
	return out
}

// CategoryCounts folds a per-opcode count vector into per-category
// counts — the coarse sub-group features of the paper's description.
func CategoryCounts(perOpcode []int) ([NumCategories]int, error) {
	var out [NumCategories]int
	if len(perOpcode) != NumOpcodes {
		return out, fmt.Errorf("isa: count vector has %d entries, want %d", len(perOpcode), NumOpcodes)
	}
	for op, n := range perOpcode {
		out[catalog[op].Category] += n
	}
	return out, nil
}
