// Package dataset synthesizes and manages the evaluation corpus with
// the paper's Section IV structure: 3000 malware programs across five
// families (backdoors, rogues, password stealers, trojans, worms) plus
// 600 benign programs, divided evenly into three folds — victim
// training, attacker training, and testing — with classes distributed
// evenly and randomly across folds, and 3-fold cross-validation by
// rotating the fold roles.
package dataset

import (
	"fmt"
	"runtime"
	"sync"

	"shmd/internal/rng"
	"shmd/internal/trace"
)

// Config sizes a corpus. The zero value is not valid; use
// PaperConfig or QuickConfig as starting points.
type Config struct {
	// MalwarePerFamily programs are generated for each of the five
	// families.
	MalwarePerFamily int
	// BenignCount programs form the benign corpus.
	BenignCount int
	// Windows and WindowSize set the trace geometry.
	Windows    int
	WindowSize int
	// Seed makes the whole corpus deterministic.
	Seed uint64
}

// PaperConfig is the full Section IV corpus: 5×600 = 3000 malware and
// 600 benign programs.
func PaperConfig(seed uint64) Config {
	return Config{
		MalwarePerFamily: 600,
		BenignCount:      600,
		Windows:          trace.DefaultWindows,
		WindowSize:       trace.DefaultWindowSize,
		Seed:             seed,
	}
}

// QuickConfig is a scaled-down corpus with the same structure, used by
// unit tests and fast iterations: 5×60 malware + 60 benign.
func QuickConfig(seed uint64) Config {
	return Config{
		MalwarePerFamily: 60,
		BenignCount:      60,
		Windows:          trace.DefaultWindows,
		WindowSize:       trace.DefaultWindowSize,
		Seed:             seed,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.MalwarePerFamily < 3 {
		return fmt.Errorf("dataset: need >= 3 malware per family for 3 folds, got %d", c.MalwarePerFamily)
	}
	if c.BenignCount < 3 {
		return fmt.Errorf("dataset: need >= 3 benign programs for 3 folds, got %d", c.BenignCount)
	}
	if c.Windows < 2 {
		return fmt.Errorf("dataset: need >= 2 windows, got %d", c.Windows)
	}
	if c.WindowSize < 16 {
		return fmt.Errorf("dataset: window size %d too small", c.WindowSize)
	}
	return nil
}

// TracedProgram bundles a program with its (cached, deterministic)
// trace. All downstream stages — training, detection, evasion — work
// from these windows.
type TracedProgram struct {
	Program *trace.Program
	Windows []trace.WindowCounts
}

// IsMalware returns the ground-truth label.
func (tp TracedProgram) IsMalware() bool { return tp.Program.IsMalware() }

// Class returns the program class.
func (tp TracedProgram) Class() trace.Class { return tp.Program.Class }

// Dataset is a generated corpus.
type Dataset struct {
	Config   Config
	Programs []TracedProgram
}

// Generate builds the corpus. Programs are generated and traced in
// parallel; the result is independent of scheduling because every
// program derives its own random stream.
func Generate(cfg Config) (*Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var specs []struct {
		class trace.Class
		index int
	}
	for _, family := range trace.MalwareFamilies() {
		for i := 0; i < cfg.MalwarePerFamily; i++ {
			specs = append(specs, struct {
				class trace.Class
				index int
			}{family, i})
		}
	}
	for i := 0; i < cfg.BenignCount; i++ {
		specs = append(specs, struct {
			class trace.Class
			index int
		}{trace.Benign, i})
	}

	programs := make([]TracedProgram, len(specs))
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	chunk := (len(specs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(specs) {
			hi = len(specs)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				p, err := trace.NewProgram(specs[i].class, specs[i].index, cfg.Seed)
				if err != nil {
					errs[i] = err
					continue
				}
				ws, err := p.Trace(cfg.Windows, cfg.WindowSize)
				if err != nil {
					errs[i] = err
					continue
				}
				programs[i] = TracedProgram{Program: p, Windows: ws}
			}
		}(lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return &Dataset{Config: cfg, Programs: programs}, nil
}

// Counts returns the number of malware and benign programs.
func (d *Dataset) Counts() (malware, benign int) {
	for _, p := range d.Programs {
		if p.IsMalware() {
			malware++
		} else {
			benign++
		}
	}
	return malware, benign
}

// Split names the three fold roles of the paper's evaluation.
type Split struct {
	VictimTrain   []int
	AttackerTrain []int
	Test          []int
}

// ThreeFold produces the rotation-th of the three cross-validation
// splits: programs are stratified by class, shuffled deterministically,
// dealt into three folds, and the folds rotate through the
// victim-training / attacker-training / testing roles.
func (d *Dataset) ThreeFold(rotation int) (Split, error) {
	if rotation < 0 || rotation > 2 {
		return Split{}, fmt.Errorf("dataset: rotation %d outside 0..2", rotation)
	}
	folds := make([][]int, 3)
	// Stratify: deal each class's shuffled programs round-robin, so
	// "the malware types and the benign application types were
	// distributed evenly and randomly across the folds".
	byClass := map[trace.Class][]int{}
	for i, p := range d.Programs {
		byClass[p.Class()] = append(byClass[p.Class()], i)
	}
	for c := trace.Class(0); int(c) < trace.NumClasses; c++ {
		idx := byClass[c]
		r := rng.NewRand(d.Config.Seed, 0xF01d, uint64(c))
		r.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
		for k, i := range idx {
			folds[k%3] = append(folds[k%3], i)
		}
	}
	return Split{
		VictimTrain:   folds[rotation%3],
		AttackerTrain: folds[(rotation+1)%3],
		Test:          folds[(rotation+2)%3],
	}, nil
}

// Select returns the traced programs at the given indices.
func (d *Dataset) Select(indices []int) []TracedProgram {
	out := make([]TracedProgram, len(indices))
	for k, i := range indices {
		out[k] = d.Programs[i]
	}
	return out
}

// MalwareOf filters indices down to malware programs — the evasion
// pipeline only transforms malware.
func (d *Dataset) MalwareOf(indices []int) []int {
	var out []int
	for _, i := range indices {
		if d.Programs[i].IsMalware() {
			out = append(out, i)
		}
	}
	return out
}
