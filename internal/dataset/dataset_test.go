package dataset

import (
	"testing"

	"shmd/internal/trace"
)

func quickDataset(t *testing.T) *Dataset {
	t.Helper()
	d, err := Generate(QuickConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestConfigValidate(t *testing.T) {
	if err := PaperConfig(1).Validate(); err != nil {
		t.Errorf("paper config invalid: %v", err)
	}
	if err := QuickConfig(1).Validate(); err != nil {
		t.Errorf("quick config invalid: %v", err)
	}
	bad := QuickConfig(1)
	bad.MalwarePerFamily = 1
	if err := bad.Validate(); err == nil {
		t.Error("too few malware must be rejected")
	}
	bad = QuickConfig(1)
	bad.BenignCount = 0
	if err := bad.Validate(); err == nil {
		t.Error("no benign must be rejected")
	}
	bad = QuickConfig(1)
	bad.Windows = 1
	if err := bad.Validate(); err == nil {
		t.Error("single window must be rejected")
	}
	bad = QuickConfig(1)
	bad.WindowSize = 4
	if err := bad.Validate(); err == nil {
		t.Error("tiny window must be rejected")
	}
	if _, err := Generate(Config{}); err == nil {
		t.Error("zero config must be rejected")
	}
}

func TestGenerateCounts(t *testing.T) {
	d := quickDataset(t)
	malware, benign := d.Counts()
	if malware != 5*60 {
		t.Errorf("malware = %d, want 300", malware)
	}
	if benign != 60 {
		t.Errorf("benign = %d, want 60", benign)
	}
	if len(d.Programs) != 360 {
		t.Errorf("total = %d", len(d.Programs))
	}
	// Every family present in equal measure.
	perClass := map[trace.Class]int{}
	for _, p := range d.Programs {
		perClass[p.Class()]++
	}
	for _, family := range trace.MalwareFamilies() {
		if perClass[family] != 60 {
			t.Errorf("%v count = %d", family, perClass[family])
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := quickDataset(t)
	b := quickDataset(t)
	for i := range a.Programs {
		if a.Programs[i].Program.Name != b.Programs[i].Program.Name {
			t.Fatalf("program %d name differs", i)
		}
		for w := range a.Programs[i].Windows {
			if a.Programs[i].Windows[w] != b.Programs[i].Windows[w] {
				t.Fatalf("program %d window %d differs", i, w)
			}
		}
	}
}

func TestGenerateTracesHaveGeometry(t *testing.T) {
	d := quickDataset(t)
	for _, p := range d.Programs {
		if len(p.Windows) != d.Config.Windows {
			t.Fatalf("%s has %d windows", p.Program.Name, len(p.Windows))
		}
		if p.Windows[0].Total() != d.Config.WindowSize {
			t.Fatalf("%s window size %d", p.Program.Name, p.Windows[0].Total())
		}
	}
}

func TestThreeFoldPartition(t *testing.T) {
	d := quickDataset(t)
	split, err := d.ThreeFold(0)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]int{}
	for _, idx := range [][]int{split.VictimTrain, split.AttackerTrain, split.Test} {
		for _, i := range idx {
			seen[i]++
		}
	}
	if len(seen) != len(d.Programs) {
		t.Errorf("folds cover %d/%d programs", len(seen), len(d.Programs))
	}
	for i, n := range seen {
		if n != 1 {
			t.Errorf("program %d appears in %d folds", i, n)
		}
	}
	// Roughly equal fold sizes.
	for _, fold := range [][]int{split.VictimTrain, split.AttackerTrain, split.Test} {
		if len(fold) != 120 {
			t.Errorf("fold size = %d, want 120", len(fold))
		}
	}
}

func TestThreeFoldStratified(t *testing.T) {
	d := quickDataset(t)
	split, _ := d.ThreeFold(0)
	count := func(fold []int, class trace.Class) int {
		n := 0
		for _, i := range fold {
			if d.Programs[i].Class() == class {
				n++
			}
		}
		return n
	}
	for c := trace.Class(0); int(c) < trace.NumClasses; c++ {
		for _, fold := range [][]int{split.VictimTrain, split.AttackerTrain, split.Test} {
			if got := count(fold, c); got != 20 {
				t.Errorf("class %v has %d programs in a fold, want 20", c, got)
			}
		}
	}
}

func TestThreeFoldRotations(t *testing.T) {
	d := quickDataset(t)
	s0, _ := d.ThreeFold(0)
	s1, _ := d.ThreeFold(1)
	s2, _ := d.ThreeFold(2)
	// Rotation permutes roles: victim fold of rotation 1 is the
	// attacker fold of rotation 0, etc.
	equal := func(a, b []int) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if !equal(s1.VictimTrain, s0.AttackerTrain) {
		t.Error("rotation 1 victim fold should be rotation 0 attacker fold")
	}
	if !equal(s2.VictimTrain, s0.Test) {
		t.Error("rotation 2 victim fold should be rotation 0 test fold")
	}
	if _, err := d.ThreeFold(3); err == nil {
		t.Error("rotation 3 must error")
	}
	if _, err := d.ThreeFold(-1); err == nil {
		t.Error("negative rotation must error")
	}
}

func TestSelectAndMalwareOf(t *testing.T) {
	d := quickDataset(t)
	split, _ := d.ThreeFold(0)
	test := d.Select(split.Test)
	if len(test) != len(split.Test) {
		t.Fatalf("Select returned %d programs", len(test))
	}
	malware := d.MalwareOf(split.Test)
	if len(malware) != 100 {
		t.Errorf("malware in test fold = %d, want 100", len(malware))
	}
	for _, i := range malware {
		if !d.Programs[i].IsMalware() {
			t.Error("MalwareOf returned a benign program")
		}
	}
}
