package route

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"

	"shmd/internal/core"
)

// Metrics is the router's counter block, rendered in the Prometheus
// text format alongside per-backend gauges read at scrape time.
type Metrics struct {
	mu       sync.Mutex
	requests map[int]*atomic.Uint64
	// classSheds counts partial-brownout sheds by priority class; the
	// key set is bounded by tenant.ParseClass (three classes).
	classSheds map[string]*atomic.Uint64

	sheds     atomic.Uint64
	hedges    atomic.Uint64
	hedgeWins atomic.Uint64
	retries   atomic.Uint64
	ejections atomic.Uint64
}

// NewMetrics builds an empty counter block.
func NewMetrics() *Metrics {
	return &Metrics{
		requests:   make(map[int]*atomic.Uint64),
		classSheds: make(map[string]*atomic.Uint64),
	}
}

// Request records one routed /v1/detect request by final status code.
// Observe endpoints (/healthz, /readyz, /metrics) do not feed it —
// health probing at any frequency must not move the error-rate
// counters the fleet alerts on.
func (m *Metrics) Request(code int) {
	m.mu.Lock()
	c, ok := m.requests[code]
	if !ok {
		c = new(atomic.Uint64)
		m.requests[code] = c
	}
	m.mu.Unlock()
	c.Add(1)
}

// Shed records one request refused because no backend was routable or
// the router was draining.
func (m *Metrics) Shed() { m.sheds.Add(1) }

// ClassShed records one partial-brownout shed of the named priority
// class.
func (m *Metrics) ClassShed(class string) {
	m.mu.Lock()
	c, ok := m.classSheds[class]
	if !ok {
		c = new(atomic.Uint64)
		m.classSheds[class] = c
	}
	m.mu.Unlock()
	c.Add(1)
}

// ClassSheds reports partial-brownout sheds for one class.
func (m *Metrics) ClassSheds(class string) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if c, ok := m.classSheds[class]; ok {
		return c.Load()
	}
	return 0
}

// Hedge records one hedged re-dispatch onto a second backend.
func (m *Metrics) Hedge() { m.hedges.Add(1) }

// HedgeWin records one reply won by the hedge attempt.
func (m *Metrics) HedgeWin() { m.hedgeWins.Add(1) }

// Retry records one retry round after a failed dispatch.
func (m *Metrics) Retry() { m.retries.Add(1) }

// Ejection records one backend leaving the rotation on a failed probe.
func (m *Metrics) Ejection() { m.ejections.Add(1) }

// Sheds reports brownout/drain refusals.
func (m *Metrics) Sheds() uint64 { return m.sheds.Load() }

// Hedges reports hedged re-dispatches.
func (m *Metrics) Hedges() uint64 { return m.hedges.Load() }

// HedgeWins reports replies won by hedge attempts.
func (m *Metrics) HedgeWins() uint64 { return m.hedgeWins.Load() }

// Retries reports retry rounds.
func (m *Metrics) Retries() uint64 { return m.retries.Load() }

// Ejections reports rotation ejections.
func (m *Metrics) Ejections() uint64 { return m.ejections.Load() }

// BackendHealth is one backend's row in the /healthz report.
type BackendHealth struct {
	Backend string `json:"backend"`
	// Ready is the active prober's last verdict; Breaker is the
	// passive request-outcome verdict. A backend serves traffic only
	// when both agree.
	Ready    bool   `json:"ready"`
	Breaker  string `json:"breaker"`
	Inflight int64  `json:"inflight"`
	Requests uint64 `json:"requests"`
	Failures uint64 `json:"failures"`
	// Trips/Reopens/Recoveries are the breaker's transition counters.
	Trips      uint64 `json:"trips"`
	Reopens    uint64 `json:"reopens"`
	Recoveries uint64 `json:"recoveries"`
	// Ejections counts this backend's exits from the probe rotation.
	Ejections uint64 `json:"ejections"`
}

// RouteHealth is the GET /healthz body.
type RouteHealth struct {
	// Status is "ok" while at least one backend is routable,
	// "brownout" when none is.
	Status   string          `json:"status"`
	Backends []BackendHealth `json:"backends"`
}

// healthReport assembles the current fleet view.
func (rt *Router) healthReport() RouteHealth {
	report := RouteHealth{Status: "brownout"}
	for _, b := range rt.backends {
		snap := b.breaker.Snapshot()
		if b.routable() {
			report.Status = "ok"
		}
		report.Backends = append(report.Backends, BackendHealth{
			Backend:    b.name,
			Ready:      b.ready.Load(),
			Breaker:    snap.State.String(),
			Inflight:   b.inflight.Load(),
			Requests:   b.requests.Load(),
			Failures:   b.failures.Load(),
			Trips:      snap.Trips,
			Reopens:    snap.Reopens,
			Recoveries: snap.Recoveries,
			Ejections:  b.ejections.Load(),
		})
	}
	return report
}

// Health returns the current fleet view (the /healthz body). The soak
// harness samples it to assert traffic re-converges onto survivors
// after a backend dies.
func (rt *Router) Health() RouteHealth { return rt.healthReport() }

// handleHealthz serves GET /healthz: 200 while at least one backend is
// routable, 503 during a total brownout. The body is the per-backend
// fleet view either way.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	report := rt.healthReport()
	code := http.StatusOK
	if report.Status != "ok" {
		code = http.StatusServiceUnavailable
		rt.shedHint(w)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(report)
}

// handleReadyz serves GET /readyz: like /healthz, but it also flips
// 503 the moment the router starts draining, so an upstream tier stops
// sending before the listener closes.
func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	ready, reason := true, ""
	if rt.draining.Load() {
		ready, reason = false, "draining"
	} else if rt.healthReport().Status != "ok" {
		ready, reason = false, "brownout"
	}
	code := http.StatusOK
	if !ready {
		code = http.StatusServiceUnavailable
		rt.shedHint(w)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(struct {
		Ready  bool   `json:"ready"`
		Reason string `json:"reason,omitempty"`
	}{Ready: ready, Reason: reason})
}

// handleMetrics serves GET /metrics in the Prometheus text format.
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	rt.writeProm(w)
}

// breakerStateValue encodes a breaker state as a numeric gauge
// (0 closed, 1 open, 2 half-open), mirroring shmd_session_state.
func breakerStateValue(s core.BreakerState) int {
	switch s {
	case core.BreakerOpen:
		return 1
	case core.BreakerHalfOpen:
		return 2
	default:
		return 0
	}
}

// writeProm renders the router counters and per-backend gauges.
func (rt *Router) writeProm(w io.Writer) {
	m := rt.metrics
	fmt.Fprintln(w, "# HELP shmd_route_requests_total Proxied /v1/detect requests, by final status code (observe endpoints excluded).")
	fmt.Fprintln(w, "# TYPE shmd_route_requests_total counter")
	m.mu.Lock()
	codes := make([]int, 0, len(m.requests))
	for code := range m.requests {
		codes = append(codes, code)
	}
	sort.Ints(codes)
	counts := make(map[int]uint64, len(codes))
	for _, code := range codes {
		counts[code] = m.requests[code].Load()
	}
	m.mu.Unlock()
	for _, code := range codes {
		fmt.Fprintf(w, "shmd_route_requests_total{code=\"%d\"} %d\n", code, counts[code])
	}

	fmt.Fprintln(w, "# HELP shmd_route_class_sheds_total Partial-brownout sheds by priority class.")
	fmt.Fprintln(w, "# TYPE shmd_route_class_sheds_total counter")
	m.mu.Lock()
	classes := make([]string, 0, len(m.classSheds))
	for class := range m.classSheds {
		classes = append(classes, class)
	}
	sort.Strings(classes)
	classCounts := make(map[string]uint64, len(classes))
	for _, class := range classes {
		classCounts[class] = m.classSheds[class].Load()
	}
	m.mu.Unlock()
	for _, class := range classes {
		fmt.Fprintf(w, "shmd_route_class_sheds_total{class=\"%s\"} %d\n", class, classCounts[class])
	}

	scalars := []struct {
		name, help string
		value      uint64
	}{
		{"shmd_route_sheds_total", "Requests refused with no routable backend or while draining.", m.sheds.Load()},
		{"shmd_route_hedges_total", "Requests re-dispatched onto a second backend past the hedge budget.", m.hedges.Load()},
		{"shmd_route_hedge_wins_total", "Replies won by the hedge attempt.", m.hedgeWins.Load()},
		{"shmd_route_retries_total", "Retry rounds after failed dispatches.", m.retries.Load()},
		{"shmd_route_ejections_total", "Backends ejected from the rotation on failed health probes.", m.ejections.Load()},
	}
	for _, s := range scalars {
		fmt.Fprintf(w, "# HELP %s %s\n", s.name, s.help)
		fmt.Fprintf(w, "# TYPE %s counter\n", s.name)
		fmt.Fprintf(w, "%s %d\n", s.name, s.value)
	}

	type row struct {
		name, help, kind string
		value            func(b *backend, snap core.BreakerSnapshot) string
	}
	rows := []row{
		{"shmd_route_backend_up", "Backend in the probe rotation (1) or ejected (0).", "gauge",
			func(b *backend, _ core.BreakerSnapshot) string {
				if b.ready.Load() {
					return "1"
				}
				return "0"
			}},
		{"shmd_route_backend_breaker_state", "Backend breaker state (0 closed, 1 open, 2 half-open).", "gauge",
			func(_ *backend, snap core.BreakerSnapshot) string {
				return fmt.Sprintf("%d", breakerStateValue(snap.State))
			}},
		{"shmd_route_backend_inflight", "Outstanding requests dispatched to the backend.", "gauge",
			func(b *backend, _ core.BreakerSnapshot) string { return fmt.Sprintf("%d", b.inflight.Load()) }},
		{"shmd_route_backend_requests_total", "Dispatch attempts sent to the backend (incl. hedges and retries).", "counter",
			func(b *backend, _ core.BreakerSnapshot) string { return fmt.Sprintf("%d", b.requests.Load()) }},
		{"shmd_route_backend_failures_total", "Attempts that counted as breaker failures (connect errors, 5xx).", "counter",
			func(b *backend, _ core.BreakerSnapshot) string { return fmt.Sprintf("%d", b.failures.Load()) }},
		{"shmd_route_backend_breaker_trips_total", "Breaker trips (closed to open).", "counter",
			func(_ *backend, snap core.BreakerSnapshot) string { return fmt.Sprintf("%d", snap.Trips) }},
		{"shmd_route_backend_breaker_reopens_total", "Failed half-open probes (re-opened with doubled cooldown).", "counter",
			func(_ *backend, snap core.BreakerSnapshot) string { return fmt.Sprintf("%d", snap.Reopens) }},
		{"shmd_route_backend_breaker_recoveries_total", "Breaker recoveries back to closed.", "counter",
			func(_ *backend, snap core.BreakerSnapshot) string { return fmt.Sprintf("%d", snap.Recoveries) }},
		{"shmd_route_backend_ejections_total", "Rotation ejections on failed health probes.", "counter",
			func(b *backend, _ core.BreakerSnapshot) string { return fmt.Sprintf("%d", b.ejections.Load()) }},
	}
	for _, r := range rows {
		fmt.Fprintf(w, "# HELP %s %s\n", r.name, r.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", r.name, r.kind)
		for _, b := range rt.backends {
			fmt.Fprintf(w, "%s{backend=\"%s\"} %s\n", r.name, b.name, r.value(b, b.breaker.Snapshot()))
		}
	}
}
