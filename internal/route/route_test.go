package route

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"shmd/internal/core"
)

// fakeBackend is one scriptable detection backend: an httptest server
// whose /v1/detect behavior and /readyz verdict tests flip at will.
type fakeBackend struct {
	ts *httptest.Server
	// status is the /v1/detect reply code (200 = echo a verdict).
	status atomic.Int64
	// ready is the /readyz verdict.
	ready atomic.Bool
	// delay stalls /v1/detect to simulate a slow backend.
	delay atomic.Int64 // nanoseconds
	// replySize, when >0, makes /v1/detect answer 200 with a body of
	// exactly this many bytes (exercises the router's relay cap).
	replySize atomic.Int64
	// hits counts /v1/detect requests served.
	hits atomic.Int64
}

func newFakeBackend(t *testing.T, name string) *fakeBackend {
	t.Helper()
	fb := &fakeBackend{}
	fb.status.Store(http.StatusOK)
	fb.ready.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/detect", func(w http.ResponseWriter, r *http.Request) {
		fb.hits.Add(1)
		if d := fb.delay.Load(); d > 0 {
			select {
			case <-time.After(time.Duration(d)):
			case <-r.Context().Done():
				return
			}
		}
		code := int(fb.status.Load())
		if code != http.StatusOK {
			http.Error(w, "scripted failure", code)
			return
		}
		if n := fb.replySize.Load(); n > 0 {
			w.Header().Set("Content-Type", "application/json")
			w.Write(bytes.Repeat([]byte("x"), int(n)))
			return
		}
		body, _ := io.ReadAll(r.Body)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"backend":%q,"echo":%d}`, name, len(body))
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if !fb.ready.Load() {
			http.Error(w, `{"ready":false}`, http.StatusServiceUnavailable)
			return
		}
		fmt.Fprint(w, `{"ready":true}`)
	})
	fb.ts = httptest.NewServer(mux)
	t.Cleanup(fb.ts.Close)
	return fb
}

func (fb *fakeBackend) host() string {
	u, _ := url.Parse(fb.ts.URL)
	return u.Host
}

// newTestRouter builds a router over the given backends with fast,
// deterministic settings: pinned jitter seed, no retry sleeps, no
// background prober.
func newTestRouter(t *testing.T, cfg Config, backends ...*fakeBackend) *Router {
	t.Helper()
	for _, fb := range backends {
		cfg.Backends = append(cfg.Backends, fb.ts.URL)
	}
	cfg.ProbeInterval = -1
	if cfg.JitterSeed == 0 {
		cfg.JitterSeed = 1
	}
	if cfg.Sleep == nil {
		cfg.Sleep = func(time.Duration) {}
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

// postDetect drives the router handler directly.
func postDetect(t *testing.T, rt *Router, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/detect", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, req)
	return rec
}

func TestRouterRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("no backends accepted")
	}
	if _, err := New(Config{Backends: []string{"not a url", ""}}); err == nil {
		t.Error("relative backend URL accepted")
	}
	if _, err := New(Config{Backends: []string{"http://127.0.0.1:1", "http://127.0.0.1:1"}}); err == nil {
		t.Error("duplicate backend accepted")
	}
}

// TestProxyHappyPath checks the full relay: body forwarded, reply
// status/type/body relayed, backend identity exposed.
func TestProxyHappyPath(t *testing.T) {
	fb := newFakeBackend(t, "b0")
	rt := newTestRouter(t, Config{}, fb)
	rec := postDetect(t, rt, `{"programs":[]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d body %s", rec.Code, rec.Body)
	}
	var reply struct {
		Backend string `json:"backend"`
		Echo    int    `json:"echo"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &reply); err != nil {
		t.Fatal(err)
	}
	if reply.Backend != "b0" || reply.Echo != len(`{"programs":[]}`) {
		t.Errorf("reply = %+v", reply)
	}
	if got := rec.Header().Get("X-Shmd-Backend"); got != fb.host() {
		t.Errorf("X-Shmd-Backend = %q, want %q", got, fb.host())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}

	rec = httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/detect", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/detect = %d, want 405", rec.Code)
	}
}

// TestPickLoadAware pins the dispatch invariant: between two routable
// backends, the one with fewer outstanding requests wins.
func TestPickLoadAware(t *testing.T) {
	b0, b1 := newFakeBackend(t, "b0"), newFakeBackend(t, "b1")
	rt := newTestRouter(t, Config{}, b0, b1)
	rt.backends[0].inflight.Store(5)
	for i := 0; i < 10; i++ {
		if got, _ := rt.pick(map[*backend]bool{}); got != rt.backends[1] {
			t.Fatalf("pick chose the loaded backend (inflight 5 vs 0)")
		}
	}
	rt.backends[0].inflight.Store(0)
	rt.backends[1].inflight.Store(3)
	for i := 0; i < 10; i++ {
		if got, _ := rt.pick(map[*backend]bool{}); got != rt.backends[0] {
			t.Fatalf("pick chose the loaded backend (inflight 0 vs 3)")
		}
	}
}

// TestPickPowerOfTwo checks the 3+ backend path: the pair is sampled
// randomly but the less-loaded of the sampled pair always wins, so the
// most loaded backend of three must receive a minority of picks.
func TestPickPowerOfTwo(t *testing.T) {
	b0, b1, b2 := newFakeBackend(t, "b0"), newFakeBackend(t, "b1"), newFakeBackend(t, "b2")
	rt := newTestRouter(t, Config{}, b0, b1, b2)
	rt.backends[0].inflight.Store(100)
	picks := map[string]int{}
	for i := 0; i < 300; i++ {
		b, _ := rt.pick(map[*backend]bool{})
		picks[b.name]++
	}
	// The loaded backend can only win when sampled against itself —
	// impossible with distinct indices — so it must never be picked.
	if picks[rt.backends[0].name] != 0 {
		t.Errorf("most-loaded backend picked %d times, want 0 (picks: %v)", picks[rt.backends[0].name], picks)
	}
	if picks[rt.backends[1].name] == 0 || picks[rt.backends[2].name] == 0 {
		t.Errorf("healthy backends starved: %v", picks)
	}
}

// TestPickExcludesTried: a hedge or retry never lands on a backend
// already holding the same request.
func TestPickExcludesTried(t *testing.T) {
	b0, b1 := newFakeBackend(t, "b0"), newFakeBackend(t, "b1")
	rt := newTestRouter(t, Config{}, b0, b1)
	tried := map[*backend]bool{rt.backends[0]: true}
	for i := 0; i < 10; i++ {
		if got, _ := rt.pick(tried); got != rt.backends[1] {
			t.Fatal("pick returned a tried backend")
		}
	}
	tried[rt.backends[1]] = true
	if got, _ := rt.pick(tried); got != nil {
		t.Error("pick invented a backend with all tried")
	}
}

// TestBreakerTripAndProbe drives a backend through failure → breaker
// open → half-open live probe → recovery, using an injected breaker
// clock for determinism.
func TestBreakerTripAndProbe(t *testing.T) {
	bad, good := newFakeBackend(t, "bad"), newFakeBackend(t, "good")
	bad.status.Store(http.StatusInternalServerError)
	clock := time.Unix(0, 0)
	rt := newTestRouter(t, Config{
		MaxRetries: 3,
		Breaker: core.BreakerConfig{
			Threshold: 2,
			Cooldown:  time.Minute,
			Now:       func() time.Time { return clock },
		},
	}, bad, good)

	// Each request that lands on `bad` fails and is retried onto
	// `good`; two such failures open bad's breaker.
	for i := 0; i < 8; i++ {
		if rec := postDetect(t, rt, `{}`); rec.Code != http.StatusOK {
			t.Fatalf("request %d: %d %s", i, rec.Code, rec.Body)
		}
	}
	if st := rt.backends[0].breaker.State(); st != core.BreakerOpen {
		t.Fatalf("bad backend breaker = %v, want open", st)
	}
	badHits := bad.hits.Load()

	// Breaker open: traffic flows to `good` only.
	for i := 0; i < 5; i++ {
		if rec := postDetect(t, rt, `{}`); rec.Code != http.StatusOK {
			t.Fatalf("during open: %d", rec.Code)
		}
	}
	if got := bad.hits.Load(); got != badHits {
		t.Fatalf("open breaker leaked %d requests to bad backend", got-badHits)
	}

	// Cooldown elapses; the backend has healed. The next dispatch may
	// claim the half-open probe with live traffic and close the breaker.
	bad.status.Store(http.StatusOK)
	clock = clock.Add(time.Minute)
	for i := 0; i < 20 && rt.backends[0].breaker.State() != core.BreakerClosed; i++ {
		if rec := postDetect(t, rt, `{}`); rec.Code != http.StatusOK {
			t.Fatalf("during half-open: %d", rec.Code)
		}
	}
	if st := rt.backends[0].breaker.State(); st != core.BreakerClosed {
		t.Fatalf("breaker = %v after healed probes, want closed", st)
	}
	if snap := rt.backends[0].breaker.Snapshot(); snap.Recoveries == 0 {
		t.Error("recovery not counted")
	}
}

// TestRetryOnConnectError: a dead backend (closed listener) is
// retried onto a live one; the client sees only the 200.
func TestRetryOnConnectError(t *testing.T) {
	dead, live := newFakeBackend(t, "dead"), newFakeBackend(t, "live")
	dead.ts.Close()
	rt := newTestRouter(t, Config{MaxRetries: 2}, dead, live)
	ok, retried := false, false
	for i := 0; i < 6; i++ {
		rec := postDetect(t, rt, `{}`)
		if rec.Code != http.StatusOK {
			t.Fatalf("request %d: %d %s", i, rec.Code, rec.Body)
		}
		ok = true
	}
	retried = rt.metrics.Retries() > 0
	if !ok || !retried {
		t.Errorf("ok=%v retries=%d, want success with retries recorded", ok, rt.metrics.Retries())
	}
	if rt.backends[0].failures.Load() == 0 {
		t.Error("dead backend recorded no failures")
	}
}

// TestHedgeWinsOnSlowPrimary: the primary stalls past HedgeAfter, the
// hedge lands on the second backend, and its verdict is served first.
func TestHedgeWinsOnSlowPrimary(t *testing.T) {
	slow, fast := newFakeBackend(t, "slow"), newFakeBackend(t, "fast")
	slow.delay.Store(int64(2 * time.Second))
	fast.delay.Store(0)
	rt := newTestRouter(t, Config{HedgeAfter: 10 * time.Millisecond}, slow, fast)
	// Force the primary pick onto `slow` by loading `fast`.
	rt.backends[1].inflight.Add(10)
	done := make(chan *httptest.ResponseRecorder, 1)
	go func() { done <- postDetect(t, rt, `{}`) }()
	var rec *httptest.ResponseRecorder
	select {
	case rec = <-done:
	case <-time.After(time.Second):
		t.Fatal("hedged request still waiting on the slow primary")
	}
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d %s", rec.Code, rec.Body)
	}
	var reply struct {
		Backend string `json:"backend"`
	}
	json.Unmarshal(rec.Body.Bytes(), &reply)
	if reply.Backend != "fast" {
		t.Errorf("verdict came from %q, want the hedge backend", reply.Backend)
	}
	if rt.metrics.Hedges() != 1 || rt.metrics.HedgeWins() != 1 {
		t.Errorf("hedges=%d wins=%d, want 1/1", rt.metrics.Hedges(), rt.metrics.HedgeWins())
	}
}

// TestBrownout: every backend ejected → immediate 503 with a jittered
// Retry-After, and /healthz goes 503 with the fleet view.
func TestBrownout(t *testing.T) {
	b0, b1 := newFakeBackend(t, "b0"), newFakeBackend(t, "b1")
	b0.ready.Store(false)
	b1.ready.Store(false)
	rt := newTestRouter(t, Config{}, b0, b1)
	if up := rt.ProbeOnce(context.Background()); up != 0 {
		t.Fatalf("ProbeOnce = %d backends up, want 0", up)
	}
	if rt.metrics.Ejections() != 2 {
		t.Errorf("ejections = %d, want 2", rt.metrics.Ejections())
	}

	rec := postDetect(t, rt, `{}`)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("brownout status = %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("brownout 503 missing Retry-After")
	}
	if rt.metrics.Sheds() == 0 {
		t.Error("shed not counted")
	}

	hrec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(hrec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if hrec.Code != http.StatusServiceUnavailable {
		t.Errorf("healthz = %d, want 503", hrec.Code)
	}
	var health RouteHealth
	if err := json.Unmarshal(hrec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "brownout" || len(health.Backends) != 2 {
		t.Errorf("health = %+v", health)
	}

	// One backend recovers: the next probe re-admits it and traffic
	// flows again.
	b1.ready.Store(true)
	if up := rt.ProbeOnce(context.Background()); up != 1 {
		t.Fatalf("ProbeOnce after recovery = %d, want 1", up)
	}
	if rec := postDetect(t, rt, `{}`); rec.Code != http.StatusOK {
		t.Errorf("after recovery: %d %s", rec.Code, rec.Body)
	}
}

// TestMetricsEndpoint spot-checks the exposition format.
func TestMetricsEndpoint(t *testing.T) {
	fb := newFakeBackend(t, "b0")
	rt := newTestRouter(t, Config{}, fb)
	postDetect(t, rt, `{}`)
	rec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics = %d", rec.Code)
	}
	out := rec.Body.String()
	// Only the detect request counts; the scrape itself must not.
	for _, want := range []string{
		`shmd_route_requests_total{code="200"} 1`,
		fmt.Sprintf(`shmd_route_backend_up{backend="%s"} 1`, fb.host()),
		fmt.Sprintf(`shmd_route_backend_breaker_state{backend="%s"} 0`, fb.host()),
		fmt.Sprintf(`shmd_route_backend_requests_total{backend="%s"} 1`, fb.host()),
		"shmd_route_sheds_total 0",
		"shmd_route_ejections_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestServeDrain: cancelling Serve's context flips /readyz to 503
// (draining) and refuses new detect traffic, while the listener drains.
func TestServeDrain(t *testing.T) {
	fb := newFakeBackend(t, "b0")
	rt := newTestRouter(t, Config{ShutdownTimeout: 5 * time.Second}, fb)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- rt.Serve(ctx, ln) }()

	// The router answers while up.
	resp, err := http.Get("http://" + ln.Addr().String() + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz while up = %d", resp.StatusCode)
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// Post-drain, the handler (still mountable) refuses work.
	rec := postDetect(t, rt, `{}`)
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("detect after drain = %d, want 503", rec.Code)
	}
	rrec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rrec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rrec.Code != http.StatusServiceUnavailable || !strings.Contains(rrec.Body.String(), "draining") {
		t.Errorf("readyz after drain = %d %s, want 503 draining", rrec.Code, rrec.Body)
	}
}

// TestBodyTooLarge: the router refuses to buffer an oversized body
// rather than streaming it through unreplayably.
func TestBodyTooLarge(t *testing.T) {
	fb := newFakeBackend(t, "b0")
	rt := newTestRouter(t, Config{MaxBodyBytes: 64}, fb)
	rec := postDetect(t, rt, strings.Repeat("x", 65))
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body = %d, want 413", rec.Code)
	}
	if fb.hits.Load() != 0 {
		t.Error("oversized body reached a backend")
	}
}

// TestHalfOpenProbeReleasedOnCancel: an attempt holding the half-open
// probe whose context dies (client disconnect, hedge loser) must hand
// the probe back. A leaked probe wedges the breaker half-open — Allow
// refuses forever — and the backend never serves again.
func TestHalfOpenProbeReleasedOnCancel(t *testing.T) {
	fb := newFakeBackend(t, "b0")
	clock := time.Unix(0, 0)
	rt := newTestRouter(t, Config{
		Breaker: core.BreakerConfig{
			Threshold: 1,
			Cooldown:  time.Minute,
			Now:       func() time.Time { return clock },
		},
	}, fb)
	b := rt.backends[0]
	b.breaker.Failure() // threshold 1: trips open
	clock = clock.Add(time.Minute)

	picked, probe := rt.pick(map[*backend]bool{})
	if picked != b || !probe {
		t.Fatalf("pick = %v probe=%v, want the half-open probe claimed", picked, probe)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := rt.forward(ctx, b, []byte(`{}`), http.Header{}, true); err == nil {
		t.Fatal("cancelled forward reported success")
	}
	snap := b.breaker.Snapshot()
	if snap.State != core.BreakerOpen {
		t.Fatalf("breaker = %v after abandoned probe, want open (released)", snap.State)
	}
	if snap.Reopens != 0 {
		t.Errorf("abandoned probe counted as a reopen (%d)", snap.Reopens)
	}
	if snap.Cooldown != time.Minute {
		t.Errorf("abandoned probe changed the cooldown to %v", snap.Cooldown)
	}

	// The backend re-earns traffic on the next cooldown: a fresh probe
	// is granted and the healed backend closes its breaker.
	clock = clock.Add(time.Minute)
	if rec := postDetect(t, rt, `{}`); rec.Code != http.StatusOK {
		t.Fatalf("post-release dispatch = %d, want 200", rec.Code)
	}
	if st := b.breaker.State(); st != core.BreakerClosed {
		t.Errorf("breaker = %v after healed probe, want closed", st)
	}
}

// TestOversizedReplyNotTruncated: a backend reply past MaxBodyBytes is
// a failed attempt — retried onto a fresh backend or surfaced as 502 —
// never truncated and relayed with the backend's 200.
func TestOversizedReplyNotTruncated(t *testing.T) {
	big := newFakeBackend(t, "big")
	big.replySize.Store(100)
	solo := newTestRouter(t, Config{MaxBodyBytes: 64}, big)
	if rec := postDetect(t, solo, `{}`); rec.Code != http.StatusBadGateway {
		t.Fatalf("oversized reply relayed as %d (body %d bytes), want 502", rec.Code, rec.Body.Len())
	}
	if solo.backends[0].failures.Load() == 0 {
		t.Error("oversized reply not counted as a backend failure")
	}

	// With a sane peer available, the retry lands there and the client
	// sees its complete reply.
	big2, sane := newFakeBackend(t, "big2"), newFakeBackend(t, "sane")
	big2.replySize.Store(100)
	rt := newTestRouter(t, Config{MaxBodyBytes: 64, MaxRetries: 1}, big2, sane)
	// Pin the primary pick onto the oversized backend.
	rt.backends[1].inflight.Add(10)
	rec := postDetect(t, rt, `{}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d %s, want 200 from the retry", rec.Code, rec.Body)
	}
	var reply struct {
		Backend string `json:"backend"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &reply); err != nil {
		t.Fatalf("relayed body is not intact JSON: %v (%q)", err, rec.Body.String())
	}
	if reply.Backend != "sane" {
		t.Errorf("verdict came from %q, want the sane backend", reply.Backend)
	}
}

// TestServeLameDuck: after the serve context is cancelled the listener
// keeps answering for DrainDelay with /readyz at 503 — the upstream
// tier sees a drain signal, not connection resets.
func TestServeLameDuck(t *testing.T) {
	fb := newFakeBackend(t, "b0")
	rt := newTestRouter(t, Config{
		DrainDelay:      400 * time.Millisecond,
		ShutdownTimeout: 5 * time.Second,
	}, fb)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- rt.Serve(ctx, ln) }()
	base := "http://" + ln.Addr().String()

	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz while up = %d", resp.StatusCode)
	}

	cancel()
	saw503 := false
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/readyz")
		if err != nil {
			break // listener closed; the window is over
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			saw503 = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !saw503 {
		t.Error("no 503 drain signal observed over the listener during the lame-duck window")
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestNon5xxRelayedVerbatim: a backend 429 (admission shed) is the
// backend reasoning, not failing — it relays to the client untouched
// and feeds the breaker a success.
func TestNon5xxRelayedVerbatim(t *testing.T) {
	fb := newFakeBackend(t, "b0")
	fb.status.Store(http.StatusTooManyRequests)
	rt := newTestRouter(t, Config{}, fb)
	rec := postDetect(t, rt, `{}`)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 relayed", rec.Code)
	}
	if st := rt.backends[0].breaker.State(); st != core.BreakerClosed {
		t.Errorf("breaker = %v after 429, want closed", st)
	}
}
