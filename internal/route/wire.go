package route

// The router's SHMDWIRE tier: a client-facing binary listener (SDK
// clients connect here exactly as they would to a backend) and pooled
// persistent upstream connections to each backend's wire listener.
//
// DETECT and VERDICT payloads are relayed verbatim — the router
// re-correlates frames but never re-encodes them, so the binary path
// through the fleet costs zero marshalling at the middle hop. Backend
// choice reuses the exact machinery of the HTTP path: the prober's
// rotation flag, power-of-two-choices on in-flight, per-backend
// breakers with half-open probe claims, hedging, and bounded retry —
// both transports feed one view of each backend's health.
//
// Upstream connections are pooled with exclusive checkout: one relay
// owns one connection for the life of one request. That keeps the
// router free of demux state (the SDK is the multiplexed endpoint) at
// the cost of one pooled connection per concurrent upstream request.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"shmd/internal/tenant"
	"shmd/internal/wire"
)

// maxIdleWireConns caps pooled idle connections per backend; beyond
// it, returned connections are closed instead of pooled.
const maxIdleWireConns = 16

// wirePool is one backend's pool of persistent SHMDWIRE connections.
type wirePool struct {
	addr       string
	timeout    time.Duration
	maxPayload int

	mu     sync.Mutex
	idle   []*wire.Conn
	closed bool
}

// newWirePool builds an empty pool; connections dial lazily.
func newWirePool(addr string, timeout time.Duration, maxPayload int) *wirePool {
	return &wirePool{addr: addr, timeout: timeout, maxPayload: maxPayload}
}

// get checks out a connection, dialing when the pool is empty.
func (p *wirePool) get() (*wire.Conn, error) {
	p.mu.Lock()
	if n := len(p.idle); n > 0 {
		c := p.idle[n-1]
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		return c, nil
	}
	p.mu.Unlock()
	return wire.Dial(p.addr, p.timeout, p.maxPayload)
}

// put returns a healthy connection for reuse.
func (p *wirePool) put(c *wire.Conn) {
	p.mu.Lock()
	if p.closed || len(p.idle) >= maxIdleWireConns {
		p.mu.Unlock()
		c.Close()
		return
	}
	p.idle = append(p.idle, c)
	p.mu.Unlock()
}

// close closes every idle connection and stops pooling.
func (p *wirePool) close() {
	p.mu.Lock()
	idle := p.idle
	p.idle = nil
	p.closed = true
	p.mu.Unlock()
	for _, c := range idle {
		c.Close()
	}
}

// closeWirePools releases every backend's idle upstream connections.
func (rt *Router) closeWirePools() {
	for _, b := range rt.backends {
		if b.wire != nil {
			b.wire.close()
		}
	}
}

// wireReply is one backend's relayed response frame.
type wireReply struct {
	// frameType is VERDICT or ERROR; payload is relayed verbatim.
	frameType wire.FrameType
	payload   []byte
	backend   string
	hedged    bool
}

// wireAttempt is one upstream attempt's result.
type wireAttempt struct {
	res   *wireReply
	hedge bool
	err   error
}

// dispatchWire runs the retry loop for one relayed DETECT payload,
// mirroring the HTTP dispatch: each round makes one (possibly hedged)
// attempt on backends not yet tried; connect errors and 5xx-class
// ERROR frames earn another round after equal-jitter backoff.
func (rt *Router) dispatchWire(ctx context.Context, payload []byte) (*wireReply, error) {
	tried := make(map[*backend]bool, len(rt.backends))
	var lastErr error
	for attempt := 0; ; attempt++ {
		res, err := rt.raceWire(ctx, payload, tried)
		if err == nil {
			return res, nil
		}
		if errors.Is(err, errBrownout) {
			if lastErr != nil {
				return nil, lastErr
			}
			return nil, err
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		lastErr = err
		if attempt >= rt.cfg.MaxRetries {
			return nil, lastErr
		}
		rt.metrics.Retry()
		rt.cfg.Sleep(rt.jitter.Backoff(rt.cfg.RetryBackoff, rt.cfg.MaxRetryBackoff, attempt))
	}
}

// raceWire makes one dispatch attempt with optional hedging, exactly
// like the HTTP race. Only backends with a wire address participate.
func (rt *Router) raceWire(ctx context.Context, payload []byte, tried map[*backend]bool) (*wireReply, error) {
	primary, probe := rt.pickWire(tried)
	if primary == nil {
		return nil, errBrownout
	}
	tried[primary] = true
	outcomes := make(chan wireAttempt, 2)
	rt.wireForwardAsync(ctx, primary, payload, false, probe, outcomes)

	var hedgeC <-chan time.Time
	if rt.cfg.HedgeAfter > 0 {
		t := time.NewTimer(rt.cfg.HedgeAfter)
		defer t.Stop()
		hedgeC = t.C
	}
	pending := 1
	var firstErr error
	for pending > 0 {
		select {
		case out := <-outcomes:
			pending--
			if out.err == nil {
				out.res.hedged = out.hedge
				return out.res, nil
			}
			if firstErr == nil {
				firstErr = out.err
			}
		case <-hedgeC:
			hedgeC = nil
			if h, hprobe := rt.pickWire(tried); h != nil {
				tried[h] = true
				rt.metrics.Hedge()
				pending++
				rt.wireForwardAsync(ctx, h, payload, true, hprobe, outcomes)
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return nil, firstErr
}

// pickWire is pick restricted to backends that speak SHMDWIRE.
func (rt *Router) pickWire(tried map[*backend]bool) (*backend, bool) {
	wireless := make(map[*backend]bool, len(rt.backends))
	for _, b := range rt.backends {
		if b.wire == nil {
			wireless[b] = true
		}
	}
	if len(wireless) == 0 {
		return rt.pick(tried)
	}
	merged := make(map[*backend]bool, len(tried)+len(wireless))
	for b := range tried {
		merged[b] = true
	}
	for b := range wireless {
		merged[b] = true
	}
	return rt.pick(merged)
}

// wireForwardAsync starts one tracked upstream attempt.
func (rt *Router) wireForwardAsync(ctx context.Context, b *backend, payload []byte, hedge, probe bool, out chan<- wireAttempt) {
	rt.reqWG.Add(1)
	go func() {
		defer rt.reqWG.Done()
		res, err := rt.wireForward(ctx, b, payload, probe)
		out <- wireAttempt{res: res, hedge: hedge, err: err}
	}()
}

// wireForward relays one DETECT payload to one backend over a pooled
// connection and waits for its correlated VERDICT or ERROR, bounded by
// cfg.Timeout. Outcome classification mirrors the HTTP forward:
// transport failures and 5xx-class ERROR frames are breaker failures;
// everything else — including 4xx and 429, which prove the backend is
// alive and reasoning — is a success and relays to the client. A
// half-open probe claim is always resolved on every exit path.
func (rt *Router) wireForward(ctx context.Context, b *backend, payload []byte, probe bool) (*wireReply, error) {
	b.inflight.Add(1)
	defer b.inflight.Add(-1)
	b.requests.Add(1)
	resolved := false
	if probe {
		defer func() {
			if !resolved {
				b.breaker.Release()
			}
		}()
	}

	c, err := b.wire.get()
	if err != nil {
		if ctx.Err() == nil {
			resolved = true
			rt.noteFailure(b)
		}
		return nil, fmt.Errorf("route: %s: wire dial: %w", b.name, err)
	}
	// reuse flips true only after a clean, fully-consumed exchange on a
	// connection the backend has not announced it is draining.
	reuse := false
	goaway := false
	defer func() {
		if reuse && !goaway {
			c.SetReadDeadline(time.Time{})
			b.wire.put(c)
		} else {
			c.Close()
		}
	}()

	corr := rt.wireCorr.Add(1)
	c.SetReadDeadline(time.Now().Add(rt.cfg.Timeout))
	if err := c.WriteFrame(wire.Frame{Type: wire.FrameDetect, Corr: corr, Payload: payload}); err != nil {
		if ctx.Err() == nil {
			resolved = true
			rt.noteFailure(b)
		}
		return nil, fmt.Errorf("route: %s: wire send: %w", b.name, err)
	}
	for {
		f, err := c.ReadFrame()
		if err != nil {
			var tooBig *wire.TooLargeError
			if errors.As(err, &tooBig) {
				if tooBig.Corr != corr {
					continue
				}
				// The backend's reply exceeds the relay cap — the wire twin
				// of an over-cap HTTP reply.
				resolved = true
				rt.noteFailure(b)
				return nil, fmt.Errorf("route: %s reply exceeds %d bytes", b.name, rt.cfg.MaxBodyBytes)
			}
			if ctx.Err() == nil {
				resolved = true
				rt.noteFailure(b)
			}
			return nil, fmt.Errorf("route: %s: wire read: %w", b.name, err)
		}
		if f.Type == wire.FrameGoAway {
			// Finish this exchange, then retire the connection.
			goaway = true
			continue
		}
		if f.Corr != corr {
			// HELLO from a fresh dial, stray PONGs: not ours.
			continue
		}
		switch f.Type {
		case wire.FrameVerdict:
			resolved = true
			b.breaker.Success()
			reuse = true
			return &wireReply{frameType: wire.FrameVerdict, payload: f.Payload, backend: b.name}, nil
		case wire.FrameError:
			e, decErr := wire.DecodeErrorFrame(f.Payload)
			if decErr != nil {
				resolved = true
				rt.noteFailure(b)
				return nil, fmt.Errorf("route: %s: undecodable error frame: %w", b.name, decErr)
			}
			if e.Code >= 500 {
				resolved = true
				rt.noteFailure(b)
				return nil, fmt.Errorf("route: %s answered %d: %s", b.name, e.Code, e.Msg)
			}
			resolved = true
			b.breaker.Success()
			reuse = true
			return &wireReply{frameType: wire.FrameError, payload: f.Payload, backend: b.name}, nil
		default:
			continue
		}
	}
}

// wireConnSet tracks live client-facing connections for drain.
type wireConnSet struct {
	mu    sync.Mutex
	conns map[*routerWireConn]struct{}
}

// routerWireConn is one accepted SDK-client connection.
type routerWireConn struct {
	c      *wire.Conn
	wg     sync.WaitGroup
	cancel context.CancelFunc
	// class is the connection's priority-class advisory, latched from
	// the client HELLO's metadata; it orders the router's brownout
	// shedding only. Tenant identity itself is NOT latched here: the
	// router relays DETECT payloads verbatim over pooled upstream
	// connections that carry no per-client HELLO, so clients behind a
	// router must tag each frame (the SDK does) for quota to land on
	// the right tenant at the backend.
	class atomic.Int32
}

func (s *wireConnSet) register(wc *routerWireConn) {
	s.mu.Lock()
	if s.conns == nil {
		s.conns = make(map[*routerWireConn]struct{})
	}
	s.conns[wc] = struct{}{}
	s.mu.Unlock()
}

func (s *wireConnSet) unregister(wc *routerWireConn) {
	s.mu.Lock()
	delete(s.conns, wc)
	s.mu.Unlock()
}

func (s *wireConnSet) snapshot() []*routerWireConn {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*routerWireConn, 0, len(s.conns))
	for wc := range s.conns {
		out = append(out, wc)
	}
	return out
}

// ServeWire accepts SHMDWIRE client connections on ln until ctx is
// cancelled, then drains: GOAWAY to every client, in-flight relays
// finish (bounded by ShutdownTimeout), stragglers are cut, and the
// upstream pools close. Run alongside Serve (which owns the prober);
// wire-only deployments must drive ProbeOnce themselves.
func (rt *Router) ServeWire(ctx context.Context, ln net.Listener) error {
	done := make(chan error, 1)
	go func() { done <- rt.acceptWire(ln) }()
	select {
	case <-ctx.Done():
		rt.draining.Store(true)
		ln.Close()
		shCtx, cancel := context.WithTimeout(context.Background(), rt.cfg.ShutdownTimeout)
		defer cancel()
		rt.drainWire(shCtx)
		rt.waitRequests(shCtx)
		rt.closeWirePools()
		<-done
		return nil
	case err := <-done:
		rt.closeWirePools()
		return err
	}
}

// acceptWire runs the accept loop; a closed listener ends it cleanly.
func (rt *Router) acceptWire(ln net.Listener) error {
	for {
		nc, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go rt.handleWireClient(nc)
	}
}

// drainWire broadcasts GOAWAY and waits for in-flight relays.
func (rt *Router) drainWire(ctx context.Context) {
	conns := rt.wireConns.snapshot()
	goaway := wire.AppendGoAway(nil, wire.GoAway{Code: 0, Msg: "router draining"})
	for _, wc := range conns {
		wc.c.WriteFrame(wire.Frame{Type: wire.FrameGoAway, Payload: goaway})
	}
	idle := make(chan struct{})
	go func() {
		for _, wc := range conns {
			wc.wg.Wait()
		}
		close(idle)
	}()
	select {
	case <-idle:
	case <-ctx.Done():
	}
	for _, wc := range conns {
		wc.cancel()
		wc.c.Close()
	}
}

// handleWireClient owns one SDK-client connection: handshake, HELLO,
// then relaying DETECT frames through the fleet dispatch machinery.
func (rt *Router) handleWireClient(nc net.Conn) {
	c := wire.NewConn(nc, int(rt.cfg.MaxBodyBytes))
	v, err := c.Handshake(rt.cfg.ReadHeaderTimeout)
	if err != nil {
		c.Close()
		return
	}
	if v != wire.ProtoVersion {
		c.WriteError(0, wire.CodeVersion, fmt.Sprintf("router speaks SHMDWIRE v%d, client sent v%d", wire.ProtoVersion, v))
		c.Close()
		return
	}
	if err := c.WriteFrame(wire.Frame{
		Type:    wire.FrameHello,
		Payload: wire.AppendHello(nil, wire.Hello{Version: wire.ProtoVersion, MaxFrame: uint32(c.MaxPayload())}),
	}); err != nil {
		c.Close()
		return
	}

	ctx, cancel := context.WithCancel(context.Background())
	wc := &routerWireConn{c: c, cancel: cancel}
	wc.class.Store(int32(tenant.Standard))
	rt.wireConns.register(wc)
	defer func() {
		rt.wireConns.unregister(wc)
		cancel()
		wc.wg.Wait()
		c.Close()
	}()
	if rt.draining.Load() {
		c.WriteFrame(wire.Frame{Type: wire.FrameGoAway, Payload: wire.AppendGoAway(nil, wire.GoAway{Code: 0, Msg: "router draining"})})
	}

	for {
		f, err := c.ReadFrame()
		if err != nil {
			var tooBig *wire.TooLargeError
			if errors.As(err, &tooBig) {
				rt.metrics.Request(int(wire.CodeTooLarge))
				c.WriteError(tooBig.Corr, wire.CodeTooLarge, err.Error())
				continue
			}
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				log.Printf("route: wire: closing %s: %v", c.RemoteAddr(), err)
			}
			return
		}
		switch f.Type {
		case wire.FrameDetect:
			if rt.draining.Load() {
				rt.metrics.Shed()
				rt.metrics.Request(int(wire.CodeUnavailable))
				c.WriteError(f.Corr, wire.CodeUnavailable, "router draining")
				continue
			}
			if class := tenant.Class(wc.class.Load()); rt.shedClass(class) {
				rt.metrics.Shed()
				rt.metrics.Request(int(wire.CodeOverloaded))
				c.WriteError(f.Corr, wire.CodeOverloaded,
					fmt.Sprintf("fleet brownout: %s traffic shed; retry in %ds", class, rt.jitter.RetryAfter()))
				continue
			}
			wc.wg.Add(1)
			go func(f wire.Frame) {
				defer wc.wg.Done()
				rt.relayWireDetect(ctx, wc, f)
			}(f)
		case wire.FrameHello:
			// v1.1 client HELLO: only the class advisory matters to the
			// router (see routerWireConn.class for why tenant identity
			// does not latch here).
			h, derr := wire.DecodeHello(f.Payload)
			if derr != nil {
				rt.metrics.Request(int(wire.CodeBadRequest))
				c.WriteError(f.Corr, wire.CodeBadRequest, "bad HELLO: "+derr.Error())
				continue
			}
			wc.class.Store(int32(classFor(h.Meta[wire.MetaClass])))
		case wire.FrameStream:
			// Sliding-window streams are stateful per connection; the
			// router's pooled exclusive-checkout relay has no home for
			// that state, so streams go directly to a backend.
			rt.metrics.Request(int(wire.CodeBadRequest))
			c.WriteError(f.Corr, wire.CodeBadRequest,
				"STREAM is not relayed; open window streams directly against a backend wire listener")
		case wire.FramePing:
			c.WriteFrame(wire.Frame{Type: wire.FramePong, Corr: f.Corr})
		case wire.FrameHealthReq:
			report := rt.healthReport()
			payload, merr := json.Marshal(report)
			if merr != nil {
				c.WriteError(f.Corr, wire.CodeInternal, merr.Error())
				continue
			}
			c.WriteFrame(wire.Frame{Type: wire.FrameHealth, Corr: f.Corr, Payload: payload})
		case wire.FrameGoAway:
			// Client draining its side; it will close when done.
		default:
			if !f.Type.Known() {
				log.Printf("route: wire: skipping unknown frame type 0x%02x from %s", uint8(f.Type), c.RemoteAddr())
				continue
			}
			rt.metrics.Request(int(wire.CodeBadRequest))
			c.WriteError(f.Corr, wire.CodeBadRequest, fmt.Sprintf("unexpected %v frame", f.Type))
		}
	}
}

// relayWireDetect dispatches one client DETECT payload through the
// fleet and writes the winning reply back under the client's
// correlation id. Failure mapping mirrors the HTTP failDetect.
func (rt *Router) relayWireDetect(ctx context.Context, wc *routerWireConn, f wire.Frame) {
	res, err := rt.dispatchWire(ctx, f.Payload)
	if err != nil {
		switch {
		case ctx.Err() != nil:
			rt.metrics.Request(statusClientClosedRequest)
		case errors.Is(err, errBrownout):
			rt.metrics.Shed()
			rt.metrics.Request(int(wire.CodeUnavailable))
			wc.c.WriteError(f.Corr, wire.CodeUnavailable,
				fmt.Sprintf("%s; retry in %ds", err.Error(), rt.jitter.RetryAfter()))
		default:
			rt.metrics.Request(int(wire.CodeBadGateway))
			wc.c.WriteError(f.Corr, wire.CodeBadGateway, err.Error())
		}
		return
	}
	if res.hedged {
		rt.metrics.HedgeWin()
	}
	if res.frameType == wire.FrameVerdict {
		rt.metrics.Request(200)
	} else if e, decErr := wire.DecodeErrorFrame(res.payload); decErr == nil {
		rt.metrics.Request(int(e.Code))
	}
	wc.c.WriteFrame(wire.Frame{Type: res.frameType, Corr: f.Corr, Payload: res.payload})
}
