package route

// Tests for the router's tenant awareness: identity and class headers
// relayed verbatim, class-keyed partial-brownout shedding on both
// transports, and the STREAM rejection.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"shmd/internal/wire"
)

// TestForwardTenantHeaders pins the relay contract: the backend sees
// the client's X-Tenant and X-Tenant-Class exactly as sent — the
// router never rewrites identity — while unlisted headers are dropped.
func TestForwardTenantHeaders(t *testing.T) {
	var got http.Header
	bk := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		got = r.Header.Clone()
		w.WriteHeader(http.StatusOK)
	}))
	defer bk.Close()
	rt, err := New(Config{Backends: []string{bk.URL}, ProbeInterval: -1, JitterSeed: 1})
	if err != nil {
		t.Fatal(err)
	}

	req := httptest.NewRequest(http.MethodPost, "/v1/detect", strings.NewReader("{}"))
	req.Header.Set("X-Tenant", "acme-corp")
	req.Header.Set("X-Tenant-Class", "realtime")
	req.Header.Set("X-Internal-Secret", "nope")
	rec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	if v := got.Get("X-Tenant"); v != "acme-corp" {
		t.Errorf("backend saw X-Tenant %q, want acme-corp", v)
	}
	if v := got.Get("X-Tenant-Class"); v != "realtime" {
		t.Errorf("backend saw X-Tenant-Class %q, want realtime", v)
	}
	if v := got.Get("X-Internal-Secret"); v != "" {
		t.Errorf("unlisted header leaked to backend: %q", v)
	}
}

// TestBrownoutClassShed pins the partial-brownout ladder: with half
// the fleet unroutable, batch traffic sheds 429 with Retry-After while
// standard and realtime still route; once the fleet recovers past the
// hysteresis margin, batch flows again.
func TestBrownoutClassShed(t *testing.T) {
	fb1 := newFakeBackend(t, "b1")
	fb2 := newFakeBackend(t, "b2")
	rt := newTestRouter(t, Config{}, fb1, fb2)

	fb2.ready.Store(false)
	rt.ProbeOnce(context.Background())

	post := func(class string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPost, "/v1/detect", strings.NewReader("{}"))
		if class != "" {
			req.Header.Set("X-Tenant-Class", class)
		}
		rec := httptest.NewRecorder()
		rt.Handler().ServeHTTP(rec, req)
		return rec
	}

	rec := post("batch")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("batch under half-brownout: status %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("class shed missing Retry-After")
	}
	for _, class := range []string{"standard", "realtime", "", "not-a-class"} {
		if rec := post(class); rec.Code != http.StatusOK {
			t.Fatalf("class %q under half-brownout: status %d, want 200", class, rec.Code)
		}
	}
	if n := rt.Metrics().ClassSheds("batch"); n != 1 {
		t.Errorf("batch class sheds = %d, want 1", n)
	}

	// Recovery: load falls to 0, under MinLoad-hysteresis, the rule
	// disengages and batch routes again.
	fb2.ready.Store(true)
	rt.ProbeOnce(context.Background())
	if rec := post("batch"); rec.Code != http.StatusOK {
		t.Fatalf("batch after recovery: status %d, want 200", rec.Code)
	}
}

// TestWireClassShedAndStreamReject pins the wire twin: a client HELLO
// latches the class advisory, DETECTs from a shed class answer 429
// ERROR frames under partial brownout, and STREAM frames are refused
// with a typed error pointing the client at a backend.
func TestWireClassShedAndStreamReject(t *testing.T) {
	fw1 := newFakeWireBackend(t, "w1")
	fw2 := newFakeWireBackend(t, "w2")
	rt := newWireRouter(t, Config{}, fw1, fw2)
	addr, _ := startRouterWire(t, rt)

	c, err := wire.Dial(addr, time.Second, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if f, err := c.ReadFrame(); err != nil || f.Type != wire.FrameHello {
		t.Fatalf("server HELLO = %v, %v", f.Type, err)
	}
	hello := wire.AppendHello(nil, wire.Hello{
		Version:  wire.ProtoVersion,
		MaxFrame: uint32(wire.DefaultMaxFramePayload),
		Meta:     map[string]string{wire.MetaClass: "batch"},
	})
	if err := c.WriteFrame(wire.Frame{Type: wire.FrameHello, Payload: hello}); err != nil {
		t.Fatal(err)
	}

	// STREAM is refused regardless of fleet health.
	sreq, err := wire.AppendStreamRequest(nil, wire.StreamRequest{StreamID: 1, ID: "cam", Windows: nil, Close: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WriteFrame(wire.Frame{Type: wire.FrameStream, Corr: 1, Payload: sreq}); err != nil {
		t.Fatal(err)
	}
	f, err := c.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != wire.FrameError || f.Corr != 1 {
		t.Fatalf("STREAM reply = %v corr %d, want ERROR corr 1", f.Type, f.Corr)
	}
	e, err := wire.DecodeErrorFrame(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if e.Code != wire.CodeBadRequest || !strings.Contains(e.Msg, "backend") {
		t.Fatalf("STREAM rejection = %d %q, want 400 pointing at a backend", e.Code, e.Msg)
	}

	// Half the fleet down: this connection advertised batch, so its
	// DETECTs shed before any dispatch.
	fw2.ready.Store(false)
	rt.ProbeOnce(context.Background())
	payload, err := wire.AppendDetectRequest(nil, routeWireRequest(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WriteFrame(wire.Frame{Type: wire.FrameDetect, Corr: 2, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	if f, err = c.ReadFrame(); err != nil {
		t.Fatal(err)
	}
	if f.Type != wire.FrameError || f.Corr != 2 {
		t.Fatalf("batch DETECT reply = %v corr %d, want ERROR corr 2", f.Type, f.Corr)
	}
	if e, err = wire.DecodeErrorFrame(f.Payload); err != nil {
		t.Fatal(err)
	}
	if e.Code != wire.CodeOverloaded || !strings.Contains(e.Msg, "batch") {
		t.Fatalf("batch shed = %d %q, want 429 naming the class", e.Code, e.Msg)
	}
	if hits := fw1.wireHits.Load() + fw2.wireHits.Load(); hits != 0 {
		t.Errorf("shed DETECT reached a backend (%d hits)", hits)
	}
}
