package route

// Tests for the router's SHMDWIRE tier: binary upstream relay with
// pooled connections, breaker-driven retry, verbatim 4xx relay,
// brownout, drain GOAWAY, and HTTP-only backend exclusion.

import (
	"context"
	"errors"
	"math"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"shmd/internal/trace"
	"shmd/internal/wire"
	"shmd/pkg/sdk"
)

// fakeWireBackend pairs a scriptable SHMDWIRE listener with the
// scriptable HTTP backend (whose /readyz feeds the router's prober —
// readiness is shared across transports).
type fakeWireBackend struct {
	*fakeBackend
	name string
	ln   net.Listener

	wireHits  atomic.Int64 // DETECT frames answered
	wireConns atomic.Int64 // connections accepted (pins pooling)
	errCode   atomic.Int32 // != 0: answer ERROR with this code
	goaway    atomic.Bool  // send GOAWAY before each verdict

	verdict []byte // canned VERDICT payload carrying the backend name

	mu    sync.Mutex
	conns []net.Conn
}

func newFakeWireBackend(t *testing.T, name string) *fakeWireBackend {
	t.Helper()
	fw := &fakeWireBackend{fakeBackend: newFakeBackend(t, name), name: name}
	var err error
	fw.verdict, err = wire.AppendVerdict(nil, wire.Verdict{
		Session: 1,
		Results: []wire.VerdictResult{{
			ID: name, Malware: true, Score: 0.75, Confidence: 0.9,
			Attempts: 1, Windows: 2,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	fw.ln, err = net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go fw.accept()
	t.Cleanup(func() {
		fw.ln.Close()
		fw.mu.Lock()
		conns := fw.conns
		fw.conns = nil
		fw.mu.Unlock()
		for _, nc := range conns {
			nc.Close()
		}
	})
	return fw
}

func (fw *fakeWireBackend) wireAddr() string { return fw.ln.Addr().String() }

func (fw *fakeWireBackend) accept() {
	for {
		nc, err := fw.ln.Accept()
		if err != nil {
			return
		}
		fw.wireConns.Add(1)
		fw.mu.Lock()
		fw.conns = append(fw.conns, nc)
		fw.mu.Unlock()
		go fw.serveConn(nc)
	}
}

func (fw *fakeWireBackend) serveConn(nc net.Conn) {
	c := wire.NewConn(nc, 0)
	if _, err := c.Handshake(time.Second); err != nil {
		c.Close()
		return
	}
	c.WriteFrame(wire.Frame{
		Type:    wire.FrameHello,
		Payload: wire.AppendHello(nil, wire.Hello{Version: wire.ProtoVersion, MaxFrame: uint32(c.MaxPayload())}),
	})
	for {
		f, err := c.ReadFrame()
		if err != nil {
			c.Close()
			return
		}
		if f.Type != wire.FrameDetect {
			continue
		}
		fw.wireHits.Add(1)
		if fw.goaway.Load() {
			c.WriteFrame(wire.Frame{Type: wire.FrameGoAway, Payload: wire.AppendGoAway(nil, wire.GoAway{Msg: "backend draining"})})
		}
		if code := fw.errCode.Load(); code != 0 {
			c.WriteError(f.Corr, wire.ErrorCode(code), "scripted wire failure")
			continue
		}
		c.WriteFrame(wire.Frame{Type: wire.FrameVerdict, Corr: f.Corr, Payload: fw.verdict})
	}
}

// newWireRouter builds a router whose backends all speak SHMDWIRE.
func newWireRouter(t *testing.T, cfg Config, backends ...*fakeWireBackend) *Router {
	t.Helper()
	for _, fw := range backends {
		cfg.Backends = append(cfg.Backends, fw.ts.URL)
		cfg.WireBackends = append(cfg.WireBackends, fw.wireAddr())
	}
	cfg.ProbeInterval = -1
	if cfg.JitterSeed == 0 {
		cfg.JitterSeed = 1
	}
	if cfg.Sleep == nil {
		cfg.Sleep = func(time.Duration) {}
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

// startRouterWire serves the router's client-facing wire listener.
func startRouterWire(t *testing.T, rt *Router) (string, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- rt.ServeWire(ctx, ln) }()
	var once sync.Once
	stop := func() {
		once.Do(func() {
			cancel()
			if err := <-done; err != nil {
				t.Errorf("ServeWire: %v", err)
			}
		})
	}
	t.Cleanup(stop)
	return ln.Addr().String(), stop
}

func routeWireRequest(t *testing.T) wire.DetectRequest {
	t.Helper()
	prog, err := trace.NewProgram(trace.Trojan, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	windows, err := prog.Trace(2, 256)
	if err != nil {
		t.Fatal(err)
	}
	return wire.DetectRequest{Programs: []wire.DetectProgram{{ID: "prog-0", Windows: windows}}}
}

func dialRouter(t *testing.T, addr string) *sdk.Client {
	t.Helper()
	cl, err := sdk.Dial(addr, sdk.Options{JitterSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

func TestWireBackendsMustBeIndexAligned(t *testing.T) {
	_, err := New(Config{
		Backends:     []string{"http://127.0.0.1:1"},
		WireBackends: []string{"127.0.0.1:2", "127.0.0.1:3"},
	})
	if err == nil || !strings.Contains(err.Error(), "index-aligned") {
		t.Fatalf("misaligned WireBackends error = %v, want index-aligned complaint", err)
	}
}

// TestWireRelayPoolsUpstreamConnections pins the happy path: the
// verdict payload arrives bit-exact through the relay, and sequential
// requests reuse one pooled upstream connection.
func TestWireRelayPoolsUpstreamConnections(t *testing.T) {
	fw := newFakeWireBackend(t, "a")
	rt := newWireRouter(t, Config{}, fw)
	addr, _ := startRouterWire(t, rt)
	cl := dialRouter(t, addr)

	req := routeWireRequest(t)
	for i := 0; i < 3; i++ {
		v, err := cl.Detect(context.Background(), req)
		if err != nil {
			t.Fatalf("detect %d: %v", i, err)
		}
		if len(v.Results) != 1 || v.Results[0].ID != "a" || !v.Results[0].Malware {
			t.Fatalf("detect %d: verdict %+v, want backend a's canned verdict", i, v)
		}
		if bits := math.Float64bits(v.Results[0].Score); bits != math.Float64bits(0.75) {
			t.Fatalf("detect %d: score bits %x — payload not relayed verbatim", i, bits)
		}
	}
	if hits := fw.wireHits.Load(); hits != 3 {
		t.Errorf("backend answered %d DETECTs, want 3", hits)
	}
	if conns := fw.wireConns.Load(); conns != 1 {
		t.Errorf("backend accepted %d connections for 3 sequential requests, want 1 (pooled)", conns)
	}
}

// TestWireRelayRetries5xxOnAnotherBackend pins outcome classification:
// a 5xx-class ERROR frame is a breaker failure and earns a retry on a
// different backend; the client sees only the winning verdict.
func TestWireRelayRetries5xxOnAnotherBackend(t *testing.T) {
	fa := newFakeWireBackend(t, "a")
	fb := newFakeWireBackend(t, "b")
	fa.errCode.Store(int32(wire.CodeInternal))
	fb.errCode.Store(int32(wire.CodeInternal))
	rt := newWireRouter(t, Config{MaxRetries: 2}, fa, fb)
	addr, _ := startRouterWire(t, rt)
	cl := dialRouter(t, addr)

	// Heal one backend so the retry has a winner; which backend the
	// first attempt lands on is the picker's business.
	fb.errCode.Store(0)
	v, err := cl.Detect(context.Background(), routeWireRequest(t))
	if err != nil {
		t.Fatalf("detect: %v", err)
	}
	if len(v.Results) != 1 || v.Results[0].ID != "b" {
		t.Fatalf("verdict %+v, want backend b's", v)
	}
	var aFailures uint64
	for _, b := range rt.backends {
		if b.name == fa.host() {
			aFailures = b.failures.Load()
		}
	}
	if fa.wireHits.Load() > 0 && aFailures == 0 {
		t.Error("backend a answered 500 but its breaker saw no failure")
	}
}

// TestWireRelay4xxRelayedVerbatim pins that client-class errors prove
// the backend alive: no retry, no breaker failure, and the typed
// ERROR frame reaches the SDK caller intact.
func TestWireRelay4xxRelayedVerbatim(t *testing.T) {
	fw := newFakeWireBackend(t, "a")
	fw.errCode.Store(int32(wire.CodeBadRequest))
	rt := newWireRouter(t, Config{}, fw)
	addr, _ := startRouterWire(t, rt)
	cl := dialRouter(t, addr)

	_, err := cl.Detect(context.Background(), routeWireRequest(t))
	var ef *wire.ErrorFrame
	if !errors.As(err, &ef) || ef.Code != wire.CodeBadRequest {
		t.Fatalf("detect error = %v, want *wire.ErrorFrame with code 400", err)
	}
	if !strings.Contains(ef.Msg, "scripted wire failure") {
		t.Errorf("error message %q lost the backend's words", ef.Msg)
	}
	if hits := fw.wireHits.Load(); hits != 1 {
		t.Errorf("backend hit %d times, want 1 — 4xx must not retry", hits)
	}
	if failures := rt.backends[0].failures.Load(); failures != 0 {
		t.Errorf("4xx counted %d breaker failures, want 0", failures)
	}
}

// TestWireBrownout pins the no-ready-backends path: a typed 503 with a
// jittered retry hint, cheap and immediate, no upstream traffic.
func TestWireBrownout(t *testing.T) {
	fw := newFakeWireBackend(t, "a")
	fw.ready.Store(false)
	rt := newWireRouter(t, Config{}, fw)
	if up := rt.ProbeOnce(context.Background()); up != 0 {
		t.Fatalf("ProbeOnce = %d ready, want 0", up)
	}
	addr, _ := startRouterWire(t, rt)
	cl := dialRouter(t, addr)

	_, err := cl.Detect(context.Background(), routeWireRequest(t))
	var ef *wire.ErrorFrame
	if !errors.As(err, &ef) || ef.Code != wire.CodeUnavailable {
		t.Fatalf("brownout error = %v, want *wire.ErrorFrame with code 503", err)
	}
	if !strings.Contains(ef.Msg, "retry in") {
		t.Errorf("brownout message %q carries no retry hint", ef.Msg)
	}
	if hits := fw.wireHits.Load(); hits != 0 {
		t.Errorf("brownout still sent %d requests upstream", hits)
	}
}

// TestWireUpstreamGoAwayRetiresConnection pins drain cooperation with
// a backend: the in-flight exchange finishes, but the connection is
// not pooled — the next request dials fresh.
func TestWireUpstreamGoAwayRetiresConnection(t *testing.T) {
	fw := newFakeWireBackend(t, "a")
	fw.goaway.Store(true)
	rt := newWireRouter(t, Config{}, fw)
	addr, _ := startRouterWire(t, rt)
	cl := dialRouter(t, addr)

	req := routeWireRequest(t)
	for i := 0; i < 2; i++ {
		v, err := cl.Detect(context.Background(), req)
		if err != nil {
			t.Fatalf("detect %d: %v", i, err)
		}
		if len(v.Results) != 1 || v.Results[0].ID != "a" {
			t.Fatalf("detect %d: verdict %+v", i, v)
		}
	}
	if conns := fw.wireConns.Load(); conns != 2 {
		t.Errorf("backend accepted %d connections, want 2 — GOAWAY'd connections must not be reused", conns)
	}
}

// TestWireRouterDrainSendsGoAway pins the client-facing drain: a
// shutdown broadcasts GOAWAY before the connection closes.
func TestWireRouterDrainSendsGoAway(t *testing.T) {
	fw := newFakeWireBackend(t, "a")
	rt := newWireRouter(t, Config{ShutdownTimeout: 2 * time.Second}, fw)
	addr, stop := startRouterWire(t, rt)

	c, err := wire.Dial(addr, 2*time.Second, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	f, err := c.ReadFrame()
	if err != nil || f.Type != wire.FrameHello {
		t.Fatalf("first frame = %v (%v), want HELLO", f.Type, err)
	}

	go stop()
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	for {
		f, err := c.ReadFrame()
		if err != nil {
			t.Fatalf("connection died before GOAWAY: %v", err)
		}
		if f.Type == wire.FrameGoAway {
			g, err := wire.DecodeGoAway(f.Payload)
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(g.Msg, "draining") {
				t.Errorf("GOAWAY message %q, want a draining notice", g.Msg)
			}
			return
		}
	}
}

// TestWireSkipsHTTPOnlyBackends pins mixed fleets: a backend with no
// wire address never sees binary traffic, even across many requests.
func TestWireSkipsHTTPOnlyBackends(t *testing.T) {
	fw := newFakeWireBackend(t, "a")
	httpOnly := newFakeBackend(t, "b")
	cfg := Config{
		Backends:     []string{fw.ts.URL, httpOnly.ts.URL},
		WireBackends: []string{fw.wireAddr(), ""},
		JitterSeed:   1,
		Sleep:        func(time.Duration) {},
	}
	cfg.ProbeInterval = -1
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, _ := startRouterWire(t, rt)
	cl := dialRouter(t, addr)

	req := routeWireRequest(t)
	for i := 0; i < 6; i++ {
		if _, err := cl.Detect(context.Background(), req); err != nil {
			t.Fatalf("detect %d: %v", i, err)
		}
	}
	if hits := fw.wireHits.Load(); hits != 6 {
		t.Errorf("wire backend answered %d, want 6", hits)
	}
	if hits := httpOnly.hits.Load(); hits != 0 {
		t.Errorf("HTTP-only backend saw %d binary relays, want 0", hits)
	}
}
