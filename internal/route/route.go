// Package route is the fleet front tier: an HTTP router that spreads
// /v1/detect across a pool of detection backends (shmd serve
// instances) and keeps answering while individual backends brown out,
// drain, or die outright.
//
// One Stochastic-HMD service process supervises one device's voltage
// plane; a deployment that monitors many cores runs many such
// processes, and something has to aim traffic at the ones that are
// currently alive, ready, and least loaded. The router is that
// something. It composes four mechanisms, each independently simple:
//
//   - active health probing: every backend's /readyz is polled on an
//     interval; a backend that stops answering 200 leaves the rotation
//     before it can eat live traffic (an ejection), and re-enters the
//     moment it answers again;
//   - load-aware dispatch: among ready backends, power-of-two-choices
//     on the outstanding in-flight count — two random candidates, take
//     the less loaded — which avoids both the herding of
//     pick-least-loaded-globally and the variance of pure random;
//   - per-backend circuit breakers: the same closed → open → half-open
//     state machine the in-process Supervisor uses per slot
//     (core.Breaker), fed passively by real request outcomes. A
//     backend that answers probes but fails requests gets its breaker
//     opened and receives only capped-backoff half-open probes until
//     it behaves;
//   - hedging and bounded retry: a dispatch that outlives HedgeAfter
//     is re-sent to a second backend and the first verdict wins;
//     connect errors and 5xx are retried on a different backend with
//     equal-jitter backoff, bounded by MaxRetries.
//
// When every backend is unroutable the router browns out: 503 with a
// jittered Retry-After, cheap and immediate, never a hang. Shutdown
// drains: in-flight requests finish, new ones are refused, /readyz
// flips 503 first so an upstream tier stops sending.
package route

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"shmd/internal/backoff"
	"shmd/internal/core"
	"shmd/internal/tenant"
)

// Config configures the router.
type Config struct {
	// Backends are the base URLs of the detection backends, e.g.
	// "http://127.0.0.1:8801". At least one is required.
	Backends []string
	// WireBackends are the backends' SHMDWIRE listener addresses
	// ("host:port"), index-aligned with Backends. Empty disables binary
	// upstream proxying; when set, the length must equal len(Backends).
	// A backend's readiness and breaker state are shared across both
	// transports — /readyz probing and request outcomes feed one view.
	WireBackends []string
	// WireDialTimeout bounds one upstream SHMDWIRE dial + handshake
	// (default 5s).
	WireDialTimeout time.Duration
	// ProbeInterval is how often each backend's /readyz is polled
	// (default 500ms; negative disables the background prober — tests
	// drive ProbeOnce deterministically instead).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one health probe (default 2s).
	ProbeTimeout time.Duration
	// Breaker tunes the per-backend circuit breakers. Threshold
	// consecutive request failures open a backend's breaker; half-open
	// probes follow Cooldown with doubling capped at MaxCooldown
	// (defaults 3, 1s, 30s — core.Breaker's own defaults).
	Breaker core.BreakerConfig
	// HedgeAfter re-dispatches a still-running request onto a second
	// backend after this budget; the first verdict wins (0 = off).
	HedgeAfter time.Duration
	// MaxRetries is how many additional backends a failed dispatch
	// (connect error or 5xx) is retried on, each with equal-jitter
	// backoff (default 2; negative disables retry).
	MaxRetries int
	// RetryBackoff is the base backoff before the first retry, doubling
	// per retry up to MaxRetryBackoff (defaults 50ms and 1s).
	RetryBackoff    time.Duration
	MaxRetryBackoff time.Duration
	// MaxBodyBytes bounds the request body the router will buffer for
	// re-dispatch (default 16 MiB, matching the backend decode limit's
	// order of magnitude).
	MaxBodyBytes int64
	// Timeout bounds one forwarded request attempt end to end
	// (default 30s). The client's own deadline header still rides
	// through to the backend untouched.
	Timeout time.Duration
	// ReadHeaderTimeout bounds header reads on the router's listener
	// (default 10s).
	ReadHeaderTimeout time.Duration
	// ShutdownTimeout bounds the graceful drain (default 30s).
	ShutdownTimeout time.Duration
	// DrainDelay is the lame-duck window on shutdown: after the serve
	// context is cancelled, /readyz answers 503 (and detect traffic is
	// shed) while the listener stays open for this long, so an upstream
	// tier probing the router ejects it before its connections start
	// resetting (default: one ProbeInterval; negative disables).
	DrainDelay time.Duration
	// BrownoutRules keys partial-brownout shedding by priority class:
	// the load fed to the rules is the fraction of backends currently
	// unroutable (ejected or breaker-open), so as the fleet shrinks the
	// router sheds best-effort classes first and keeps the remaining
	// capacity for realtime traffic. Nil selects DefaultBrownoutRules;
	// rules use the same latched-hysteresis machinery as the backends'
	// tenant shaper. The router has no token buckets, so ActionThrottle
	// rules are treated as allow here.
	BrownoutRules []tenant.Rule
	// JitterSeed seeds retry backoff and Retry-After jitter (0 = from
	// the clock; tests pin it).
	JitterSeed int64
	// Transport overrides the forwarding round tripper (tests inject
	// failures; default http.DefaultTransport).
	Transport http.RoundTripper
	// Sleep is the retry backoff clock (default time.Sleep).
	Sleep func(time.Duration)
}

// withDefaults fills unset fields.
func (cfg Config) withDefaults() Config {
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 500 * time.Millisecond
	}
	if cfg.ProbeTimeout == 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 2
	}
	if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = 50 * time.Millisecond
	}
	if cfg.MaxRetryBackoff == 0 {
		cfg.MaxRetryBackoff = time.Second
	}
	if cfg.MaxBodyBytes == 0 {
		cfg.MaxBodyBytes = 16 << 20
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.ReadHeaderTimeout == 0 {
		cfg.ReadHeaderTimeout = 10 * time.Second
	}
	if cfg.ShutdownTimeout == 0 {
		cfg.ShutdownTimeout = 30 * time.Second
	}
	if cfg.DrainDelay == 0 {
		cfg.DrainDelay = cfg.ProbeInterval
	}
	if cfg.WireDialTimeout == 0 {
		cfg.WireDialTimeout = 5 * time.Second
	}
	if cfg.Transport == nil {
		cfg.Transport = http.DefaultTransport
	}
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
	return cfg
}

// backend is one routed detection backend and its local state: the
// rotation flag the prober maintains, the in-flight counter dispatch
// balances on, the breaker request outcomes feed, and counters.
type backend struct {
	name string // host:port, the metrics label
	base string // normalized base URL, no trailing slash

	ready    atomic.Bool
	inflight atomic.Int64
	breaker  *core.Breaker
	// wire is the pooled SHMDWIRE upstream (nil when the backend has no
	// wire address).
	wire *wirePool

	requests  atomic.Uint64 // dispatch attempts sent (incl. hedges, retries)
	failures  atomic.Uint64 // attempts that counted as breaker failures
	ejections atomic.Uint64 // ready → not-ready transitions
}

// Router is the fleet front tier. Build with New, serve with Serve or
// mount Handler behind an existing server.
type Router struct {
	cfg      Config
	backends []*backend
	mux      *http.ServeMux
	client   *http.Client
	probe    *http.Client
	jitter   *backoff.Jitter
	metrics  *Metrics

	// shaper keys partial-brownout shedding by priority class; its
	// latched rule state is serialized by shapeMu (tenant.Shaper is not
	// concurrency-safe on its own).
	shapeMu sync.Mutex
	shaper  *tenant.Shaper

	draining atomic.Bool
	// reqWG tracks in-flight proxied requests for the drain; hedged
	// losers are tracked too (their attempt must finish before the
	// backends are declared quiet).
	reqWG sync.WaitGroup
	// wireCorr issues correlation ids for upstream SHMDWIRE requests.
	wireCorr atomic.Uint64
	// wireConns tracks live client-facing SHMDWIRE connections for the
	// drain's GOAWAY broadcast.
	wireConns wireConnSet
}

// New builds a Router. Backends start in the rotation (optimistic:
// the first failed probe or request ejects them) so a router that
// boots before its backends still converges without special cases.
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("route: no backends")
	}
	seed := cfg.JitterSeed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	rt := &Router{
		cfg:     cfg,
		client:  &http.Client{Transport: cfg.Transport, Timeout: cfg.Timeout},
		probe:   &http.Client{Transport: cfg.Transport, Timeout: cfg.ProbeTimeout},
		jitter:  backoff.New(seed),
		metrics: NewMetrics(),
	}
	rules := cfg.BrownoutRules
	if rules == nil {
		rules = DefaultBrownoutRules
	}
	rt.shaper = tenant.NewShaper(rules, 0)
	if len(cfg.WireBackends) != 0 && len(cfg.WireBackends) != len(cfg.Backends) {
		return nil, fmt.Errorf("route: %d wire backends for %d backends; lists must be index-aligned",
			len(cfg.WireBackends), len(cfg.Backends))
	}
	seen := map[string]bool{}
	for i, raw := range cfg.Backends {
		u, err := url.Parse(strings.TrimSuffix(strings.TrimSpace(raw), "/"))
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("route: backend %q is not an absolute URL", raw)
		}
		if seen[u.Host] {
			return nil, fmt.Errorf("route: duplicate backend %q", u.Host)
		}
		seen[u.Host] = true
		b := &backend{
			name:    u.Host,
			base:    u.String(),
			breaker: core.NewBreaker(cfg.Breaker),
		}
		if len(cfg.WireBackends) > 0 {
			if addr := strings.TrimSpace(cfg.WireBackends[i]); addr != "" {
				b.wire = newWirePool(addr, cfg.WireDialTimeout, int(cfg.MaxBodyBytes))
			}
		}
		b.ready.Store(true)
		rt.backends = append(rt.backends, b)
	}
	rt.mux = http.NewServeMux()
	rt.mux.HandleFunc("/v1/detect", rt.handleDetect)
	rt.mux.HandleFunc("/healthz", rt.handleHealthz)
	rt.mux.HandleFunc("/readyz", rt.handleReadyz)
	rt.mux.HandleFunc("/metrics", rt.handleMetrics)
	return rt, nil
}

// Handler returns the router's HTTP handler.
func (rt *Router) Handler() http.Handler { return rt.mux }

// Metrics exposes the router's counter block.
func (rt *Router) Metrics() *Metrics { return rt.metrics }

// ProbeOnce health-probes every backend once, synchronously, and
// returns how many are in the rotation afterwards. The background
// prober calls this on its interval; tests call it directly for a
// deterministic rotation.
func (rt *Router) ProbeOnce(ctx context.Context) int {
	up := 0
	for _, b := range rt.backends {
		if rt.probeBackend(ctx, b) {
			up++
		}
	}
	return up
}

// probeBackend polls one backend's /readyz and updates its rotation
// flag. Any transport error or non-200 takes it out.
func (rt *Router) probeBackend(ctx context.Context, b *backend) bool {
	ok := false
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.base+"/readyz", nil)
	if err == nil {
		resp, perr := rt.probe.Do(req)
		if perr == nil {
			resp.Body.Close()
			ok = resp.StatusCode == http.StatusOK
		}
	}
	if was := b.ready.Swap(ok); was && !ok {
		b.ejections.Add(1)
		rt.metrics.Ejection()
	}
	return ok
}

// runProber polls every backend until ctx is cancelled.
func (rt *Router) runProber(ctx context.Context) {
	if rt.cfg.ProbeInterval < 0 {
		return
	}
	t := time.NewTicker(rt.cfg.ProbeInterval)
	defer t.Stop()
	rt.ProbeOnce(ctx)
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			rt.ProbeOnce(ctx)
		}
	}
}

// Serve accepts connections on ln until ctx is cancelled, then drains
// gracefully: /readyz flips 503 first and the listener keeps
// answering through the DrainDelay lame-duck window (so the tier
// above sees the drain signal instead of connection resets), then
// in-flight proxied requests run to completion (bounded by
// ShutdownTimeout) and the prober stops.
func (rt *Router) Serve(ctx context.Context, ln net.Listener) error {
	probeCtx, stopProbes := context.WithCancel(context.Background())
	defer stopProbes()
	go rt.runProber(probeCtx)

	httpSrv := &http.Server{Handler: rt.mux, ReadHeaderTimeout: rt.cfg.ReadHeaderTimeout}
	done := make(chan error, 1)
	go func() { done <- httpSrv.Serve(ln) }()
	select {
	case <-ctx.Done():
		rt.draining.Store(true)
		if d := rt.cfg.DrainDelay; d > 0 {
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case err := <-done:
				// The listener died during the lame-duck window; nothing
				// left to drain.
				t.Stop()
				if errors.Is(err, http.ErrServerClosed) {
					return nil
				}
				return err
			}
		}
		shCtx, cancel := context.WithTimeout(context.Background(), rt.cfg.ShutdownTimeout)
		defer cancel()
		err := httpSrv.Shutdown(shCtx)
		rt.waitRequests(shCtx)
		<-done
		return err
	case err := <-done:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}

// waitRequests blocks until every proxied attempt (including hedged
// losers) has finished, or ctx expires.
func (rt *Router) waitRequests(ctx context.Context) {
	quiet := make(chan struct{})
	go func() { rt.reqWG.Wait(); close(quiet) }()
	select {
	case <-quiet:
	case <-ctx.Done():
	}
}

// routable reports whether b may receive a non-probe request right
// now: in the rotation and breaker closed.
func (b *backend) routable() bool {
	return b.ready.Load() && b.breaker.State() == core.BreakerClosed
}

// shedHint sets a jittered Retry-After (1–3s) on a shed response.
func (rt *Router) shedHint(w http.ResponseWriter) {
	w.Header().Set("Retry-After", fmt.Sprintf("%d", rt.jitter.RetryAfter()))
}

// DefaultBrownoutRules is the router's stock partial-brownout ladder,
// keyed by the unroutable fraction of the fleet: with half the
// backends gone, batch traffic is shed to keep the survivors' headroom
// for interactive classes; at 90% gone only realtime still routes.
// (Total brownout sheds everything via errBrownout regardless.)
var DefaultBrownoutRules = []tenant.Rule{
	{Classes: tenant.MaskOf(tenant.Batch), MinLoad: 0.5, Action: tenant.ActionShed},
	{Classes: tenant.MaskOf(tenant.Batch, tenant.Standard), MinLoad: 0.9, Action: tenant.ActionShed},
}

// brownoutLoad is the fraction of the fleet that is unroutable right
// now — the load signal the brownout shaper keys on.
func (rt *Router) brownoutLoad() float64 {
	down := 0
	for _, b := range rt.backends {
		if !b.routable() {
			down++
		}
	}
	return float64(down) / float64(len(rt.backends))
}

// classFor parses a class advisory from a header or HELLO metadata
// value. The advisory only orders shedding under partial brownout —
// quota enforcement stays on the backends, which never trust it — so
// an absent or unparseable value just gets the default class.
func classFor(v string) tenant.Class {
	if v == "" {
		return tenant.Standard
	}
	c, err := tenant.ParseClass(v)
	if err != nil {
		return tenant.Standard
	}
	return c
}

// shedClass reports whether an engaged brownout rule sheds class c at
// the current unroutable fraction, recording the shed when it does.
// A total brownout (everything unroutable) is NOT a class shed: it
// falls through to dispatch so every class gets the same 503, keeping
// the full-outage contract independent of the caller's class advisory.
func (rt *Router) shedClass(c tenant.Class) bool {
	load := rt.brownoutLoad()
	rt.shapeMu.Lock()
	action := rt.shaper.Shape(c, load)
	rt.shapeMu.Unlock()
	if load >= 1 || action != tenant.ActionShed {
		return false
	}
	rt.metrics.ClassShed(c.String())
	return true
}
