package route

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"shmd/internal/core"
)

// errBrownout marks a dispatch that found no routable backend: every
// backend is out of the rotation, breaker-open, or already tried. The
// handler maps it to a 503 shed, never a hang.
var errBrownout = errors.New("route: no routable backend")

// proxyResult is one backend's reply, buffered for relay.
type proxyResult struct {
	status  int
	ctype   string
	body    []byte
	backend string
	hedged  bool
}

// attemptOutcome is one forwarding attempt's result.
type attemptOutcome struct {
	res   *proxyResult
	hedge bool
	err   error
}

// handleDetect proxies POST /v1/detect onto the fleet.
func (rt *Router) handleDetect(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		rt.status(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if rt.draining.Load() {
		rt.metrics.Shed()
		rt.shedHint(w)
		rt.status(w, http.StatusServiceUnavailable, "router draining")
		return
	}
	// Partial brownout: with part of the fleet unroutable, best-effort
	// classes are shed here — cheap, before the body is even read — so
	// the surviving backends' capacity goes to interactive traffic.
	if class := classFor(r.Header.Get("X-Tenant-Class")); rt.shedClass(class) {
		rt.metrics.Shed()
		rt.shedHint(w)
		rt.status(w, http.StatusTooManyRequests,
			fmt.Sprintf("fleet brownout: %s traffic shed", class))
		return
	}
	// The body is buffered whole so it can be re-sent verbatim to a
	// hedge or retry backend; the bound keeps a hostile client from
	// ballooning router memory.
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			rt.status(w, http.StatusRequestEntityTooLarge, fmt.Sprintf("body exceeds %d bytes", tooBig.Limit))
			return
		}
		rt.status(w, http.StatusBadRequest, "reading request body: "+err.Error())
		return
	}

	res, err := rt.dispatch(r.Context(), body, r.Header)
	if err != nil {
		rt.failDetect(w, r, err)
		return
	}
	if res.hedged {
		rt.metrics.HedgeWin()
	}
	w.Header().Set("X-Shmd-Backend", res.backend)
	if res.ctype != "" {
		w.Header().Set("Content-Type", res.ctype)
	}
	rt.metrics.Request(res.status)
	w.WriteHeader(res.status)
	w.Write(res.body)
}

// failDetect maps a dispatch failure to its HTTP reply.
func (rt *Router) failDetect(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case r.Context().Err() != nil:
		// Client gone; nobody is listening. Metrics label only.
		rt.metrics.Request(statusClientClosedRequest)
	case errors.Is(err, errBrownout):
		rt.metrics.Shed()
		rt.shedHint(w)
		rt.status(w, http.StatusServiceUnavailable, err.Error())
	default:
		// Every backend tried answered badly; the fleet is reachable but
		// misbehaving. 502 tells the client the router itself is fine.
		rt.shedHint(w)
		rt.status(w, http.StatusBadGateway, err.Error())
	}
}

// statusClientClosedRequest is nginx's de-facto 499, used only as a
// metrics label for requests abandoned mid-dispatch.
const statusClientClosedRequest = 499

// status writes an error reply on the detect path and records it in
// the request counters (observe endpoints write plain http.Error
// instead, keeping scrapes and health probes out of the metric).
func (rt *Router) status(w http.ResponseWriter, code int, msg string) {
	rt.metrics.Request(code)
	http.Error(w, msg, code)
}

// dispatch runs the retry loop: each round makes one (possibly hedged)
// attempt on backends not yet tried, and a connect error or 5xx earns
// another round after an equal-jitter backoff, up to MaxRetries. The
// tried set persists across rounds so a retry always lands on a fresh
// backend while one exists.
func (rt *Router) dispatch(ctx context.Context, body []byte, hdr http.Header) (*proxyResult, error) {
	tried := make(map[*backend]bool, len(rt.backends))
	var lastErr error
	for attempt := 0; ; attempt++ {
		res, err := rt.race(ctx, body, hdr, tried)
		if err == nil {
			return res, nil
		}
		if errors.Is(err, errBrownout) {
			if lastErr != nil {
				// Fresh backends ran out mid-retry; report the real
				// failure, not the exhaustion.
				return nil, lastErr
			}
			// Nothing was ever routable: a brownout shed, not a failed
			// dispatch.
			return nil, err
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		lastErr = err
		if attempt >= rt.cfg.MaxRetries {
			return nil, lastErr
		}
		rt.metrics.Retry()
		rt.cfg.Sleep(rt.jitter.Backoff(rt.cfg.RetryBackoff, rt.cfg.MaxRetryBackoff, attempt))
	}
}

// race makes one dispatch attempt: forward to the picked backend and,
// if the reply outlives HedgeAfter, re-dispatch to a second backend —
// the first verdict wins and the loser's attempt finishes detached
// (its breaker feedback still lands). Every backend used is added to
// tried.
func (rt *Router) race(ctx context.Context, body []byte, hdr http.Header, tried map[*backend]bool) (*proxyResult, error) {
	primary, probe := rt.pick(tried)
	if primary == nil {
		return nil, errBrownout
	}
	tried[primary] = true
	// Buffered for every possible runner so a loser's send never blocks.
	outcomes := make(chan attemptOutcome, 2)
	rt.forwardAsync(ctx, primary, body, hdr, false, probe, outcomes)

	var hedgeC <-chan time.Time
	if rt.cfg.HedgeAfter > 0 {
		t := time.NewTimer(rt.cfg.HedgeAfter)
		defer t.Stop()
		hedgeC = t.C
	}
	pending := 1
	var firstErr error
	for pending > 0 {
		select {
		case out := <-outcomes:
			pending--
			if out.err == nil {
				out.res.hedged = out.hedge
				return out.res, nil
			}
			if firstErr == nil {
				firstErr = out.err
			}
		case <-hedgeC:
			hedgeC = nil
			// Hedging spends only capacity that is routable right now;
			// no second backend → the primary simply keeps running.
			if h, hprobe := rt.pick(tried); h != nil {
				tried[h] = true
				rt.metrics.Hedge()
				pending++
				rt.forwardAsync(ctx, h, body, hdr, true, hprobe, outcomes)
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return nil, firstErr
}

// pick selects the next backend. Half-open probes come first: a ready
// backend whose breaker cooldown has elapsed claims this request as
// its single live probe — exactly as the Supervisor probes a degraded
// slot with a real detection — so a tripped backend re-earns traffic
// even while healthy peers could absorb everything (and at most one
// request per cooldown is risked; a failed probe retries elsewhere).
// Otherwise: power-of-two-choices on in-flight count among ready
// backends with closed breakers. The second return is true when the
// pick claimed a half-open probe — the forward MUST then resolve the
// breaker (Success, Failure, or Release). Returns nil when nothing is
// routable (brownout).
func (rt *Router) pick(tried map[*backend]bool) (*backend, bool) {
	var avail []*backend
	for _, b := range rt.backends {
		if tried[b] || !b.ready.Load() {
			continue
		}
		if b.breaker.State() == core.BreakerClosed {
			avail = append(avail, b)
			continue
		}
		// Allow claims the single half-open probe; the forward's outcome
		// closes the breaker, re-opens it with doubled cooldown, or hands
		// the probe back if the attempt is abandoned.
		if b.breaker.Allow() {
			return b, true
		}
	}
	switch len(avail) {
	case 0:
		return nil, false
	case 1:
		return avail[0], false
	case 2:
		if avail[1].inflight.Load() < avail[0].inflight.Load() {
			return avail[1], false
		}
		return avail[0], false
	default:
		i := rt.jitter.Intn(len(avail))
		j := rt.jitter.Intn(len(avail) - 1)
		if j >= i {
			j++
		}
		if avail[j].inflight.Load() < avail[i].inflight.Load() {
			return avail[j], false
		}
		return avail[i], false
	}
}

// forwardAsync starts one tracked attempt goroutine.
func (rt *Router) forwardAsync(ctx context.Context, b *backend, body []byte, hdr http.Header, hedge, probe bool, out chan<- attemptOutcome) {
	rt.reqWG.Add(1)
	go func() {
		defer rt.reqWG.Done()
		res, err := rt.forward(ctx, b, body, hdr, probe)
		out <- attemptOutcome{res: res, hedge: hedge, err: err}
	}()
}

// forwardHeaders are the request headers the router relays to the
// backend; everything else is dropped (hop-by-hop semantics).
// X-Tenant rides through verbatim — the backend's registry is the
// quota authority, the router never rewrites identity — and
// X-Tenant-Class is the client's advisory copy of its class for the
// router's own brownout shedding.
var forwardHeaders = []string{"Content-Type", "X-Detect-Deadline-Ms", "X-Tenant", "X-Tenant-Class"}

// forward sends one request to one backend and classifies the outcome
// for its breaker: transport errors, 5xx, and over-cap replies are
// failures, everything else — including 4xx and 429, which prove the
// backend is alive and reasoning — is a success. When probe is set
// this attempt holds the backend's half-open probe and every exit
// path resolves it: Success or Failure where the outcome is the
// backend's doing, Release where the attempt was abandoned (cancelled
// context) — otherwise the breaker would wedge half-open, Allow would
// refuse forever, and the backend would never see traffic again.
func (rt *Router) forward(ctx context.Context, b *backend, body []byte, hdr http.Header, probe bool) (*proxyResult, error) {
	b.inflight.Add(1)
	defer b.inflight.Add(-1)
	b.requests.Add(1)
	resolved := false
	if probe {
		defer func() {
			if !resolved {
				b.breaker.Release()
			}
		}()
	}

	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.base+"/v1/detect", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("route: %s: %w", b.name, err)
	}
	for _, h := range forwardHeaders {
		if v := hdr.Get(h); v != "" {
			req.Header.Set(h, v)
		}
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		if ctx.Err() == nil {
			// A connect failure is the backend's fault; a cancelled
			// context is the client's and must not poison the breaker.
			resolved = true
			rt.noteFailure(b)
		}
		return nil, fmt.Errorf("route: %s: %w", b.name, err)
	}
	defer resp.Body.Close()
	// One byte past the cap distinguishes "fits exactly" from "bigger":
	// an over-cap reply must fail the attempt, never be truncated and
	// relayed with the backend's success status as if it were whole.
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, rt.cfg.MaxBodyBytes+1))
	if err != nil {
		if ctx.Err() == nil {
			resolved = true
			rt.noteFailure(b)
		}
		return nil, fmt.Errorf("route: %s: reading reply: %w", b.name, err)
	}
	if int64(len(respBody)) > rt.cfg.MaxBodyBytes {
		resolved = true
		rt.noteFailure(b)
		return nil, fmt.Errorf("route: %s reply exceeds %d bytes", b.name, rt.cfg.MaxBodyBytes)
	}
	if resp.StatusCode >= 500 {
		resolved = true
		rt.noteFailure(b)
		return nil, fmt.Errorf("route: %s answered %d", b.name, resp.StatusCode)
	}
	resolved = true
	b.breaker.Success()
	return &proxyResult{
		status:  resp.StatusCode,
		ctype:   resp.Header.Get("Content-Type"),
		body:    respBody,
		backend: b.name,
	}, nil
}

// noteFailure feeds one failed attempt to the backend's breaker and
// counters.
func (rt *Router) noteFailure(b *backend) {
	b.failures.Add(1)
	b.breaker.Failure()
}
