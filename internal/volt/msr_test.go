package volt

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestOffsetUnitsRoundTrip(t *testing.T) {
	for _, mv := range []float64{0, -130, -103, -145, 100, -999} {
		units := OffsetUnits(mv)
		back := UnitsToMV(units)
		if math.Abs(back-mv) > 0.5 {
			t.Errorf("offset %v mV -> %d units -> %v mV", mv, units, back)
		}
	}
}

func TestEncodeDecodeOffsetWrite(t *testing.T) {
	msr, err := EncodeOffsetWrite(PlaneCore, -130)
	if err != nil {
		t.Fatal(err)
	}
	if msr&msrExecute == 0 {
		t.Error("execute flag missing")
	}
	plane, mv, err := DecodeOffsetWrite(msr)
	if err != nil {
		t.Fatal(err)
	}
	if plane != PlaneCore {
		t.Errorf("plane = %d", plane)
	}
	if math.Abs(mv-(-130)) > 0.5 {
		t.Errorf("offset = %v mV", mv)
	}
}

func TestEncodeOffsetWriteAllPlanes(t *testing.T) {
	for plane := 0; plane <= 4; plane++ {
		msr, err := EncodeOffsetWrite(plane, -50)
		if err != nil {
			t.Fatalf("plane %d: %v", plane, err)
		}
		got, _, err := DecodeOffsetWrite(msr)
		if err != nil || got != plane {
			t.Errorf("plane %d decoded as %d (err %v)", plane, got, err)
		}
	}
}

func TestEncodeOffsetWriteValidation(t *testing.T) {
	if _, err := EncodeOffsetWrite(-1, 0); !errors.Is(err, ErrBadPlane) {
		t.Errorf("negative plane err = %v", err)
	}
	if _, err := EncodeOffsetWrite(8, 0); !errors.Is(err, ErrBadPlane) {
		t.Errorf("plane 8 err = %v", err)
	}
	// The 11-bit signed field covers about ±1000 mV.
	if _, err := EncodeOffsetWrite(0, -1200); !errors.Is(err, ErrBadOffset) {
		t.Errorf("deep offset err = %v", err)
	}
	if _, err := EncodeOffsetWrite(0, 1200); !errors.Is(err, ErrBadOffset) {
		t.Errorf("high offset err = %v", err)
	}
}

func TestDecodeOffsetWriteValidation(t *testing.T) {
	msr, _ := EncodeOffsetWrite(0, -100)
	if _, _, err := DecodeOffsetWrite(msr &^ msrExecute); !errors.Is(err, ErrNotExecute) {
		t.Errorf("missing execute err = %v", err)
	}
	readCmd := (msr &^ (uint64(0xFF) << msrCmdShift)) | uint64(msrCmdRead)<<msrCmdShift
	if _, _, err := DecodeOffsetWrite(readCmd); !errors.Is(err, ErrNotWriteCmd) {
		t.Errorf("read command err = %v", err)
	}
}

// Property: encode/decode round-trips plane and offset for the whole
// representable range.
func TestMSRRoundTripProperty(t *testing.T) {
	check := func(planeRaw uint8, offRaw int16) bool {
		plane := int(planeRaw % 8)
		offset := float64(offRaw % 900) // stay inside the 11-bit span
		msr, err := EncodeOffsetWrite(plane, offset)
		if err != nil {
			return false
		}
		gotPlane, gotOff, err := DecodeOffsetWrite(msr)
		if err != nil {
			return false
		}
		return gotPlane == plane && math.Abs(gotOff-offset) <= 0.5
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}
