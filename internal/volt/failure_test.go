package volt

import (
	"errors"
	"math"
	"testing"
)

// Failure-path coverage for the regulator: the supervisor work in
// internal/core leans on these exact error behaviors, so they are
// pinned here at the device level.

func TestLockContentionSequences(t *testing.T) {
	r := newTestRegulator(t)
	if err := r.Lock("hmd"); err != nil {
		t.Fatal(err)
	}
	// A contended CalibrateToRate is rejected before touching state.
	if _, err := r.CalibrateToRate("intruder", 0.1); !errors.Is(err, ErrNotOwner) {
		t.Errorf("contended calibrate err = %v", err)
	}
	if r.UndervoltMV() != 0 {
		t.Errorf("rejected calibrate moved the depth to %v", r.UndervoltMV())
	}
	// Lock hand-off: unlock then relock by a new owner works, and the
	// old owner loses write access.
	if err := r.Unlock("hmd"); err != nil {
		t.Fatal(err)
	}
	if err := r.Lock("next"); err != nil {
		t.Fatal(err)
	}
	if err := r.SetUndervolt("hmd", 50); !errors.Is(err, ErrNotOwner) {
		t.Errorf("stale owner write err = %v", err)
	}
	// ErrLocked carries the holder for diagnostics.
	err := r.Lock("hmd")
	if !errors.Is(err, ErrLocked) {
		t.Fatalf("relock err = %v", err)
	}
	// An unlocked regulator accepts writes from anyone (no trusted
	// control armed yet) — the deployment must lock before relying on
	// the defense.
	if err := r.Unlock("next"); err != nil {
		t.Fatal(err)
	}
	if err := r.SetUndervolt("anyone", 100); err != nil {
		t.Errorf("unlocked write err = %v", err)
	}
}

func TestCalibrateToRateUnreachable(t *testing.T) {
	r := newTestRegulator(t)
	for _, rate := range []float64{-0.1, 1.5, math.NaN()} {
		if _, err := r.CalibrateToRate("hmd", rate); err == nil {
			t.Errorf("rate %v must be unreachable", rate)
		}
		if r.UndervoltMV() != 0 {
			t.Errorf("failed calibration moved the depth to %v", r.UndervoltMV())
		}
	}
	// Rate 0 parks at the guard band: no timing path fails there.
	depth, err := r.CalibrateToRate("hmd", 0)
	if err != nil {
		t.Fatal(err)
	}
	if depth != r.Profile().GuardBandMV {
		t.Errorf("rate-0 depth = %v, want guard band %v", depth, r.Profile().GuardBandMV)
	}
	if r.ErrorRate() != 0 {
		t.Errorf("rate at guard band = %v", r.ErrorRate())
	}
	// Rate 1 is only reached asymptotically: the calibration clamps
	// just inside the freeze depth instead of freezing the system.
	depth, err = r.CalibrateToRate("hmd", 1)
	if err != nil {
		t.Fatal(err)
	}
	if depth >= r.Profile().FreezeMV {
		t.Errorf("rate-1 depth %v at or beyond freeze %v", depth, r.Profile().FreezeMV)
	}
	if r.ErrorRate() >= 1 {
		t.Errorf("rate at clamped depth = %v", r.ErrorRate())
	}
	// A rate below the guard-band floor clamps to the guard band
	// rather than reporting an error: the curve cannot go lower.
	depth, err = r.CalibrateToRate("hmd", 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if depth != r.Profile().GuardBandMV {
		t.Errorf("tiny-rate depth = %v, want guard band %v", depth, r.Profile().GuardBandMV)
	}
}

func TestSetUndervoltBeyondCrashMargin(t *testing.T) {
	r := newTestRegulator(t)
	freeze := r.Profile().FreezeMV
	// At or beyond the freeze depth the write is refused and the
	// previous depth survives.
	if err := r.SetUndervolt("hmd", 130); err != nil {
		t.Fatal(err)
	}
	for _, depth := range []float64{freeze, freeze + 1, freeze * 10} {
		if err := r.SetUndervolt("hmd", depth); !errors.Is(err, ErrWouldFreeze) {
			t.Errorf("depth %v err = %v, want ErrWouldFreeze", depth, err)
		}
		if r.UndervoltMV() != 130 {
			t.Errorf("refused write moved the depth to %v", r.UndervoltMV())
		}
	}
	// Just inside the freeze depth is legal — the crash-margin policy
	// lives a layer up (internal/chaos models the actual crash risk).
	if err := r.SetUndervolt("hmd", freeze-0.5); err != nil {
		t.Errorf("depth just inside freeze refused: %v", err)
	}
	// The MSR path enforces the same ceiling.
	msr, err := EncodeOffsetWrite(PlaneCore, -(freeze + 5))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.WriteMSR("hmd", msr); !errors.Is(err, ErrWouldFreeze) {
		t.Errorf("MSR freeze write err = %v", err)
	}
}
