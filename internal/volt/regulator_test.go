package volt

import (
	"errors"
	"math"
	"testing"
)

func newTestRegulator(t *testing.T) *Regulator {
	t.Helper()
	r, err := NewRegulator(PlaneCore, DefaultProfile())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewRegulatorValidation(t *testing.T) {
	if _, err := NewRegulator(9, DefaultProfile()); !errors.Is(err, ErrBadPlane) {
		t.Errorf("bad plane err = %v", err)
	}
	bad := DefaultProfile()
	bad.SlopeMV = -1
	if _, err := NewRegulator(PlaneCore, bad); err == nil {
		t.Error("invalid profile must be rejected")
	}
}

func TestRegulatorDefaults(t *testing.T) {
	r := newTestRegulator(t)
	if r.SupplyVoltage() != NominalVoltage {
		t.Errorf("fresh regulator voltage = %v", r.SupplyVoltage())
	}
	if r.ErrorRate() != 0 {
		t.Errorf("fresh regulator error rate = %v", r.ErrorRate())
	}
	if r.Temperature() != ReferenceTempC {
		t.Errorf("fresh regulator temperature = %v", r.Temperature())
	}
	if r.Plane() != PlaneCore {
		t.Errorf("plane = %d", r.Plane())
	}
}

func TestRegulatorMSRWrite(t *testing.T) {
	r := newTestRegulator(t)
	msr, err := EncodeOffsetWrite(PlaneCore, -130)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.WriteMSR("hmd", msr); err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.UndervoltMV()-130) > 0.5 {
		t.Errorf("undervolt = %v mV", r.UndervoltMV())
	}
	if math.Abs(r.SupplyVoltage()-1.05) > 0.001 {
		t.Errorf("voltage = %v", r.SupplyVoltage())
	}
	if er := r.ErrorRate(); er < 0.07 || er > 0.14 {
		t.Errorf("error rate at -130 mV = %v", er)
	}
}

func TestRegulatorRejectsWrongPlane(t *testing.T) {
	r := newTestRegulator(t)
	msr, _ := EncodeOffsetWrite(PlaneCache, -100)
	if err := r.WriteMSR("hmd", msr); !errors.Is(err, ErrWrongPlane) {
		t.Errorf("wrong plane err = %v", err)
	}
}

func TestRegulatorRejectsOvervolt(t *testing.T) {
	r := newTestRegulator(t)
	msr, _ := EncodeOffsetWrite(PlaneCore, 50)
	if err := r.WriteMSR("hmd", msr); !errors.Is(err, ErrOvervolt) {
		t.Errorf("overvolt err = %v", err)
	}
	if err := r.SetUndervolt("hmd", -5); !errors.Is(err, ErrOvervolt) {
		t.Errorf("negative depth err = %v", err)
	}
}

func TestRegulatorFreezeThreshold(t *testing.T) {
	r := newTestRegulator(t)
	if err := r.SetUndervolt("hmd", r.Profile().FreezeMV+10); !errors.Is(err, ErrWouldFreeze) {
		t.Errorf("freeze err = %v", err)
	}
	// Depth just below freeze is accepted.
	if err := r.SetUndervolt("hmd", r.Profile().FreezeMV-1); err != nil {
		t.Errorf("near-freeze write rejected: %v", err)
	}
}

func TestTrustedControl(t *testing.T) {
	r := newTestRegulator(t)
	if err := r.Lock("stochastic-hmd"); err != nil {
		t.Fatal(err)
	}
	if r.Owner() != "stochastic-hmd" {
		t.Errorf("owner = %q", r.Owner())
	}
	// Re-locking by the same owner is idempotent.
	if err := r.Lock("stochastic-hmd"); err != nil {
		t.Errorf("re-lock by owner failed: %v", err)
	}
	// Another party cannot take the lock, write, or unlock —
	// the adversary cannot simply disable the defense.
	if err := r.Lock("malware"); !errors.Is(err, ErrLocked) {
		t.Errorf("adversary lock err = %v", err)
	}
	if err := r.SetUndervolt("malware", 0); !errors.Is(err, ErrNotOwner) {
		t.Errorf("adversary write err = %v", err)
	}
	if err := r.Unlock("malware"); !errors.Is(err, ErrNotOwner) {
		t.Errorf("adversary unlock err = %v", err)
	}
	// The owner can still drive the voltage.
	if err := r.SetUndervolt("stochastic-hmd", 130); err != nil {
		t.Errorf("owner write failed: %v", err)
	}
	if err := r.Unlock("stochastic-hmd"); err != nil {
		t.Fatal(err)
	}
	if r.Owner() != "" {
		t.Errorf("owner after unlock = %q", r.Owner())
	}
	// Unlock when already unlocked is a no-op.
	if err := r.Unlock("anyone"); err != nil {
		t.Errorf("unlock of unlocked regulator: %v", err)
	}
	// Empty owner names are rejected.
	if err := r.Lock(""); err == nil {
		t.Error("empty owner must be rejected")
	}
}

func TestSetTemperatureValidation(t *testing.T) {
	r := newTestRegulator(t)
	if err := r.SetTemperature(200); err == nil {
		t.Error("absurd temperature must be rejected")
	}
	if err := r.SetTemperature(-100); err == nil {
		t.Error("absurd temperature must be rejected")
	}
	if err := r.SetTemperature(80); err != nil || r.Temperature() != 80 {
		t.Errorf("SetTemperature: err=%v temp=%v", err, r.Temperature())
	}
}

func TestCalibrateToRate(t *testing.T) {
	r := newTestRegulator(t)
	depth, err := r.CalibrateToRate("hmd", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.ErrorRate()-0.1) > 0.005 {
		t.Errorf("calibrated rate = %v, want 0.1 (depth %v)", r.ErrorRate(), depth)
	}

	// Recalibration after a temperature change lands on the same rate
	// at a different depth — the Section IX dynamic adjustment.
	if err := r.SetTemperature(80); err != nil {
		t.Fatal(err)
	}
	depthHot, err := r.CalibrateToRate("hmd", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.ErrorRate()-0.1) > 0.005 {
		t.Errorf("hot calibrated rate = %v", r.ErrorRate())
	}
	if depthHot >= depth {
		t.Errorf("hotter device must need shallower undervolt: %v vs %v", depthHot, depth)
	}

	// Rate 1 maps to the freeze depth and must be clamped below it.
	if _, err := r.CalibrateToRate("hmd", 1); err != nil {
		t.Errorf("CalibrateToRate(1) = %v", err)
	}
	if r.UndervoltMV() >= r.Profile().FreezeMV {
		t.Error("calibration must stay below the freeze threshold")
	}
	if _, err := r.CalibrateToRate("hmd", 2); err == nil {
		t.Error("rate 2 must error")
	}
}
