package volt

import (
	"fmt"
	"math"

	"shmd/internal/rng"
)

// Characterization reference conditions (Section II: i7-5557U at
// 2.2 GHz, CPU temperature 49 °C, nominal core voltage 1.18 V).
const (
	NominalVoltage = 1.18 // volts
	NominalFreqGHz = 2.2
	ReferenceTempC = 49.0
)

// Fault-onset window from Section II: with fixed operands, the first
// multiplication faults appeared between −103 mV and −145 mV of
// undervolting, depending on the inputs.
const (
	OnsetMinMV = 103.0
	OnsetMaxMV = 145.0
)

// DeviceProfile is the per-device calibration the paper's Section IX
// calls for ("undervolting-induced faults vary across devices;
// a separate calibration needs to be done for each device"). It maps
// undervolt depth and temperature to the multiplier fault rate.
//
// The curve is a logistic in undervolt depth u (millivolts below
// nominal):
//
//	er(u, T) = 1 / (1 + exp(-(u - u50(T)) / slope))
//
// clamped to zero inside the guard band where no timing path fails.
// u50 shifts with temperature (ref [8]: mobility/threshold-voltage
// temperature effects move the failing-path delay) and with
// device-to-device process variation.
type DeviceProfile struct {
	// U50MV is the undervolt depth at which half the multiplications
	// fault, at the reference temperature.
	U50MV float64
	// SlopeMV controls how fast the fault rate grows with depth.
	SlopeMV float64
	// GuardBandMV is the depth below which no fault ever occurs
	// (shortest failing path still meets timing).
	GuardBandMV float64
	// TempCoeffMVPerC shifts U50 per degree above the reference
	// temperature: hotter silicon faults at shallower undervolt.
	TempCoeffMVPerC float64
	// FreezeMV is the depth at which the modeled system hangs; the
	// regulator refuses to go deeper (Section II: "until a fault or
	// system freeze occurred").
	FreezeMV float64
}

// Calibration: DefaultProfile reproduces the paper's operating point —
// an error rate of ~0.10 at the Fig 1 measurement level of −130 mV and
// an onset window matching the −103..−145 mV observation — and is the
// second half of the reproduction's calibration surface (the first is
// the fault-location distribution in internal/faults).
func DefaultProfile() DeviceProfile {
	return DeviceProfile{
		U50MV:           170.0,
		SlopeMV:         18.0,
		GuardBandMV:     95.0,
		TempCoeffMVPerC: 0.4,
		FreezeMV:        260.0,
	}
}

// NewDeviceProfile derives a device-specific profile from a seed,
// modeling process variation: U50 shifts by up to ±8 mV and the guard
// band by up to ±5 mV across devices. Seed 0 yields the default device.
func NewDeviceProfile(seed uint64) DeviceProfile {
	p := DefaultProfile()
	if seed == 0 {
		return p
	}
	r := rng.NewRand(seed, 0x0de71ce)
	p.U50MV += (r.Float64()*2 - 1) * 8
	p.GuardBandMV += (r.Float64()*2 - 1) * 5
	return p
}

// Validate reports whether the profile is physically sensible.
func (p DeviceProfile) Validate() error {
	if p.SlopeMV <= 0 {
		return fmt.Errorf("volt: non-positive slope %v", p.SlopeMV)
	}
	if p.GuardBandMV < 0 || p.GuardBandMV >= p.U50MV {
		return fmt.Errorf("volt: guard band %v outside (0, U50=%v)", p.GuardBandMV, p.U50MV)
	}
	if p.FreezeMV <= p.U50MV {
		return fmt.Errorf("volt: freeze depth %v must exceed U50 %v", p.FreezeMV, p.U50MV)
	}
	return nil
}

// u50At returns the temperature-adjusted logistic midpoint.
func (p DeviceProfile) u50At(tempC float64) float64 {
	return p.U50MV - p.TempCoeffMVPerC*(tempC-ReferenceTempC)
}

// ErrorRate returns the per-multiplication fault rate at the given
// undervolt depth (millivolts below nominal, positive number) and
// temperature. Depths inside the guard band never fault.
func (p DeviceProfile) ErrorRate(depthMV, tempC float64) float64 {
	if depthMV <= p.GuardBandMV {
		return 0
	}
	er := 1 / (1 + math.Exp(-(depthMV-p.u50At(tempC))/p.SlopeMV))
	if er < 0 {
		return 0
	}
	if er > 1 {
		return 1
	}
	return er
}

// DepthForRate inverts ErrorRate: the undervolt depth (mV) that yields
// the requested fault rate at the given temperature. Rates at or below
// the guard-band floor return the guard band; a rate of 1 returns the
// freeze depth (the curve only reaches 1 asymptotically).
func (p DeviceProfile) DepthForRate(rate, tempC float64) (float64, error) {
	if rate < 0 || rate > 1 || math.IsNaN(rate) {
		return 0, fmt.Errorf("volt: rate %v outside [0,1]", rate)
	}
	if rate == 0 {
		return p.GuardBandMV, nil
	}
	if rate == 1 {
		return p.FreezeMV, nil
	}
	depth := p.u50At(tempC) + p.SlopeMV*math.Log(rate/(1-rate))
	if depth < p.GuardBandMV {
		depth = p.GuardBandMV
	}
	if depth > p.FreezeMV {
		depth = p.FreezeMV
	}
	return depth, nil
}

// OperandOnsetMV reproduces the Section II per-operand fault-onset
// observation: the undervolt depth at which a specific operand pair
// first faults, spread deterministically across the measured
// −103..−145 mV window (longer effective carry chains fail earlier).
func (p DeviceProfile) OperandOnsetMV(a, b int32) float64 {
	h := rng.DeriveSeed(uint64(uint32(a)), uint64(uint32(b)))
	frac := float64(h%10000) / 9999.0
	span := OnsetMaxMV - OnsetMinMV
	// Re-center the window for devices whose guard band moved.
	shift := p.GuardBandMV - DefaultProfile().GuardBandMV
	return OnsetMinMV + frac*span + shift
}

// SupplyVoltageAt converts an undervolt depth to the absolute supply
// voltage.
func SupplyVoltageAt(depthMV float64) float64 {
	return NominalVoltage - depthMV/1000
}

// DepthAtVoltage converts an absolute supply voltage to undervolt depth
// in millivolts.
func DepthAtVoltage(supplyV float64) float64 {
	return (NominalVoltage - supplyV) * 1000
}
