package volt

import (
	"math"
	"testing"
)

func TestDefaultProfileValid(t *testing.T) {
	if err := DefaultProfile().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestProfileValidation(t *testing.T) {
	p := DefaultProfile()
	p.SlopeMV = 0
	if err := p.Validate(); err == nil {
		t.Error("zero slope must be invalid")
	}
	p = DefaultProfile()
	p.GuardBandMV = p.U50MV + 1
	if err := p.Validate(); err == nil {
		t.Error("guard band above U50 must be invalid")
	}
	p = DefaultProfile()
	p.FreezeMV = p.U50MV - 1
	if err := p.Validate(); err == nil {
		t.Error("freeze below U50 must be invalid")
	}
}

func TestErrorRateGuardBand(t *testing.T) {
	p := DefaultProfile()
	for _, depth := range []float64{0, 10, 50, p.GuardBandMV} {
		if er := p.ErrorRate(depth, ReferenceTempC); er != 0 {
			t.Errorf("depth %v mV inside guard band gave er %v", depth, er)
		}
	}
}

func TestErrorRateMonotoneInDepth(t *testing.T) {
	p := DefaultProfile()
	prev := -1.0
	for depth := 0.0; depth <= 300; depth += 5 {
		er := p.ErrorRate(depth, ReferenceTempC)
		if er < prev {
			t.Fatalf("error rate not monotone at depth %v: %v < %v", depth, er, prev)
		}
		if er < 0 || er > 1 {
			t.Fatalf("error rate %v outside [0,1]", er)
		}
		prev = er
	}
}

func TestCalibrationOperatingPoint(t *testing.T) {
	// The paper's selected configuration: ~10% error rate at the Fig 1
	// measurement level of −130 mV (49 °C).
	p := DefaultProfile()
	er := p.ErrorRate(130, ReferenceTempC)
	if er < 0.07 || er > 0.14 {
		t.Errorf("er(-130 mV) = %v, want ≈ 0.10", er)
	}
	// Inside the measured onset window the rate is small but nonzero.
	if er := p.ErrorRate(OnsetMinMV, ReferenceTempC); er <= 0 || er > 0.05 {
		t.Errorf("er at onset-min = %v, want small nonzero", er)
	}
}

func TestDepthForRateInvertsErrorRate(t *testing.T) {
	p := DefaultProfile()
	for _, rate := range []float64{0.01, 0.05, 0.1, 0.3, 0.5, 0.9} {
		depth, err := p.DepthForRate(rate, ReferenceTempC)
		if err != nil {
			t.Fatal(err)
		}
		back := p.ErrorRate(depth, ReferenceTempC)
		if math.Abs(back-rate) > 0.01 {
			t.Errorf("rate %v -> depth %v -> rate %v", rate, depth, back)
		}
	}
}

func TestDepthForRateEdges(t *testing.T) {
	p := DefaultProfile()
	if d, err := p.DepthForRate(0, ReferenceTempC); err != nil || d != p.GuardBandMV {
		t.Errorf("rate 0: depth=%v err=%v", d, err)
	}
	if d, err := p.DepthForRate(1, ReferenceTempC); err != nil || d != p.FreezeMV {
		t.Errorf("rate 1: depth=%v err=%v", d, err)
	}
	if _, err := p.DepthForRate(-0.1, ReferenceTempC); err == nil {
		t.Error("negative rate must error")
	}
	if _, err := p.DepthForRate(1.1, ReferenceTempC); err == nil {
		t.Error("rate > 1 must error")
	}
}

func TestTemperatureShiftsOnset(t *testing.T) {
	// Hotter silicon faults at shallower undervolt: at fixed depth the
	// error rate must not decrease with temperature.
	p := DefaultProfile()
	cold := p.ErrorRate(150, 30)
	ref := p.ErrorRate(150, ReferenceTempC)
	hot := p.ErrorRate(150, 80)
	if !(cold <= ref && ref <= hot) {
		t.Errorf("temperature ordering violated: 30°C=%v 49°C=%v 80°C=%v", cold, ref, hot)
	}
	if cold == hot {
		t.Error("temperature must have an effect")
	}
}

func TestDeviceVariation(t *testing.T) {
	base := NewDeviceProfile(0)
	if base != DefaultProfile() {
		t.Error("seed 0 must be the default device")
	}
	distinct := 0
	for seed := uint64(1); seed <= 10; seed++ {
		p := NewDeviceProfile(seed)
		if err := p.Validate(); err != nil {
			t.Errorf("device %d invalid: %v", seed, err)
		}
		if p.U50MV != base.U50MV {
			distinct++
		}
		if math.Abs(p.U50MV-base.U50MV) > 8.001 {
			t.Errorf("device %d U50 drift too large: %v", seed, p.U50MV-base.U50MV)
		}
	}
	if distinct < 8 {
		t.Errorf("only %d/10 devices differ from default", distinct)
	}
	// Determinism: same seed, same device.
	if NewDeviceProfile(3) != NewDeviceProfile(3) {
		t.Error("device profiles must be deterministic per seed")
	}
}

func TestOperandOnsetWindow(t *testing.T) {
	p := DefaultProfile()
	seen := map[float64]bool{}
	for i := int32(0); i < 500; i++ {
		onset := p.OperandOnsetMV(i*268435399, ^i)
		if onset < OnsetMinMV-0.001 || onset > OnsetMaxMV+0.001 {
			t.Fatalf("onset %v outside [%v, %v]", onset, OnsetMinMV, OnsetMaxMV)
		}
		seen[onset] = true
	}
	if len(seen) < 100 {
		t.Errorf("onsets insufficiently input-dependent: %d distinct", len(seen))
	}
	// Deterministic per operand pair.
	if p.OperandOnsetMV(7, 9) != p.OperandOnsetMV(7, 9) {
		t.Error("onset must be deterministic per operands")
	}
}

func TestVoltageDepthConversions(t *testing.T) {
	if v := SupplyVoltageAt(130); math.Abs(v-1.05) > 1e-9 {
		t.Errorf("SupplyVoltageAt(130) = %v", v)
	}
	if d := DepthAtVoltage(0.68); math.Abs(d-500) > 1e-9 {
		t.Errorf("DepthAtVoltage(0.68) = %v", d)
	}
	for _, depth := range []float64{0, 130, 500} {
		if got := DepthAtVoltage(SupplyVoltageAt(depth)); math.Abs(got-depth) > 1e-9 {
			t.Errorf("depth round trip %v -> %v", depth, got)
		}
	}
}
