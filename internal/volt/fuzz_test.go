package volt

import (
	"math"
	"testing"
)

// FuzzDecodeOffsetWrite checks that arbitrary MSR values decode to an
// error or an in-range (plane, offset) pair — the regulator's first
// line of defense against hostile writes.
func FuzzDecodeOffsetWrite(f *testing.F) {
	valid, err := EncodeOffsetWrite(PlaneCore, -130)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(uint64(0))
	f.Add(^uint64(0))
	f.Add(valid &^ msrExecute)

	f.Fuzz(func(t *testing.T, msr uint64) {
		plane, offsetMV, err := DecodeOffsetWrite(msr)
		if err != nil {
			return
		}
		if plane < 0 || plane > 7 {
			t.Fatalf("decoded plane %d out of range", plane)
		}
		// 11-bit signed units cover about ±1000 mV.
		if math.Abs(offsetMV) > 1001 {
			t.Fatalf("decoded offset %v mV out of range", offsetMV)
		}
		// Decoded writes must re-encode losslessly.
		msr2, err := EncodeOffsetWrite(plane, offsetMV)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		p2, o2, err := DecodeOffsetWrite(msr2)
		if err != nil || p2 != plane || math.Abs(o2-offsetMV) > 0.5 {
			t.Fatalf("round trip drifted: (%d,%v) -> (%d,%v) err=%v", plane, offsetMV, p2, o2, err)
		}
	})
}
