package volt

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// Trusted-control errors (Section III "Trusted control": the voltage
// regulator must be owned by the Stochastic-HMD IP or enclave,
// otherwise the adversary simply scales the voltage back to nominal
// and removes the defense).
var (
	ErrLocked      = errors.New("volt: regulator locked by another owner")
	ErrNotOwner    = errors.New("volt: caller does not own the regulator lock")
	ErrWrongPlane  = errors.New("volt: MSR write targets a different plane")
	ErrWouldFreeze = errors.New("volt: requested depth exceeds the freeze threshold")
	ErrOvervolt    = errors.New("volt: positive offsets (overvolting) are not permitted")
)

// Regulator models one integrated voltage regulator (IVR): modern
// multi-core parts expose one per core, which is what lets the paper
// offload detection to a dedicated undervolted core while monitored
// applications keep running at nominal voltage on the others.
type Regulator struct {
	plane   int
	profile DeviceProfile
	tempC   float64

	depthMV float64
	owner   string

	// calibrations counts CalibrateToRate invocations. Calibration is
	// the expensive per-device flow of Section IX; a journal-backed
	// restart proves it skipped the flow by observing this counter.
	calibrations atomic.Uint64
}

// NewRegulator returns a nominal-voltage regulator for a plane.
func NewRegulator(plane int, profile DeviceProfile) (*Regulator, error) {
	if plane < 0 || plane > 7 {
		return nil, ErrBadPlane
	}
	if err := profile.Validate(); err != nil {
		return nil, err
	}
	return &Regulator{plane: plane, profile: profile, tempC: ReferenceTempC}, nil
}

// Plane returns the voltage plane this regulator drives.
func (r *Regulator) Plane() int { return r.plane }

// Profile returns the device calibration in effect.
func (r *Regulator) Profile() DeviceProfile { return r.profile }

// Lock grants exclusive control to owner. It fails if another owner
// holds the lock. This is the co-processor/TEE dedication of the paper:
// "we can simply dedicate the control of one of the VRs to the
// Stochastic-HMD IP".
func (r *Regulator) Lock(owner string) error {
	if owner == "" {
		return fmt.Errorf("volt: empty owner name")
	}
	if r.owner != "" && r.owner != owner {
		return fmt.Errorf("%w (held by %q)", ErrLocked, r.owner)
	}
	r.owner = owner
	return nil
}

// Unlock releases the lock; only the current owner may release it.
func (r *Regulator) Unlock(owner string) error {
	if r.owner == "" {
		return nil
	}
	if r.owner != owner {
		return ErrNotOwner
	}
	r.owner = ""
	return nil
}

// Owner returns the current lock holder, or "" when unlocked.
func (r *Regulator) Owner() string { return r.owner }

// checkOwner enforces trusted control on state-changing operations.
func (r *Regulator) checkOwner(caller string) error {
	if r.owner != "" && r.owner != caller {
		return fmt.Errorf("%w: %q attempted a write", ErrNotOwner, caller)
	}
	return nil
}

// WriteMSR applies an MSR 0x150 offset write as caller. It enforces the
// lock, the plane, the no-overvolt policy, and the freeze threshold.
func (r *Regulator) WriteMSR(caller string, msr uint64) error {
	plane, offsetMV, err := DecodeOffsetWrite(msr)
	if err != nil {
		return err
	}
	if plane != r.plane {
		return fmt.Errorf("%w: got %d, regulator drives %d", ErrWrongPlane, plane, r.plane)
	}
	if offsetMV > 0 {
		return ErrOvervolt
	}
	return r.setDepth(caller, -offsetMV)
}

// SetUndervolt sets the undervolt depth (mV below nominal, >= 0)
// directly; the CLI and experiments use this instead of raw MSR writes.
func (r *Regulator) SetUndervolt(caller string, depthMV float64) error {
	if depthMV < 0 {
		return ErrOvervolt
	}
	return r.setDepth(caller, depthMV)
}

func (r *Regulator) setDepth(caller string, depthMV float64) error {
	if err := r.checkOwner(caller); err != nil {
		return err
	}
	if depthMV >= r.profile.FreezeMV {
		return fmt.Errorf("%w: %.1f mV >= %.1f mV", ErrWouldFreeze, depthMV, r.profile.FreezeMV)
	}
	r.depthMV = depthMV
	return nil
}

// SetTemperature updates the die temperature used by the calibration
// curve (Section IX: "the voltage regulator ... needs to dynamically
// adjust the undervolting level based on the current temperature").
func (r *Regulator) SetTemperature(tempC float64) error {
	if tempC < -40 || tempC > 110 {
		return fmt.Errorf("volt: temperature %v °C outside operating range", tempC)
	}
	r.tempC = tempC
	return nil
}

// Temperature returns the modeled die temperature.
func (r *Regulator) Temperature() float64 { return r.tempC }

// UndervoltMV returns the current depth below nominal in millivolts.
func (r *Regulator) UndervoltMV() float64 { return r.depthMV }

// SupplyVoltage returns the current absolute supply voltage.
func (r *Regulator) SupplyVoltage() float64 { return SupplyVoltageAt(r.depthMV) }

// ErrorRate returns the multiplier fault rate at the current voltage
// and temperature.
func (r *Regulator) ErrorRate() float64 {
	return r.profile.ErrorRate(r.depthMV, r.tempC)
}

// CalibrateToRate adjusts the undervolt depth so the fault rate matches
// the requested value at the current temperature — the per-device,
// per-temperature calibration loop of Section IX. It returns the depth
// chosen.
func (r *Regulator) CalibrateToRate(caller string, rate float64) (float64, error) {
	r.calibrations.Add(1)
	depth, err := r.profile.DepthForRate(rate, r.tempC)
	if err != nil {
		return 0, err
	}
	if depth >= r.profile.FreezeMV {
		depth = r.profile.FreezeMV - 1
	}
	if err := r.setDepth(caller, depth); err != nil {
		return 0, err
	}
	return depth, nil
}

// Calibrations returns how many times CalibrateToRate has run on this
// regulator (successfully or not).
func (r *Regulator) Calibrations() uint64 { return r.calibrations.Load() }
