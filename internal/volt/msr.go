// Package volt models the undervolting plane of the Stochastic-HMD:
// the software-visible voltage-offset interface (MSR 0x150, as used by
// the paper's characterization on an i7-5557U), per-device calibration
// curves mapping undervolt depth to multiplier fault rate, temperature
// dependence, and the trusted-control regulator that owns a core's
// voltage on behalf of the detector.
package volt

import (
	"errors"
	"fmt"
	"math"
)

// Voltage plane indices for the MSR 0x150 overclocking mailbox. The
// paper sets the plane index to 0 "to scale the core's voltage
// exclusively".
const (
	PlaneCore   = 0
	PlaneGPU    = 1
	PlaneCache  = 2
	PlaneUncore = 3
	PlaneAnalog = 4
)

// MSR 0x150 field layout (the overclocking mailbox, as documented by
// the Plundervolt analysis the paper cites for its undervolting
// mechanism):
//
//	bit  63     : command-execute flag (must be 1)
//	bits 42..40 : voltage plane index
//	bits 39..32 : command — 0x11 write voltage offset, 0x10 read
//	bits 31..21 : offset, 11-bit two's complement in units of 1/1024 V
const (
	msrExecute    = uint64(1) << 63
	msrPlaneShift = 40
	msrCmdShift   = 32
	msrCmdWrite   = 0x11
	msrCmdRead    = 0x10
	msrOffShift   = 21
	msrOffBits    = 11
)

// Errors returned by MSR encoding/decoding.
var (
	ErrBadPlane    = errors.New("volt: plane index outside 0..7")
	ErrBadOffset   = errors.New("volt: offset outside the 11-bit range")
	ErrNotExecute  = errors.New("volt: MSR value missing the execute flag")
	ErrNotWriteCmd = errors.New("volt: MSR value is not a voltage-offset write")
)

// OffsetUnits converts a voltage offset in millivolts to the mailbox's
// 1/1024-V units, rounding to nearest.
func OffsetUnits(offsetMV float64) int {
	return int(math.Round(offsetMV * 1.024))
}

// UnitsToMV converts mailbox units back to millivolts.
func UnitsToMV(units int) float64 {
	return float64(units) / 1.024
}

// EncodeOffsetWrite builds the MSR 0x150 value that writes the given
// voltage offset (negative = undervolt) to a plane.
func EncodeOffsetWrite(plane int, offsetMV float64) (uint64, error) {
	if plane < 0 || plane > 7 {
		return 0, ErrBadPlane
	}
	units := OffsetUnits(offsetMV)
	min := -(1 << (msrOffBits - 1))
	max := 1<<(msrOffBits-1) - 1
	if units < min || units > max {
		return 0, fmt.Errorf("%w: %d units", ErrBadOffset, units)
	}
	enc := uint64(units) & ((1 << msrOffBits) - 1)
	return msrExecute |
		uint64(plane)<<msrPlaneShift |
		uint64(msrCmdWrite)<<msrCmdShift |
		enc<<msrOffShift, nil
}

// DecodeOffsetWrite validates an MSR 0x150 write and extracts the plane
// and offset in millivolts.
func DecodeOffsetWrite(msr uint64) (plane int, offsetMV float64, err error) {
	if msr&msrExecute == 0 {
		return 0, 0, ErrNotExecute
	}
	if cmd := (msr >> msrCmdShift) & 0xFF; cmd != msrCmdWrite {
		return 0, 0, fmt.Errorf("%w: command %#x", ErrNotWriteCmd, cmd)
	}
	plane = int((msr >> msrPlaneShift) & 0x7)
	raw := (msr >> msrOffShift) & ((1 << msrOffBits) - 1)
	units := int(raw)
	if units >= 1<<(msrOffBits-1) { // sign-extend 11-bit value
		units -= 1 << msrOffBits
	}
	return plane, UnitsToMV(units), nil
}
