package replay

import (
	"fmt"
	"math"

	"shmd/internal/faults"
	"shmd/internal/hmd"
)

// ConfidenceFunc recomputes a decision confidence from a score; the
// serving layer passes its own mapping so replay reproduces served
// confidences without importing the server.
type ConfidenceFunc func(score, threshold float64, malware bool) float64

// Replay re-executes a recorded decision off-hardware: the record's
// windows are scored through base with a replaying fault unit that
// consumes the recorded draw log instead of an RNG. It returns the
// reproduced decision and confidence. The model must match the one
// that produced the trace (threshold is checked bit-exactly; a wrong
// model also surfaces as an undrained draw log or a verdict mismatch
// in Verify).
func Replay(base *hmd.HMD, rec Record, conf ConfidenceFunc) (hmd.Decision, float64, error) {
	cfg := base.Config()
	if math.Float64bits(cfg.Threshold) != math.Float64bits(rec.Threshold) {
		return hmd.Decision{}, 0, fmt.Errorf("replay: model threshold %v != recorded %v", cfg.Threshold, rec.Threshold)
	}
	if len(rec.Windows) < cfg.Period {
		return hmd.Decision{}, 0, fmt.Errorf("replay: %d windows shorter than detection period %d", len(rec.Windows), cfg.Period)
	}
	if rec.Unprotected && rec.Draws.Faults() != 0 {
		return hmd.Decision{}, 0, fmt.Errorf("replay: unprotected decision carries %d fault draws", rec.Draws.Faults())
	}
	// One replay path covers both serve modes: an unprotected
	// (exact-unit) decision records an empty draw log, and an empty log
	// makes the replayer exact. The scalar replayer also reproduces
	// traces recorded through the fused bulk kernels — scalar/bulk
	// bit-identity is pinned in internal/faults and internal/fxp.
	rep := faults.NewReplayer(rec.Draws)
	det := base.WithFreshBuffers()
	dec := det.DecideFromScores(det.ScoreWindowsUnit(rep, rec.Windows))
	if err := rep.Done(); err != nil {
		return dec, 0, fmt.Errorf("replay: %w", err)
	}
	c := conf(dec.Score, cfg.Threshold, dec.Malware)
	return dec, c, nil
}

// Verify replays rec and checks the reproduced verdict, score, and
// confidence against the recorded ones bit-for-bit. nil means the
// trace is faithful to what the detector actually decided.
func Verify(base *hmd.HMD, rec Record, conf ConfidenceFunc) error {
	dec, c, err := Replay(base, rec, conf)
	if err != nil {
		return err
	}
	if dec.Malware != rec.Malware {
		return fmt.Errorf("replay: verdict mismatch: replayed malware=%v, recorded %v (score %v vs %v)",
			dec.Malware, rec.Malware, dec.Score, rec.Score)
	}
	if math.Float64bits(dec.Score) != math.Float64bits(rec.Score) {
		return fmt.Errorf("replay: score mismatch: replayed %v (%#x), recorded %v (%#x)",
			dec.Score, math.Float64bits(dec.Score), rec.Score, math.Float64bits(rec.Score))
	}
	if math.Float64bits(c) != math.Float64bits(rec.Confidence) {
		return fmt.Errorf("replay: confidence mismatch: replayed %v, recorded %v", c, rec.Confidence)
	}
	return nil
}
