package replay

import (
	"bytes"
	"errors"
	"io"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"shmd/internal/fann"
	"shmd/internal/faults"
	"shmd/internal/hmd"
	"shmd/internal/rng"
	"shmd/internal/trace"
)

// testConfidence mirrors the serving layer's score→confidence mapping
// (margin relative to the threshold, clamped to [0,1]).
func testConfidence(score, threshold float64, malware bool) float64 {
	var c float64
	if malware {
		c = (score - threshold) / (1 - threshold)
	} else {
		c = (threshold - score) / threshold
	}
	if c < 0 {
		return 0
	}
	if c > 1 {
		return 1
	}
	return c
}

// synthWindows builds deterministic synthetic trace windows.
func synthWindows(r *rand.Rand, n int) []trace.WindowCounts {
	ws := make([]trace.WindowCounts, n)
	for i := range ws {
		for op := range ws[i].Opcode {
			ws[i].Opcode[op] = r.Intn(50)
		}
		ws[i].Taken = r.Intn(100)
		for b := range ws[i].Stride {
			ws[i].Stride[b] = r.Intn(30)
		}
	}
	return ws
}

// testModel builds a small untrained HMD (weights are random but
// deterministic; replay only needs a fixed model, not an accurate one).
func testModel(t *testing.T) *hmd.HMD {
	t.Helper()
	net, err := fann.New(fann.Config{
		Layers: []int{64, 4, 1},
		Hidden: fann.SigmoidSymmetric,
		Output: fann.Sigmoid,
		Seed:   99,
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := hmd.FromNetwork(net, hmd.Config{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// recordDecision scores windows through a recording injector and
// packages the decision as a trace record, exactly as the serving
// sink does.
func recordDecision(t *testing.T, h *hmd.HMD, rate float64, seed uint64, windows []trace.WindowCounts) Record {
	t.Helper()
	inj, err := faults.NewInjector(rate, nil, rng.NewRand(seed))
	if err != nil {
		t.Fatal(err)
	}
	var log faults.DrawLog
	inj.StartRecord(&log)
	det := h.WithFreshBuffers()
	dec := det.DecideFromScores(det.ScoreWindowsUnit(inj, windows))
	inj.StopRecord()
	return Record{
		Seed:       seed,
		Slot:       1,
		Gen:        2,
		Rate:       rate,
		DepthMV:    130,
		Threshold:  h.Config().Threshold,
		Malware:    dec.Malware,
		Score:      dec.Score,
		Confidence: testConfidence(dec.Score, h.Config().Threshold, dec.Malware),
		Draws:      log.Clone(),
		Windows:    windows,
	}
}

func TestRecordRoundTrip(t *testing.T) {
	h := testModel(t)
	r := rng.NewRand(3)
	recs := []Record{
		recordDecision(t, h, 0.5, 11, synthWindows(r, 6)),
		recordDecision(t, h, 0.0, 12, synthWindows(r, 1)),
		{Seed: 1, Rate: 0.1, DepthMV: 1, Threshold: 0.5, Unprotected: true,
			Score: 0.25, Confidence: 0.5, Draws: faults.DrawLog{InitialGap: -1}},
	}
	for i, rec := range recs {
		payload, err := EncodeRecord(nil, rec)
		if err != nil {
			t.Fatalf("record %d: encode: %v", i, err)
		}
		got, err := DecodeRecord(payload)
		if err != nil {
			t.Fatalf("record %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(normalize(rec), normalize(got)) {
			t.Fatalf("record %d: round trip mismatch:\n in: %+v\nout: %+v", i, rec, got)
		}
	}
}

// TestTenantTailCompat pins the tenant field's compatibility contract:
// a tenant-tagged record round-trips, an untagged record encodes
// byte-identically to the pre-tenant format (so old traces decode
// unchanged with Tenant == ""), and the malformed tails are rejected.
func TestTenantTailCompat(t *testing.T) {
	h := testModel(t)
	r := rng.NewRand(7)
	rec := recordDecision(t, h, 0.5, 21, synthWindows(r, 3))

	legacy, err := EncodeRecord(nil, rec)
	if err != nil {
		t.Fatal(err)
	}
	rec.Tenant = "acme-corp"
	tagged, err := EncodeRecord(nil, rec)
	if err != nil {
		t.Fatal(err)
	}
	// The tagged encoding is the legacy encoding plus a strictly
	// appended tail: nothing before the tail moved.
	if !bytes.HasPrefix(tagged, legacy) {
		t.Fatal("tenant tail moved earlier fields")
	}
	got, err := DecodeRecord(tagged)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tenant != "acme-corp" {
		t.Fatalf("tenant = %q, want acme-corp", got.Tenant)
	}
	// A pre-tenant payload decodes with the zero tenant.
	got, err = DecodeRecord(legacy)
	if err != nil {
		t.Fatalf("legacy payload: %v", err)
	}
	if got.Tenant != "" {
		t.Fatalf("legacy tenant = %q, want empty", got.Tenant)
	}
	// An explicit empty tail is never emitted, so it is corrupt.
	if _, err := DecodeRecord(append(append([]byte(nil), legacy...), 0)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("empty tenant tail: err = %v, want ErrCorrupt", err)
	}
	// A truncated tail is corrupt.
	if _, err := DecodeRecord(tagged[:len(tagged)-2]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated tenant tail: err = %v, want ErrCorrupt", err)
	}
	// An oversized tenant refuses to encode.
	rec.Tenant = string(make([]byte, maxTenantLen+1))
	if _, err := EncodeRecord(nil, rec); err == nil {
		t.Fatal("oversized tenant encoded")
	}
}

// TestModelVersionTailCompat pins the model-version column's
// compatibility contract: the field rides a zero-tagged tail appended
// after the (optional) tenant tail, version-0 records encode
// byte-identically to the pre-registry format, and malformed tails
// are rejected.
func TestModelVersionTailCompat(t *testing.T) {
	h := testModel(t)
	r := rng.NewRand(9)
	rec := recordDecision(t, h, 0.5, 31, synthWindows(r, 3))

	legacy, err := EncodeRecord(nil, rec)
	if err != nil {
		t.Fatal(err)
	}
	rec.ModelVersion = 7
	versioned, err := EncodeRecord(nil, rec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(versioned, legacy) {
		t.Fatal("model-version tail moved earlier fields")
	}
	got, err := DecodeRecord(versioned)
	if err != nil {
		t.Fatal(err)
	}
	if got.ModelVersion != 7 {
		t.Fatalf("model version = %d, want 7", got.ModelVersion)
	}
	// Version 0 is the omitted encoding: legacy payloads decode with 0.
	got, err = DecodeRecord(legacy)
	if err != nil {
		t.Fatalf("legacy payload: %v", err)
	}
	if got.ModelVersion != 0 {
		t.Fatalf("legacy model version = %d, want 0", got.ModelVersion)
	}

	// Both tails together: tenant first, model version last.
	rec.Tenant = "acme-corp"
	both, err := EncodeRecord(nil, rec)
	if err != nil {
		t.Fatal(err)
	}
	got, err = DecodeRecord(both)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tenant != "acme-corp" || got.ModelVersion != 7 {
		t.Fatalf("both tails: tenant=%q version=%d", got.Tenant, got.ModelVersion)
	}

	// A zero tag with nothing after it is truncated, not ambiguous.
	if _, err := DecodeRecord(append(append([]byte(nil), legacy...), 0)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bare zero tag: err = %v, want ErrCorrupt", err)
	}
	// An explicit version 0 in the tail is never emitted, so it is
	// corrupt rather than a second spelling of "no version".
	if _, err := DecodeRecord(append(append([]byte(nil), legacy...), 0, 0)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("explicit zero version: err = %v, want ErrCorrupt", err)
	}
	// Trailing bytes after the version tail are corrupt.
	if _, err := DecodeRecord(append(append([]byte(nil), versioned...), 1)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing bytes after version tail: err = %v, want ErrCorrupt", err)
	}
}

// normalize maps empty slices to nil so DeepEqual compares content.
func normalize(r Record) Record {
	if len(r.Draws.Gaps) == 0 {
		r.Draws.Gaps = nil
	}
	if len(r.Draws.Bits) == 0 {
		r.Draws.Bits = nil
	}
	if len(r.Windows) == 0 {
		r.Windows = nil
	}
	return r
}

func TestWriterReaderStream(t *testing.T) {
	h := testModel(t)
	r := rng.NewRand(5)
	var recs []Record
	for i := 0; i < 5; i++ {
		recs = append(recs, recordDecision(t, h, 0.3, uint64(20+i), synthWindows(r, 3)))
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := w.WriteRecord(rec); err != nil {
			t.Fatal(err)
		}
	}
	rd, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		got, err := rd.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !reflect.DeepEqual(normalize(recs[i]), normalize(got)) {
			t.Fatalf("record %d mismatch", i)
		}
	}
	if _, err := rd.Next(); err != io.EOF {
		t.Fatalf("end of trace: got %v, want io.EOF", err)
	}
}

func TestCorruptTraces(t *testing.T) {
	h := testModel(t)
	rec := recordDecision(t, h, 0.5, 31, synthWindows(rng.NewRand(9), 4))
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	if err := w.WriteRecord(rec); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	mutate := func(name string, f func([]byte) []byte) {
		t.Run(name, func(t *testing.T) {
			data := f(append([]byte(nil), valid...))
			rd, err := NewReader(bytes.NewReader(data))
			if err != nil {
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("reader error %v does not wrap ErrCorrupt", err)
				}
				return
			}
			for {
				_, err := rd.Next()
				if err == nil {
					continue
				}
				if err == io.EOF {
					t.Fatal("corrupt trace read cleanly to EOF")
				}
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("error %v does not wrap ErrCorrupt", err)
				}
				return
			}
		})
	}

	mutate("bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b })
	mutate("empty file", func(b []byte) []byte { return nil })
	mutate("truncated length", func(b []byte) []byte { return b[:len(Magic)+2] })
	mutate("truncated payload", func(b []byte) []byte { return b[:len(Magic)+10] })
	mutate("missing checksum", func(b []byte) []byte { return b[:len(b)-2] })
	mutate("flipped payload byte", func(b []byte) []byte { b[len(Magic)+6] ^= 1; return b })
	mutate("flipped checksum", func(b []byte) []byte { b[len(b)-1] ^= 1; return b })
	mutate("huge length frame", func(b []byte) []byte {
		b[len(Magic)] = 0xff
		b[len(Magic)+1] = 0xff
		b[len(Magic)+2] = 0xff
		b[len(Magic)+3] = 0xff
		return b
	})
	mutate("trailing garbage", func(b []byte) []byte { return append(b, 0xde, 0xad) })
}

func TestEncodeRejectsInvalid(t *testing.T) {
	ok := Record{Rate: 0.1, DepthMV: 100, Threshold: 0.5, Score: 0.5, Confidence: 0,
		Draws: faults.DrawLog{InitialGap: -1}}
	bad := []func(*Record){
		func(r *Record) { r.Threshold = 0 },
		func(r *Record) { r.Threshold = 1 },
		func(r *Record) { r.Rate = -0.1 },
		func(r *Record) { r.Rate = math.NaN() },
		func(r *Record) { r.Score = 1.5 },
		func(r *Record) { r.Confidence = -1 },
		func(r *Record) { r.DepthMV = 20000 },
		func(r *Record) { r.Slot = -1 },
		func(r *Record) { r.Draws.InitialGap = -2 },
		func(r *Record) { r.Draws.Gaps = []int64{-1} },
		func(r *Record) { r.Draws.Gaps = []int64{1}; r.Draws.Bits = []uint8{2} },
		func(r *Record) { r.Draws.Bits = []uint8{14, 15} }, // more bits than gaps+1
	}
	if _, err := EncodeRecord(nil, ok); err != nil {
		t.Fatalf("valid record rejected: %v", err)
	}
	for i, f := range bad {
		r := ok
		r.Draws = ok.Draws.Clone()
		f(&r)
		if _, err := EncodeRecord(nil, r); err == nil {
			t.Errorf("mutation %d: invalid record encoded", i)
		}
	}
}

func TestReplayVerify(t *testing.T) {
	h := testModel(t)
	r := rng.NewRand(17)
	for _, rate := range []float64{0, 0.1, 0.5, 1.0} {
		rec := recordDecision(t, h, rate, 40+uint64(rate*10), synthWindows(r, 8))
		if err := Verify(h, rec, testConfidence); err != nil {
			t.Fatalf("rate %v: faithful record failed verification: %v", rate, err)
		}
	}

	// An unprotected (exact-unit) decision replays through the same path.
	windows := synthWindows(r, 4)
	det := h.WithFreshBuffers()
	dec := det.DetectProgram(windows)
	unprot := Record{
		Seed: 7, Rate: 0, DepthMV: 0, Threshold: h.Config().Threshold,
		Malware: dec.Malware, Unprotected: true, Score: dec.Score,
		Confidence: testConfidence(dec.Score, h.Config().Threshold, dec.Malware),
		Draws:      faults.DrawLog{InitialGap: -1}, Windows: windows,
	}
	if err := Verify(h, unprot, testConfidence); err != nil {
		t.Fatalf("unprotected record failed verification: %v", err)
	}
}

func TestVerifyDetectsTampering(t *testing.T) {
	h := testModel(t)
	rec := recordDecision(t, h, 0.5, 53, synthWindows(rng.NewRand(21), 8))
	if rec.Draws.Faults() == 0 {
		t.Fatal("fixture recorded no faults")
	}
	if err := Verify(h, rec, testConfidence); err != nil {
		t.Fatal(err)
	}

	tampered := []struct {
		name string
		f    func(*Record)
	}{
		{"score", func(r *Record) { r.Score = math.Nextafter(r.Score, 1) }},
		{"confidence", func(r *Record) { r.Confidence = math.Nextafter(r.Confidence, 1) }},
		{"fault bit", func(r *Record) { r.Draws.Bits[0] ^= 0x20 }},
		{"gap", func(r *Record) { r.Draws.Gaps[0] += 3 }},
		{"threshold", func(r *Record) { r.Threshold = 0.6 }},
		{"extra window", func(r *Record) { r.Windows = append(r.Windows, r.Windows[0]) }},
		{"unprotected with faults", func(r *Record) { r.Unprotected = true }},
	}
	for _, tc := range tampered {
		r := rec
		r.Draws = rec.Draws.Clone()
		r.Windows = append([]trace.WindowCounts(nil), rec.Windows...)
		tc.f(&r)
		if err := Verify(h, r, testConfidence); err == nil {
			t.Errorf("%s tampering passed verification", tc.name)
		}
	}
}

func TestSinkDropsWhenFull(t *testing.T) {
	// A sink whose drain goroutine never runs: offers beyond the ring
	// capacity must be dropped and counted, never block.
	s := &Sink{ch: make(chan Record, 2), done: make(chan struct{})}
	rec := Record{Rate: 0.1, DepthMV: 1, Threshold: 0.5, Score: 0.5,
		Draws: faults.DrawLog{InitialGap: -1}}
	if !s.Record(rec) || !s.Record(rec) {
		t.Fatal("ring rejected records below capacity")
	}
	for i := 0; i < 3; i++ {
		if s.Record(rec) {
			t.Fatal("full ring accepted a record")
		}
	}
	if s.Dropped() != 3 {
		t.Fatalf("dropped = %d, want 3", s.Dropped())
	}
}

func TestSinkEndToEnd(t *testing.T) {
	h := testModel(t)
	r := rng.NewRand(29)
	path := filepath.Join(t.TempDir(), "trace.bin")
	s, err := OpenSink(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	var recs []Record
	for i := 0; i < 4; i++ {
		rec := recordDecision(t, h, 0.4, uint64(60+i), synthWindows(r, 2))
		recs = append(recs, rec)
		s.Record(rec)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if s.Written()+s.Dropped() != 4 {
		t.Fatalf("written %d + dropped %d != 4", s.Written(), s.Dropped())
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rd, err := NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		got, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(normalize(recs[n]), normalize(got)) {
			t.Fatalf("record %d mismatch", n)
		}
		if err := Verify(h, got, testConfidence); err != nil {
			t.Fatalf("record %d: %v", n, err)
		}
		n++
	}
	if uint64(n) != s.Written() {
		t.Fatalf("read %d records, sink wrote %d", n, s.Written())
	}
}

func TestReplayValidation(t *testing.T) {
	h := testModel(t)
	rec := Record{Threshold: 0.25, Draws: faults.DrawLog{InitialGap: -1}}
	if _, _, err := Replay(h, rec, testConfidence); err == nil {
		t.Error("threshold mismatch accepted")
	}
	rec.Threshold = h.Config().Threshold
	if _, _, err := Replay(h, rec, testConfidence); err == nil {
		t.Error("empty windows accepted")
	}
}
