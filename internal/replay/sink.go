package replay

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
)

// Sink is an opt-in, lossy-by-design trace recorder for the serving
// path: decisions are offered to a bounded ring and written by a
// single background goroutine, so a slow disk can never stall a
// detection. When the ring is full the record is dropped and counted
// — auditability degrades gracefully instead of becoming backpressure.
type Sink struct {
	ch      chan Record
	done    chan struct{}
	f       *os.File
	w       *Writer
	written atomic.Uint64
	dropped atomic.Uint64
	werr    atomic.Pointer[error]
	once    sync.Once
}

// DefaultSinkBuffer is the default ring capacity.
const DefaultSinkBuffer = 64

// OpenSink creates (truncating) a trace file at path and starts the
// writer goroutine. buffer <= 0 selects DefaultSinkBuffer.
func OpenSink(path string, buffer int) (*Sink, error) {
	if buffer <= 0 {
		buffer = DefaultSinkBuffer
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("replay: open trace: %w", err)
	}
	w, err := NewWriter(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("replay: write trace magic: %w", err)
	}
	s := &Sink{ch: make(chan Record, buffer), done: make(chan struct{}), f: f, w: w}
	go s.drain()
	return s, nil
}

func (s *Sink) drain() {
	defer close(s.done)
	for rec := range s.ch {
		if s.werr.Load() != nil {
			// The file is wedged; count the loss and keep draining so
			// producers never block.
			s.dropped.Add(1)
			continue
		}
		if err := s.w.WriteRecord(rec); err != nil {
			s.werr.Store(&err)
			s.dropped.Add(1)
			continue
		}
		s.written.Add(1)
	}
}

// Record offers one decision to the sink without blocking. The sink
// takes ownership of rec (callers must not retain aliases into
// rec.Draws or rec.Windows). Returns false when the ring was full and
// the record was dropped.
func (s *Sink) Record(rec Record) bool {
	select {
	case s.ch <- rec:
		return true
	default:
		s.dropped.Add(1)
		return false
	}
}

// Written returns the number of records durably framed to the file.
func (s *Sink) Written() uint64 { return s.written.Load() }

// Dropped returns the number of records lost to a full ring or a
// wedged file.
func (s *Sink) Dropped() uint64 { return s.dropped.Load() }

// Close flushes the ring, closes the file, and returns the first
// write error (if any). Safe to call once; Record after Close panics
// (callers stop producing first).
func (s *Sink) Close() error {
	var err error
	s.once.Do(func() {
		close(s.ch)
		<-s.done
		cerr := s.f.Close()
		if p := s.werr.Load(); p != nil {
			err = *p
		} else {
			err = cerr
		}
	})
	return err
}
