package replay

import (
	"testing"

	"shmd/internal/core"
	"shmd/internal/rng"
	"shmd/internal/volt"
)

// TestVerifyStochasticHMDDecision is the cross-layer contract: a
// decision made by a full Stochastic-HMD (regulator + injector) is
// packaged as a trace record and must verify bit-identically through
// the off-hardware replay path.
func TestVerifyStochasticHMDDecision(t *testing.T) {
	h := testModel(t)
	s, err := core.New(h, core.Options{ErrorRate: 0.3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	s.EnableDecisionTrace()
	r := rng.NewRand(41)
	for i := 0; i < 10; i++ {
		windows := synthWindows(r, 1+i%4)
		dec := s.DetectProgram(windows)
		rec := Record{
			Seed:       5,
			Rate:       s.ErrorRate(),
			DepthMV:    volt.DepthAtVoltage(s.SupplyVoltage()),
			Threshold:  h.Config().Threshold,
			Malware:    dec.Malware,
			Score:      dec.Score,
			Confidence: testConfidence(dec.Score, h.Config().Threshold, dec.Malware),
			Draws:      s.LastDraws(),
			Windows:    windows,
		}
		if err := Verify(h, rec, testConfidence); err != nil {
			t.Fatalf("decision %d: %v", i, err)
		}
	}

	// DetectProgramTraced must agree with the LastDraws capture path.
	windows := synthWindows(r, 3)
	dec, log := s.DetectProgramTraced(windows)
	rec := Record{
		Rate: s.ErrorRate(), DepthMV: 130, Threshold: h.Config().Threshold,
		Malware: dec.Malware, Score: dec.Score,
		Confidence: testConfidence(dec.Score, h.Config().Threshold, dec.Malware),
		Draws:      log, Windows: windows,
	}
	if err := Verify(h, rec, testConfidence); err != nil {
		t.Fatal(err)
	}
}
