package replay

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"

	"shmd/internal/faults"
	"shmd/internal/trace"
)

// fuzzSeedRecords are structurally diverse valid records for the
// corpus.
func fuzzSeedRecords() []Record {
	w := trace.WindowCounts{Taken: 3}
	w.Opcode[0] = 5
	w.Opcode[63] = 1
	w.Stride[7] = 2
	return []Record{
		{Rate: 0.1, DepthMV: 130, Threshold: 0.5, Score: 0.25, Confidence: 0.5,
			Draws: faults.DrawLog{InitialGap: -1}},
		{Seed: 1 << 60, Slot: 3, Gen: 9, Rate: 1, DepthMV: 260, Threshold: 0.5,
			Malware: true, Score: 0.9, Confidence: 0.8,
			Draws:   faults.DrawLog{InitialGap: 4, Gaps: []int64{0, 7, 1 << 40}, Bits: []uint8{8, 62, 33}},
			Windows: []trace.WindowCounts{w, {}}},
		{Rate: 0, DepthMV: 0, Threshold: 0.5, Unprotected: true, Score: 0.1,
			Confidence: 0.8, Draws: faults.DrawLog{InitialGap: -1},
			Windows: []trace.WindowCounts{w}},
		{Rate: 0.2, DepthMV: 130, Threshold: 0.5, Score: 0.6, Malware: true,
			Confidence: 0.2, Draws: faults.DrawLog{InitialGap: -1},
			Windows: []trace.WindowCounts{w}, Tenant: "acme-corp"},
		{Rate: 0.2, DepthMV: 130, Threshold: 0.5, Score: 0.6, Malware: true,
			Confidence: 0.2, Draws: faults.DrawLog{InitialGap: -1},
			Windows: []trace.WindowCounts{w}, Tenant: "acme-corp", ModelVersion: 3},
		{Rate: 0.3, DepthMV: 130, Threshold: 0.5, Score: 0.4,
			Confidence: 0.4, Draws: faults.DrawLog{InitialGap: -1},
			Windows: []trace.WindowCounts{w}, ModelVersion: 1<<32 - 1},
	}
}

// FuzzTraceDecode drives the payload decoder and the framed reader
// with arbitrary bytes: neither may panic, every failure must be the
// typed ErrCorrupt (or clean io.EOF at a record boundary), and any
// accepted payload must re-encode and re-decode to the same record.
func FuzzTraceDecode(f *testing.F) {
	for _, rec := range fuzzSeedRecords() {
		payload, err := EncodeRecord(nil, rec)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(payload)
		var file bytes.Buffer
		w, err := NewWriter(&file)
		if err != nil {
			f.Fatal(err)
		}
		if err := w.WriteRecord(rec); err != nil {
			f.Fatal(err)
		}
		f.Add(file.Bytes())
	}
	f.Add([]byte(Magic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Bare payload decode: success must round-trip bit-identically.
		if rec, err := DecodeRecord(data); err == nil {
			enc, err := EncodeRecord(nil, rec)
			if err != nil {
				t.Fatalf("accepted record failed to re-encode: %v", err)
			}
			again, err := DecodeRecord(enc)
			if err != nil {
				t.Fatalf("re-encoded record failed to decode: %v", err)
			}
			if !reflect.DeepEqual(rec, again) {
				t.Fatalf("round trip mismatch:\n first: %+v\nsecond: %+v", rec, again)
			}
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("decode error %v does not wrap ErrCorrupt", err)
		}

		// Framed reader over the same bytes: bounded iteration, typed
		// errors only.
		rd, err := NewReader(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("reader error %v does not wrap ErrCorrupt", err)
			}
			return
		}
		for i := 0; i < 1000; i++ {
			_, err := rd.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("Next error %v does not wrap ErrCorrupt", err)
				}
				return
			}
		}
	})
}
