// Package replay defines the versioned binary decision-trace format
// and the tooling to re-execute recorded decisions off-hardware.
//
// A trace file is the magic "SHMDTRC1" followed by length-framed
// records, each protected by a CRC32-IEEE trailer — the shared framing
// discipline of internal/wire (also used by the calibration journal),
// applied per record so a torn tail loses at most the last record. Every
// record carries the full provenance of one decision: seed lineage
// (root-derived stream seed, slot, generation), operating point
// (target rate, undervolt depth), the input feature windows, the
// stochastic draw log (initial gap, geometric gaps, fault bits), and
// the verdict (decision, score, confidence, protection flag). That is
// exactly enough to reproduce the verdict bit-identically through a
// replaying fault unit (faults.Replayer) with no hardware, no RNG,
// and no voltage plane — see Verify.
package replay

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"shmd/internal/faults"
	"shmd/internal/isa"
	"shmd/internal/trace"
	"shmd/internal/wire"
)

// Magic identifies (and versions) the trace format; an incompatible
// revision gets a new trailing digit.
const Magic = "SHMDTRC1"

// ErrCorrupt reports a trace that failed structural validation —
// framing, checksum, or field plausibility. All decode failures wrap
// it (except clean io.EOF at a record boundary).
var ErrCorrupt = errors.New("replay: corrupt trace")

const (
	// maxPayload bounds one record's encoded size (framing guard; a
	// max-size batch decision with dense fault logs stays well under).
	maxPayload = 16 << 20
	// maxWindows bounds the per-record window count on decode.
	maxWindows = 1 << 20
	// maxCount bounds any decoded per-window counter (mirrors the
	// request decoder's bound: counts always fit an int32).
	maxCount = 1 << 30
	// recordFlags
	flagMalware     = 1 << 0
	flagUnprotected = 1 << 1
)

// Record is one traced decision.
type Record struct {
	// Seed is the decision stream's derived seed (for a served
	// decision, the slot's fault-stream seed).
	Seed uint64
	// Slot and Gen identify the serving slot and its respawn
	// generation (0/0 outside the serving path).
	Slot int
	Gen  int
	// Rate is the target per-multiplication error rate; DepthMV the
	// session undervolt depth. Metadata for audit — replay consumes
	// the recorded draws, not the law they were drawn from.
	Rate    float64
	DepthMV float64
	// Threshold is the decision threshold of the model that scored
	// this record; replay refuses a model whose threshold differs.
	Threshold float64
	// Malware / Unprotected / Score / Confidence are the verdict.
	// Unprotected marks a degraded (exact-unit) decision; its draw log
	// is empty by construction.
	Malware     bool
	Unprotected bool
	Score       float64
	Confidence  float64
	// Draws is the stochastic draw log of the final scoring pass.
	Draws faults.DrawLog
	// Windows is the scored input trace.
	Windows []trace.WindowCounts
	// Tenant is the accounting identity the decision was served under
	// ("" outside multi-tenant deployments). Encoded as an appended
	// tail after the windows, omitted when empty, so traces written
	// before the field existed decode unchanged.
	Tenant string
	// ModelVersion is the registry version of the model that scored
	// this record (0 when serving the compiled-in model outside a
	// registry deployment). Encoded as a second appended tail — a
	// zero-length tag, impossible for a tenant tail, marks it — and
	// omitted when 0, so pre-registry traces decode unchanged and a
	// mixed-version rollout window can be audited per version.
	ModelVersion uint32
}

// maxTenantLen bounds the tenant tail (mirrors the wire tag bound).
const maxTenantLen = 255

// corrupt wraps a decode failure with ErrCorrupt.
func corrupt(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// appendFloat encodes a float bit-exactly (big-endian IEEE bits).
func appendFloat(b []byte, f float64) []byte {
	return binary.BigEndian.AppendUint64(b, math.Float64bits(f))
}

// EncodeRecord appends r's payload (unframed) to b. It validates the
// record so a sink never writes a payload its own decoder rejects.
func EncodeRecord(b []byte, r Record) ([]byte, error) {
	if r.Slot < 0 || r.Gen < 0 {
		return nil, fmt.Errorf("replay: negative slot %d / gen %d", r.Slot, r.Gen)
	}
	if err := validateScalars(r); err != nil {
		return nil, err
	}
	if len(r.Windows) > maxWindows {
		return nil, fmt.Errorf("replay: %d windows exceeds %d", len(r.Windows), maxWindows)
	}
	b = binary.AppendUvarint(b, r.Seed)
	b = binary.AppendUvarint(b, uint64(r.Slot))
	b = binary.AppendUvarint(b, uint64(r.Gen))
	b = appendFloat(b, r.Rate)
	b = appendFloat(b, r.DepthMV)
	b = appendFloat(b, r.Threshold)
	b = appendFloat(b, r.Score)
	b = appendFloat(b, r.Confidence)
	var flags byte
	if r.Malware {
		flags |= flagMalware
	}
	if r.Unprotected {
		flags |= flagUnprotected
	}
	b = append(b, flags)
	if r.Draws.InitialGap < -1 {
		return nil, fmt.Errorf("replay: initial gap %d < -1", r.Draws.InitialGap)
	}
	if len(r.Draws.Bits) > len(r.Draws.Gaps)+1 {
		return nil, fmt.Errorf("replay: %d fault bits for %d gaps", len(r.Draws.Bits), len(r.Draws.Gaps))
	}
	b = binary.AppendVarint(b, r.Draws.InitialGap)
	b = binary.AppendUvarint(b, uint64(len(r.Draws.Gaps)))
	for _, g := range r.Draws.Gaps {
		if g < 0 {
			return nil, fmt.Errorf("replay: negative gap %d", g)
		}
		b = binary.AppendUvarint(b, uint64(g))
	}
	b = binary.AppendUvarint(b, uint64(len(r.Draws.Bits)))
	for _, bit := range r.Draws.Bits {
		if bit < faults.MinFaultBit || bit > faults.MaxFaultBit {
			return nil, fmt.Errorf("replay: fault bit %d outside [%d,%d]", bit, faults.MinFaultBit, faults.MaxFaultBit)
		}
		b = append(b, bit)
	}
	b = binary.AppendUvarint(b, uint64(len(r.Windows)))
	for wi, w := range r.Windows {
		for _, n := range w.Opcode {
			if n < 0 || n > maxCount {
				return nil, fmt.Errorf("replay: window %d opcode count %d out of range", wi, n)
			}
			b = binary.AppendUvarint(b, uint64(n))
		}
		if w.Taken < 0 || w.Taken > maxCount {
			return nil, fmt.Errorf("replay: window %d taken %d out of range", wi, w.Taken)
		}
		b = binary.AppendUvarint(b, uint64(w.Taken))
		for _, n := range w.Stride {
			if n < 0 || n > maxCount {
				return nil, fmt.Errorf("replay: window %d stride count %d out of range", wi, n)
			}
			b = binary.AppendUvarint(b, uint64(n))
		}
	}
	// Tenant tail: appended after every fixed-position field and
	// omitted when empty, so old decoders (which stop at the windows)
	// and new decoders (which treat leftover bytes as the tail) agree
	// on every record that predates the field.
	if r.Tenant != "" {
		if len(r.Tenant) > maxTenantLen {
			return nil, fmt.Errorf("replay: tenant %d bytes exceeds %d", len(r.Tenant), maxTenantLen)
		}
		b = binary.AppendUvarint(b, uint64(len(r.Tenant)))
		b = append(b, r.Tenant...)
	}
	// Model-version tail: a zero tag (a length no tenant tail can
	// carry) marks it, so decoders can tell the two tails apart with
	// either, both, or neither present.
	if r.ModelVersion != 0 {
		b = append(b, 0)
		b = binary.AppendUvarint(b, uint64(r.ModelVersion))
	}
	if len(b) > maxPayload {
		return nil, fmt.Errorf("replay: record payload %d bytes exceeds %d", len(b), maxPayload)
	}
	return b, nil
}

// validateScalars checks the float fields are plausible (shared by
// encode and decode so corrupt traces are rejected symmetrically).
func validateScalars(r Record) error {
	if r.Rate < 0 || r.Rate > 1 || math.IsNaN(r.Rate) {
		return fmt.Errorf("replay: rate %v outside [0,1]", r.Rate)
	}
	if r.DepthMV < 0 || r.DepthMV >= 10000 || math.IsNaN(r.DepthMV) {
		return fmt.Errorf("replay: depth %v mV implausible", r.DepthMV)
	}
	if !(r.Threshold > 0 && r.Threshold < 1) {
		return fmt.Errorf("replay: threshold %v outside (0,1)", r.Threshold)
	}
	if r.Score < 0 || r.Score > 1 || math.IsNaN(r.Score) {
		return fmt.Errorf("replay: score %v outside [0,1]", r.Score)
	}
	if r.Confidence < 0 || r.Confidence > 1 || math.IsNaN(r.Confidence) {
		return fmt.Errorf("replay: confidence %v outside [0,1]", r.Confidence)
	}
	return nil
}

// payloadReader decodes varints off a payload slice with positional
// error reporting.
type payloadReader struct {
	b   []byte
	off int
}

func (p *payloadReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(p.b[p.off:])
	if n <= 0 {
		return 0, corrupt("truncated uvarint at offset %d", p.off)
	}
	p.off += n
	return v, nil
}

func (p *payloadReader) varint() (int64, error) {
	v, n := binary.Varint(p.b[p.off:])
	if n <= 0 {
		return 0, corrupt("truncated varint at offset %d", p.off)
	}
	p.off += n
	return v, nil
}

func (p *payloadReader) float() (float64, error) {
	if p.off+8 > len(p.b) {
		return 0, corrupt("truncated float at offset %d", p.off)
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(p.b[p.off:]))
	p.off += 8
	return v, nil
}

func (p *payloadReader) byte() (byte, error) {
	if p.off >= len(p.b) {
		return 0, corrupt("truncated byte at offset %d", p.off)
	}
	v := p.b[p.off]
	p.off++
	return v, nil
}

// count reads a uvarint length prefix and bounds it both by limit and
// by the bytes remaining (each element costs at least minBytes), so a
// corrupt length can never trigger a huge allocation.
func (p *payloadReader) count(limit uint64, minBytes int, what string) (int, error) {
	v, err := p.uvarint()
	if err != nil {
		return 0, err
	}
	if v > limit {
		return 0, corrupt("%s count %d exceeds %d", what, v, limit)
	}
	if remaining := len(p.b) - p.off; v > uint64(remaining/minBytes) {
		return 0, corrupt("%s count %d exceeds remaining payload", what, v)
	}
	return int(v), nil
}

// DecodeRecord parses one record payload, validating every field; any
// failure wraps ErrCorrupt.
func DecodeRecord(payload []byte) (Record, error) {
	var r Record
	p := &payloadReader{b: payload}
	var err error
	if r.Seed, err = p.uvarint(); err != nil {
		return r, err
	}
	slot, err := p.uvarint()
	if err != nil {
		return r, err
	}
	gen, err := p.uvarint()
	if err != nil {
		return r, err
	}
	if slot > math.MaxInt32 || gen > math.MaxInt32 {
		return r, corrupt("slot %d / gen %d implausible", slot, gen)
	}
	r.Slot, r.Gen = int(slot), int(gen)
	for _, dst := range []*float64{&r.Rate, &r.DepthMV, &r.Threshold, &r.Score, &r.Confidence} {
		if *dst, err = p.float(); err != nil {
			return r, err
		}
	}
	flags, err := p.byte()
	if err != nil {
		return r, err
	}
	if flags&^(flagMalware|flagUnprotected) != 0 {
		return r, corrupt("unknown flags %#x", flags)
	}
	r.Malware = flags&flagMalware != 0
	r.Unprotected = flags&flagUnprotected != 0
	if err := validateScalars(r); err != nil {
		return r, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if r.Draws.InitialGap, err = p.varint(); err != nil {
		return r, err
	}
	if r.Draws.InitialGap < -1 {
		return r, corrupt("initial gap %d < -1", r.Draws.InitialGap)
	}
	nGaps, err := p.count(maxPayload, 1, "gap")
	if err != nil {
		return r, err
	}
	if nGaps > 0 {
		r.Draws.Gaps = make([]int64, nGaps)
		for i := range r.Draws.Gaps {
			g, err := p.uvarint()
			if err != nil {
				return r, err
			}
			if g > math.MaxInt64 {
				return r, corrupt("gap %d overflows int64", g)
			}
			r.Draws.Gaps[i] = int64(g)
		}
	}
	nBits, err := p.count(maxPayload, 1, "bit")
	if err != nil {
		return r, err
	}
	if nBits > nGaps+1 {
		return r, corrupt("%d fault bits for %d gaps", nBits, nGaps)
	}
	if nBits > 0 {
		r.Draws.Bits = make([]uint8, nBits)
		for i := range r.Draws.Bits {
			bit, err := p.byte()
			if err != nil {
				return r, err
			}
			if bit < faults.MinFaultBit || bit > faults.MaxFaultBit {
				return r, corrupt("fault bit %d outside [%d,%d]", bit, faults.MinFaultBit, faults.MaxFaultBit)
			}
			r.Draws.Bits[i] = bit
		}
	}
	// Each window costs at least NumOpcodes+1+StrideBuckets varint
	// bytes, so the remaining-payload bound is tight enough.
	nWindows, err := p.count(maxWindows, isa.NumOpcodes+1+trace.StrideBuckets, "window")
	if err != nil {
		return r, err
	}
	if nWindows > 0 {
		r.Windows = make([]trace.WindowCounts, nWindows)
		for wi := range r.Windows {
			w := &r.Windows[wi]
			for i := range w.Opcode {
				n, err := p.uvarint()
				if err != nil {
					return r, err
				}
				if n > maxCount {
					return r, corrupt("window %d opcode count %d out of range", wi, n)
				}
				w.Opcode[i] = int(n)
			}
			n, err := p.uvarint()
			if err != nil {
				return r, err
			}
			if n > maxCount {
				return r, corrupt("window %d taken %d out of range", wi, n)
			}
			w.Taken = int(n)
			for i := range w.Stride {
				n, err := p.uvarint()
				if err != nil {
					return r, err
				}
				if n > maxCount {
					return r, corrupt("window %d stride count %d out of range", wi, n)
				}
				w.Stride[i] = int(n)
			}
		}
	}
	// Optional tails: records written before either field existed end
	// exactly at the windows. A nonzero tag is a tenant tail (an empty
	// tenant is never emitted); the zero tag marks the model-version
	// tail, which always comes last.
	if p.off != len(p.b) {
		n, err := p.count(maxTenantLen, 1, "tenant")
		if err != nil {
			return r, err
		}
		if n > 0 {
			if p.off+n > len(p.b) {
				return r, corrupt("truncated tenant tail at offset %d", p.off)
			}
			r.Tenant = string(p.b[p.off : p.off+n])
			p.off += n
			if p.off != len(p.b) {
				tag, err := p.uvarint()
				if err != nil {
					return r, err
				}
				if tag != 0 {
					return r, corrupt("unknown tail tag %d at offset %d", tag, p.off)
				}
				if err := p.modelVersionTail(&r); err != nil {
					return r, err
				}
			}
		} else if err := p.modelVersionTail(&r); err != nil {
			return r, err
		}
	}
	if p.off != len(p.b) {
		return r, corrupt("%d trailing payload bytes", len(p.b)-p.off)
	}
	return r, nil
}

// modelVersionTail decodes the version value following a zero tail
// tag. A zero version is never emitted (the field is omitted), so it
// decodes as corrupt rather than ambiguous.
func (p *payloadReader) modelVersionTail(r *Record) error {
	v, err := p.uvarint()
	if err != nil {
		return err
	}
	if v == 0 || v > math.MaxUint32 {
		return corrupt("model version %d out of range", v)
	}
	r.ModelVersion = uint32(v)
	return nil
}

// Writer streams framed records to w through the shared wire frame
// codec. It writes the file magic on construction and one
// length+payload+CRC frame per record.
type Writer struct {
	fw  *wire.FrameWriter
	buf []byte
}

// NewWriter writes the trace magic and returns a record writer.
func NewWriter(w io.Writer) (*Writer, error) {
	fw, err := wire.NewFrameWriter(w, Magic)
	if err != nil {
		return nil, err
	}
	return &Writer{fw: fw}, nil
}

// WriteRecord frames and writes one record.
func (tw *Writer) WriteRecord(r Record) error {
	payload, err := EncodeRecord(tw.buf[:0], r)
	if err != nil {
		return err
	}
	tw.buf = payload // keep the grown buffer for reuse
	return tw.fw.WriteFrame(payload)
}

// Reader streams records back out of a trace. Next returns io.EOF at
// a clean end of file; every other failure wraps ErrCorrupt.
type Reader struct {
	fr *wire.FrameReader
}

// NewReader checks the trace magic and returns a record reader.
// Framing failures are re-wrapped so the trace format's own ErrCorrupt
// sentinel keeps working for callers.
func NewReader(r io.Reader) (*Reader, error) {
	fr, err := wire.NewFrameReader(r, Magic, maxPayload)
	if err != nil {
		return nil, corrupt("%v", err)
	}
	return &Reader{fr: fr}, nil
}

// Next reads one record. io.EOF means the trace ended cleanly at a
// record boundary; a torn or damaged record wraps ErrCorrupt.
func (tr *Reader) Next() (Record, error) {
	payload, err := tr.fr.Next()
	if err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		return Record{}, corrupt("%v", err)
	}
	return DecodeRecord(payload)
}
