// Package stats provides the descriptive statistics, histogramming and
// classification metrics shared by every experiment in the Stochastic-HMD
// reproduction, plus the approximate-entropy test the paper uses in
// Section II to validate that undervolting-induced faults are stochastic.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by reducers that need at least one sample.
var ErrEmpty = errors.New("stats: empty sample set")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs (division by n),
// or 0 for fewer than two samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// SampleVariance returns the unbiased sample variance (division by n-1),
// or 0 for fewer than two samples.
func SampleVariance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	return Variance(xs) * float64(len(xs)) / float64(len(xs)-1)
}

// SampleStdDev returns the square root of the unbiased sample variance.
func SampleStdDev(xs []float64) float64 {
	return math.Sqrt(SampleVariance(xs))
}

// MinMax returns the minimum and maximum of xs.
// It returns ErrEmpty when xs is empty.
func MinMax(xs []float64) (min, max float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max, nil
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It returns ErrEmpty when xs
// is empty and an error when q is outside [0, 1].
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("stats: quantile %v outside [0,1]", q)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Median returns the 0.5-quantile of xs.
func Median(xs []float64) (float64, error) {
	return Quantile(xs, 0.5)
}

// Summary bundles the usual descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64 // population standard deviation
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary of xs. It returns ErrEmpty when xs is empty.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	min, max, _ := MinMax(xs)
	med, _ := Median(xs)
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    min,
		Max:    max,
		Median: med,
	}, nil
}

// String renders the summary in a compact single-line form.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4f std=%.4f min=%.4f med=%.4f max=%.4f",
		s.N, s.Mean, s.StdDev, s.Min, s.Median, s.Max)
}
