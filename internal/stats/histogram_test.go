package stats

import (
	"math"
	"strings"
	"testing"
)

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 1, 10)
	h.Add(0.05) // bin 0
	h.Add(0.95) // bin 9
	h.Add(0.55) // bin 5
	h.Add(0.55) // bin 5
	if h.Counts[0] != 1 || h.Counts[9] != 1 || h.Counts[5] != 2 {
		t.Errorf("counts = %v", h.Counts)
	}
	if h.Total() != 4 {
		t.Errorf("Total = %d", h.Total())
	}
}

func TestHistogramClamping(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	h.Add(-3)  // clamps into bin 0
	h.Add(1.0) // exactly hi clamps into last bin
	h.Add(42)  // clamps into last bin
	if h.Counts[0] != 1 {
		t.Errorf("low clamp: counts = %v", h.Counts)
	}
	if h.Counts[3] != 2 {
		t.Errorf("high clamp: counts = %v", h.Counts)
	}
}

func TestHistogramIgnoresNaN(t *testing.T) {
	h := NewHistogram(0, 1, 2)
	h.Add(math.NaN())
	if h.Total() != 0 {
		t.Errorf("NaN must not be recorded, total = %d", h.Total())
	}
}

func TestHistogramDensity(t *testing.T) {
	h := NewHistogram(0, 1, 2)
	if d := h.Density(); d[0] != 0 || d[1] != 0 {
		t.Errorf("empty density = %v", d)
	}
	h.AddAll([]float64{0.1, 0.2, 0.8, 0.9})
	d := h.Density()
	if !almostEqual(d[0], 0.5, 1e-12) || !almostEqual(d[1], 0.5, 1e-12) {
		t.Errorf("density = %v", d)
	}
	sum := 0.0
	for _, v := range d {
		sum += v
	}
	if !almostEqual(sum, 1, 1e-12) {
		t.Errorf("density sums to %v", sum)
	}
}

func TestHistogramBinCenter(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	if got := h.BinCenter(0); !almostEqual(got, 1, 1e-12) {
		t.Errorf("BinCenter(0) = %v", got)
	}
	if got := h.BinCenter(4); !almostEqual(got, 9, 1e-12) {
		t.Errorf("BinCenter(4) = %v", got)
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram(0, 1, 3)
	h.AddAll([]float64{0.1, 0.1, 0.9})
	out := h.Render(10)
	if !strings.Contains(out, "#") {
		t.Errorf("Render produced no bars:\n%s", out)
	}
	if lines := strings.Count(out, "\n"); lines != 3 {
		t.Errorf("Render produced %d lines, want 3", lines)
	}
	// Degenerate width falls back to a default rather than panicking.
	if out := h.Render(0); out == "" {
		t.Error("Render(0) should still produce output")
	}
}

func TestHistogramPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("zero bins", func() { NewHistogram(0, 1, 0) })
	mustPanic("inverted range", func() { NewHistogram(1, 0, 4) })
	mustPanic("NaN bound", func() { NewHistogram(math.NaN(), 1, 4) })
}
