package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-width binning of float64 samples over [Lo, Hi).
// Samples outside the range are clamped into the first/last bin so that
// confidence scores that saturate at exactly 1.0 still register.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram creates a histogram with bins equal-width bins over [lo, hi).
// It panics if bins < 1 or hi <= lo, which are programming errors.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins < 1 {
		panic(fmt.Sprintf("stats: histogram needs >=1 bin, got %d", bins))
	}
	if hi <= lo || math.IsNaN(lo) || math.IsNaN(hi) {
		panic(fmt.Sprintf("stats: invalid histogram range [%v,%v)", lo, hi))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	if math.IsNaN(x) {
		return
	}
	idx := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.Counts) {
		idx = len(h.Counts) - 1
	}
	h.Counts[idx]++
	h.total++
}

// AddAll records every sample in xs.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

// Total returns the number of samples recorded.
func (h *Histogram) Total() int { return h.total }

// Density returns the fraction of samples in each bin. An empty
// histogram yields all-zero densities.
func (h *Histogram) Density() []float64 {
	out := make([]float64, len(h.Counts))
	if h.total == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(h.total)
	}
	return out
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// Render draws a simple fixed-width ASCII bar chart of the histogram,
// used by the CLI tools to show confidence distributions (Fig 2b).
func (h *Histogram) Render(width int) string {
	if width < 1 {
		width = 40
	}
	maxCount := 0
	for _, c := range h.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	var b strings.Builder
	for i, c := range h.Counts {
		bar := 0
		if maxCount > 0 {
			bar = c * width / maxCount
		}
		fmt.Fprintf(&b, "%8.3f | %-*s %d\n", h.BinCenter(i), width, strings.Repeat("#", bar), c)
	}
	return b.String()
}
