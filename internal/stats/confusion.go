package stats

import "fmt"

// Confusion is a binary-classification confusion matrix for the
// malware-detection setting. The positive class is "malware", matching
// the paper's FPR/FNR definitions:
//
//	FPR = benign programs flagged as malware / all benign programs
//	FNR = malware programs labelled benign  / all malware programs
type Confusion struct {
	TP, TN, FP, FN int
}

// Record adds one prediction. predicted/actual are true for malware.
func (c *Confusion) Record(predicted, actual bool) {
	switch {
	case predicted && actual:
		c.TP++
	case predicted && !actual:
		c.FP++
	case !predicted && actual:
		c.FN++
	default:
		c.TN++
	}
}

// Merge folds other into c.
func (c *Confusion) Merge(other Confusion) {
	c.TP += other.TP
	c.TN += other.TN
	c.FP += other.FP
	c.FN += other.FN
}

// Total returns the number of recorded predictions.
func (c Confusion) Total() int { return c.TP + c.TN + c.FP + c.FN }

// Accuracy returns the fraction of correct predictions, 0 when empty.
func (c Confusion) Accuracy() float64 {
	n := c.Total()
	if n == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(n)
}

// FPR returns the false-positive rate, 0 when there are no negatives.
func (c Confusion) FPR() float64 {
	neg := c.FP + c.TN
	if neg == 0 {
		return 0
	}
	return float64(c.FP) / float64(neg)
}

// FNR returns the false-negative rate, 0 when there are no positives.
func (c Confusion) FNR() float64 {
	pos := c.TP + c.FN
	if pos == 0 {
		return 0
	}
	return float64(c.FN) / float64(pos)
}

// TPR returns the true-positive rate (malware detection rate).
func (c Confusion) TPR() float64 {
	pos := c.TP + c.FN
	if pos == 0 {
		return 0
	}
	return float64(c.TP) / float64(pos)
}

// TNR returns the true-negative rate.
func (c Confusion) TNR() float64 {
	neg := c.FP + c.TN
	if neg == 0 {
		return 0
	}
	return float64(c.TN) / float64(neg)
}

// Precision returns TP/(TP+FP), 0 when nothing was flagged.
func (c Confusion) Precision() float64 {
	flagged := c.TP + c.FP
	if flagged == 0 {
		return 0
	}
	return float64(c.TP) / float64(flagged)
}

// F1 returns the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.TPR()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// String renders the matrix and headline rates on one line.
func (c Confusion) String() string {
	return fmt.Sprintf("TP=%d TN=%d FP=%d FN=%d acc=%.4f fpr=%.4f fnr=%.4f",
		c.TP, c.TN, c.FP, c.FN, c.Accuracy(), c.FPR(), c.FNR())
}
