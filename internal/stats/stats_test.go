package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanBasic(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{4.5}, 4.5},
		{"pair", []float64{1, 3}, 2},
		{"negatives", []float64{-2, -4, -6}, -4},
		{"mixed", []float64{-1, 0, 1}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Mean(tc.in); !almostEqual(got, tc.want, 1e-12) {
				t.Errorf("Mean(%v) = %v, want %v", tc.in, got, tc.want)
			}
		})
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEqual(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if got := Variance([]float64{3}); got != 0 {
		t.Errorf("Variance of singleton = %v, want 0", got)
	}
}

func TestSampleVariance(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	// population variance = 1.25, sample variance = 5/3.
	if got := SampleVariance(xs); !almostEqual(got, 5.0/3.0, 1e-12) {
		t.Errorf("SampleVariance = %v, want %v", got, 5.0/3.0)
	}
	if got := SampleStdDev(xs); !almostEqual(got, math.Sqrt(5.0/3.0), 1e-12) {
		t.Errorf("SampleStdDev = %v", got)
	}
}

func TestMinMax(t *testing.T) {
	if _, _, err := MinMax(nil); err != ErrEmpty {
		t.Fatalf("MinMax(nil) err = %v, want ErrEmpty", err)
	}
	min, max, err := MinMax([]float64{3, -1, 7, 2})
	if err != nil {
		t.Fatal(err)
	}
	if min != -1 || max != 7 {
		t.Errorf("MinMax = (%v, %v), want (-1, 7)", min, max)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	for _, tc := range []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	} {
		got, err := Quantile(xs, tc.q)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(got, tc.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if _, err := Quantile(xs, -0.1); err == nil {
		t.Error("Quantile(-0.1) should error")
	}
	if _, err := Quantile(xs, 1.1); err == nil {
		t.Error("Quantile(1.1) should error")
	}
	if _, err := Quantile(nil, 0.5); err != ErrEmpty {
		t.Errorf("Quantile(nil) err = %v, want ErrEmpty", err)
	}
	// Interpolation between order statistics.
	got, _ := Quantile([]float64{0, 10}, 0.3)
	if !almostEqual(got, 3, 1e-12) {
		t.Errorf("interpolated quantile = %v, want 3", got)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 4}
	if _, err := Quantile(xs, 0.5); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 4 {
		t.Errorf("Quantile mutated its input: %v", xs)
	}
}

func TestSummarize(t *testing.T) {
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Fatalf("Summarize(nil) err = %v, want ErrEmpty", err)
	}
	s, err := Summarize([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 3 || s.Mean != 2 || s.Min != 1 || s.Max != 3 || s.Median != 2 {
		t.Errorf("Summary = %+v", s)
	}
	if s.String() == "" {
		t.Error("Summary.String should be non-empty")
	}
}

// Property: mean is translation-equivariant and within [min, max].
func TestMeanProperties(t *testing.T) {
	f := func(raw []int16, shiftRaw int8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		shift := float64(shiftRaw)
		shifted := make([]float64, len(xs))
		for i := range xs {
			shifted[i] = xs[i] + shift
		}
		m := Mean(xs)
		min, max, _ := MinMax(xs)
		if m < min-1e-9 || m > max+1e-9 {
			return false
		}
		return almostEqual(Mean(shifted), m+shift, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: variance is translation-invariant and non-negative.
func TestVarianceProperties(t *testing.T) {
	f := func(raw []int16, shiftRaw int8) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, len(raw))
		shifted := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
			shifted[i] = float64(v) + float64(shiftRaw)
		}
		v := Variance(xs)
		if v < 0 {
			return false
		}
		return almostEqual(Variance(shifted), v, 1e-5*(1+v))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: quantiles are monotone in q.
func TestQuantileMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.05 {
		v, err := Quantile(xs, q)
		if err != nil {
			t.Fatal(err)
		}
		if v < prev-1e-12 {
			t.Fatalf("quantile not monotone at q=%v: %v < %v", q, v, prev)
		}
		prev = v
	}
}
