package stats

import (
	"fmt"
	"math"
	"sort"
)

// Goodness-of-fit machinery for the conformance suite: chi-square and
// Kolmogorov-Smirnov tests with closed-form p-values, built on the
// regularized incomplete gamma function. No external dependencies —
// the series/continued-fraction evaluation below is the standard
// Lentz/series split around x = a+1.

// GammaQ returns the regularized upper incomplete gamma function
// Q(a, x) = Γ(a, x)/Γ(a) for a > 0, x >= 0. The chi-square survival
// function is Q(df/2, stat/2).
func GammaQ(a, x float64) float64 {
	if a <= 0 || x < 0 || math.IsNaN(a) || math.IsNaN(x) {
		return math.NaN()
	}
	if x == 0 {
		return 1
	}
	if x < a+1 {
		return 1 - gammaPSeries(a, x)
	}
	return gammaQContinued(a, x)
}

// GammaP returns the regularized lower incomplete gamma function
// P(a, x) = 1 - Q(a, x).
func GammaP(a, x float64) float64 {
	q := GammaQ(a, x)
	if math.IsNaN(q) {
		return q
	}
	return 1 - q
}

const (
	gammaEps     = 1e-14
	gammaMaxIter = 1000
	gammaFPMin   = 1e-300
)

// gammaPSeries evaluates P(a, x) by its power series, convergent and
// numerically stable for x < a+1.
func gammaPSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < gammaMaxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*gammaEps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// gammaQContinued evaluates Q(a, x) by its continued fraction using
// modified Lentz iteration, convergent for x >= a+1.
func gammaQContinued(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / gammaFPMin
	d := 1 / b
	h := d
	for i := 1; i <= gammaMaxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < gammaFPMin {
			d = gammaFPMin
		}
		c = b + an/c
		if math.Abs(c) < gammaFPMin {
			c = gammaFPMin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < gammaEps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// ChiSquareP returns the upper-tail p-value of a chi-square statistic
// with df degrees of freedom: P(X² >= stat).
func ChiSquareP(stat float64, df int) float64 {
	if df < 1 || stat < 0 || math.IsNaN(stat) {
		return math.NaN()
	}
	return GammaQ(float64(df)/2, stat/2)
}

// ChiSquareGOF runs Pearson's chi-square goodness-of-fit test of
// observed counts against expected counts (same length, expected all
// positive) and returns the statistic and its upper-tail p-value with
// len-1 degrees of freedom. Callers estimating parameters from the
// data should subtract further degrees themselves via ChiSquareP.
func ChiSquareGOF(observed, expected []float64) (stat, p float64, err error) {
	if len(observed) != len(expected) {
		return 0, 0, fmt.Errorf("stats: %d observed bins vs %d expected", len(observed), len(expected))
	}
	if len(observed) < 2 {
		return 0, 0, fmt.Errorf("stats: chi-square needs at least 2 bins, got %d", len(observed))
	}
	for i, e := range expected {
		if e <= 0 || math.IsNaN(e) {
			return 0, 0, fmt.Errorf("stats: expected count %v in bin %d (pool bins first)", e, i)
		}
		d := observed[i] - e
		stat += d * d / e
	}
	return stat, ChiSquareP(stat, len(observed)-1), nil
}

// PoolBins merges adjacent bins (left to right) until every pooled bin
// has expected count >= minExpected, preserving totals. The classical
// validity condition for the chi-square approximation is expected >= 5
// per bin. A trailing underweight bin is folded back into its
// predecessor. Returns the pooled observed and expected slices.
func PoolBins(observed, expected []float64, minExpected float64) (obs, exp []float64) {
	var co, ce float64
	for i := range expected {
		co += observed[i]
		ce += expected[i]
		if ce >= minExpected {
			obs = append(obs, co)
			exp = append(exp, ce)
			co, ce = 0, 0
		}
	}
	if ce > 0 {
		if len(exp) > 0 {
			obs[len(obs)-1] += co
			exp[len(exp)-1] += ce
		} else {
			obs = append(obs, co)
			exp = append(exp, ce)
		}
	}
	return obs, exp
}

// KSOneSample computes the one-sample Kolmogorov-Smirnov statistic of
// samples against the CDF cdf, and its asymptotic upper-tail p-value.
// For discrete distributions the returned p-value is conservative
// (the true p-value is larger), so a rejection at level alpha keeps
// its false-alarm bound.
func KSOneSample(samples []float64, cdf func(x float64) float64) (d, p float64, err error) {
	n := len(samples)
	if n == 0 {
		return 0, 0, ErrEmpty
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	for i, x := range sorted {
		f := cdf(x)
		if hi := float64(i+1)/float64(n) - f; hi > d {
			d = hi
		}
		if lo := f - float64(i)/float64(n); lo > d {
			d = lo
		}
	}
	return d, KolmogorovP(d, n), nil
}

// KolmogorovP returns the asymptotic Kolmogorov survival probability
// Q_KS for statistic d at sample size n, using the Stephens small-n
// correction: lambda = (sqrt(n) + 0.12 + 0.11/sqrt(n)) * d.
func KolmogorovP(d float64, n int) float64 {
	if d <= 0 || n < 1 {
		return 1
	}
	rn := math.Sqrt(float64(n))
	lambda := (rn + 0.12 + 0.11/rn) * d
	x := -2 * lambda * lambda
	sum, sign, prev := 0.0, 1.0, math.Inf(1)
	for j := 1; j <= 100; j++ {
		term := sign * math.Exp(x*float64(j)*float64(j))
		sum += term
		if math.Abs(term) < 1e-12*math.Abs(sum) || math.Abs(term) >= prev {
			break
		}
		prev = math.Abs(term)
		sign = -sign
	}
	p := 2 * sum
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}
