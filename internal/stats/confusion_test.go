package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestConfusionRecord(t *testing.T) {
	var c Confusion
	c.Record(true, true)   // TP
	c.Record(true, false)  // FP
	c.Record(false, true)  // FN
	c.Record(false, false) // TN
	c.Record(true, true)   // TP

	if c.TP != 2 || c.FP != 1 || c.FN != 1 || c.TN != 1 {
		t.Fatalf("confusion = %+v", c)
	}
	if c.Total() != 5 {
		t.Errorf("Total = %d, want 5", c.Total())
	}
	if got := c.Accuracy(); !almostEqual(got, 3.0/5.0, 1e-12) {
		t.Errorf("Accuracy = %v", got)
	}
	if got := c.FPR(); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("FPR = %v", got)
	}
	if got := c.FNR(); !almostEqual(got, 1.0/3.0, 1e-12) {
		t.Errorf("FNR = %v", got)
	}
	if got := c.TPR(); !almostEqual(got, 2.0/3.0, 1e-12) {
		t.Errorf("TPR = %v", got)
	}
	if got := c.TNR(); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("TNR = %v", got)
	}
	if got := c.Precision(); !almostEqual(got, 2.0/3.0, 1e-12) {
		t.Errorf("Precision = %v", got)
	}
	if got := c.F1(); !almostEqual(got, 2.0/3.0, 1e-12) {
		t.Errorf("F1 = %v", got)
	}
}

func TestConfusionEmptyRates(t *testing.T) {
	var c Confusion
	if c.Accuracy() != 0 || c.FPR() != 0 || c.FNR() != 0 ||
		c.TPR() != 0 || c.TNR() != 0 || c.Precision() != 0 || c.F1() != 0 {
		t.Error("all rates of an empty confusion matrix must be 0")
	}
}

func TestConfusionMerge(t *testing.T) {
	a := Confusion{TP: 1, TN: 2, FP: 3, FN: 4}
	b := Confusion{TP: 10, TN: 20, FP: 30, FN: 40}
	a.Merge(b)
	want := Confusion{TP: 11, TN: 22, FP: 33, FN: 44}
	if a != want {
		t.Errorf("Merge = %+v, want %+v", a, want)
	}
}

func TestConfusionString(t *testing.T) {
	c := Confusion{TP: 1, TN: 1}
	s := c.String()
	if !strings.Contains(s, "acc=1.0000") {
		t.Errorf("String = %q", s)
	}
}

// Property: TPR+FNR = 1 and TNR+FPR = 1 whenever the denominators exist,
// and accuracy is a TPR/TNR convex combination weighted by class sizes.
func TestConfusionRateIdentities(t *testing.T) {
	f := func(tp, tn, fp, fn uint8) bool {
		c := Confusion{TP: int(tp), TN: int(tn), FP: int(fp), FN: int(fn)}
		pos := c.TP + c.FN
		neg := c.TN + c.FP
		if pos > 0 && !almostEqual(c.TPR()+c.FNR(), 1, 1e-12) {
			return false
		}
		if neg > 0 && !almostEqual(c.TNR()+c.FPR(), 1, 1e-12) {
			return false
		}
		if pos+neg > 0 {
			want := (c.TPR()*float64(pos) + c.TNR()*float64(neg)) / float64(pos+neg)
			if !almostEqual(c.Accuracy(), want, 1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
