package stats

import (
	"math"
	"testing"

	"shmd/internal/rng"
)

// TestGammaQKnownValues checks the incomplete gamma against closed
// forms: Q(1/2, x) = erfc(sqrt(x)) and Q(1, x) = exp(-x), covering
// both the series (x < a+1) and continued-fraction (x >= a+1) paths.
func TestGammaQKnownValues(t *testing.T) {
	for _, x := range []float64{1e-6, 0.1, 0.5, 1, 2, 5, 10, 50} {
		if got, want := GammaQ(0.5, x), math.Erfc(math.Sqrt(x)); math.Abs(got-want) > 1e-12*math.Max(want, 1e-15) && math.Abs(got-want) > 1e-14 {
			t.Errorf("GammaQ(0.5, %v) = %v, want erfc = %v", x, got, want)
		}
		if got, want := GammaQ(1, x), math.Exp(-x); math.Abs(got-want) > 1e-12 {
			t.Errorf("GammaQ(1, %v) = %v, want %v", x, got, want)
		}
	}
	if GammaQ(3, 0) != 1 {
		t.Error("GammaQ(a, 0) must be 1")
	}
	if !math.IsNaN(GammaQ(-1, 1)) || !math.IsNaN(GammaQ(1, -1)) {
		t.Error("invalid arguments must return NaN")
	}
	if got := GammaP(1, 2); math.Abs(got-(1-math.Exp(-2))) > 1e-12 {
		t.Errorf("GammaP(1,2) = %v", got)
	}
}

// TestChiSquarePKnownValues pins tabulated chi-square critical points:
// P(X²_1 >= 3.841) ≈ 0.05, P(X²_5 >= 11.070) ≈ 0.05,
// P(X²_10 >= 23.209) ≈ 0.01.
func TestChiSquarePKnownValues(t *testing.T) {
	cases := []struct {
		stat float64
		df   int
		p    float64
	}{
		{3.841, 1, 0.05},
		{11.070, 5, 0.05},
		{23.209, 10, 0.01},
		{0, 4, 1},
	}
	for _, c := range cases {
		if got := ChiSquareP(c.stat, c.df); math.Abs(got-c.p) > 5e-4 {
			t.Errorf("ChiSquareP(%v, %d) = %v, want ~%v", c.stat, c.df, got, c.p)
		}
	}
}

// TestChiSquareGOF runs the full test on a perfect fit (p = 1) and on
// uniform counts drawn from a seeded RNG (p must not be tiny), and
// rejects malformed inputs.
func TestChiSquareGOF(t *testing.T) {
	obs := []float64{10, 20, 30}
	if stat, p, err := ChiSquareGOF(obs, obs); err != nil || stat != 0 || p != 1 {
		t.Errorf("perfect fit: stat=%v p=%v err=%v", stat, p, err)
	}
	if _, _, err := ChiSquareGOF([]float64{1}, []float64{1}); err == nil {
		t.Error("single bin must error")
	}
	if _, _, err := ChiSquareGOF([]float64{1, 2}, []float64{1, 0}); err == nil {
		t.Error("zero expected bin must error")
	}

	// 10k uniform draws over 8 bins: a correct sampler should not be
	// rejected at alpha far below typical p.
	r := rng.NewRand(42)
	const n, bins = 10000, 8
	observed := make([]float64, bins)
	expected := make([]float64, bins)
	for i := 0; i < n; i++ {
		observed[r.Intn(bins)]++
	}
	for i := range expected {
		expected[i] = float64(n) / bins
	}
	if _, p, err := ChiSquareGOF(observed, expected); err != nil || p < 1e-6 {
		t.Errorf("uniform sample rejected: p=%v err=%v", p, err)
	}
}

// TestPoolBins checks totals are preserved and every pooled bin meets
// the minimum expectation.
func TestPoolBins(t *testing.T) {
	obs := []float64{1, 2, 3, 4, 5, 0.5}
	exp := []float64{0.5, 1, 6, 2, 2, 0.5}
	po, pe := PoolBins(obs, exp, 5)
	var so, se, wo, we float64
	for _, v := range obs {
		wo += v
	}
	for _, v := range exp {
		we += v
	}
	for i := range pe {
		so += po[i]
		se += pe[i]
		if pe[i] < 5 {
			t.Errorf("pooled bin %d expected %v < 5", i, pe[i])
		}
	}
	if so != wo || se != we {
		t.Errorf("pooling lost mass: obs %v->%v exp %v->%v", wo, so, we, se)
	}
}

// TestKSOneSample checks the KS machinery on uniform samples against
// the uniform CDF (must accept) and against a wrong CDF (must reject).
func TestKSOneSample(t *testing.T) {
	r := rng.NewRand(7)
	samples := make([]float64, 5000)
	for i := range samples {
		samples[i] = r.Float64()
	}
	uniform := func(x float64) float64 {
		if x < 0 {
			return 0
		}
		if x > 1 {
			return 1
		}
		return x
	}
	if _, p, err := KSOneSample(samples, uniform); err != nil || p < 1e-6 {
		t.Errorf("uniform vs uniform rejected: p=%v err=%v", p, err)
	}
	skewed := func(x float64) float64 { return uniform(x) * uniform(x) }
	if _, p, err := KSOneSample(samples, skewed); err != nil || p > 1e-6 {
		t.Errorf("uniform vs x^2 accepted: p=%v err=%v", p, err)
	}
	if _, _, err := KSOneSample(nil, uniform); err == nil {
		t.Error("empty sample must error")
	}
}

// TestKolmogorovP sanity: monotone decreasing in d, bounded in [0,1].
func TestKolmogorovP(t *testing.T) {
	if KolmogorovP(0, 100) != 1 {
		t.Error("d=0 must give p=1")
	}
	prev := 1.0
	for _, d := range []float64{0.01, 0.05, 0.1, 0.2, 0.5} {
		p := KolmogorovP(d, 100)
		if p < 0 || p > prev {
			t.Errorf("KolmogorovP(%v, 100) = %v not decreasing from %v", d, p, prev)
		}
		prev = p
	}
	if p := KolmogorovP(0.5, 1000); p > 1e-12 {
		t.Errorf("huge deviation p=%v", p)
	}
}
