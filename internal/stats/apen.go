package stats

import (
	"errors"
	"math"
)

// ApproxEntropy computes the approximate entropy ApEn(m, r) of a scalar
// time series, the regularity statistic the paper uses in Section II to
// validate that undervolting-induced fault locations vary
// non-deterministically across runs ("We validated this observation
// using the approximate entropy test").
//
// m is the embedding (template) length and r the tolerance. Higher ApEn
// means less regularity / more unpredictability. A constant series has
// ApEn 0; an i.i.d. series has ApEn close to its entropy rate.
//
// The implementation follows Pincus (1991): ApEn = Phi_m - Phi_{m+1}
// with Phi_m = (1/(N-m+1)) * sum_i log(C_i^m), where C_i^m is the
// fraction of templates within Chebyshev distance r of template i
// (self-matches included, which keeps the logs finite).
func ApproxEntropy(series []float64, m int, r float64) (float64, error) {
	if m < 1 {
		return 0, errors.New("stats: ApEn embedding length must be >= 1")
	}
	if r < 0 || math.IsNaN(r) {
		return 0, errors.New("stats: ApEn tolerance must be >= 0")
	}
	if len(series) < m+2 {
		return 0, errors.New("stats: ApEn series too short for embedding length")
	}
	return phi(series, m, r) - phi(series, m+1, r), nil
}

// phi computes the Phi_m statistic used by ApproxEntropy.
func phi(series []float64, m int, r float64) float64 {
	n := len(series) - m + 1
	sum := 0.0
	for i := 0; i < n; i++ {
		matches := 0
		for j := 0; j < n; j++ {
			if chebyshevWithin(series[i:i+m], series[j:j+m], r) {
				matches++
			}
		}
		sum += math.Log(float64(matches) / float64(n))
	}
	return sum / float64(n)
}

// chebyshevWithin reports whether max_k |a[k]-b[k]| <= r.
func chebyshevWithin(a, b []float64, r float64) bool {
	for k := range a {
		if math.Abs(a[k]-b[k]) > r {
			return false
		}
	}
	return true
}

// BitSeriesApEn is a convenience wrapper that computes ApEn(m=2, r=0.2)
// over a binary fault-location indicator series, the standard NIST-style
// parameterization for randomness checks on bit streams.
func BitSeriesApEn(bits []uint8) (float64, error) {
	series := make([]float64, len(bits))
	for i, b := range bits {
		if b != 0 {
			series[i] = 1
		}
	}
	return ApproxEntropy(series, 2, 0.2)
}
