package stats

import (
	"math/rand"
	"testing"
)

func TestApproxEntropyConstantSeries(t *testing.T) {
	series := make([]float64, 64)
	got, err := ApproxEntropy(series, 2, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 0, 1e-9) {
		t.Errorf("ApEn of constant series = %v, want 0", got)
	}
}

func TestApproxEntropyPeriodicVsRandom(t *testing.T) {
	// A strictly alternating series is perfectly regular; ApEn ~ 0.
	periodic := make([]float64, 200)
	for i := range periodic {
		periodic[i] = float64(i % 2)
	}
	apPeriodic, err := ApproxEntropy(periodic, 2, 0.2)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(11))
	random := make([]float64, 200)
	for i := range random {
		random[i] = float64(rng.Intn(2))
	}
	apRandom, err := ApproxEntropy(random, 2, 0.2)
	if err != nil {
		t.Fatal(err)
	}

	if apPeriodic > 0.05 {
		t.Errorf("ApEn(periodic) = %v, want near 0", apPeriodic)
	}
	if apRandom < 0.4 {
		t.Errorf("ApEn(random bits) = %v, want clearly above periodic", apRandom)
	}
	if apRandom <= apPeriodic {
		t.Errorf("random series must look less regular: random=%v periodic=%v",
			apRandom, apPeriodic)
	}
}

func TestApproxEntropyErrors(t *testing.T) {
	if _, err := ApproxEntropy([]float64{1, 2}, 2, 0.2); err == nil {
		t.Error("short series should error")
	}
	if _, err := ApproxEntropy(make([]float64, 10), 0, 0.2); err == nil {
		t.Error("m=0 should error")
	}
	if _, err := ApproxEntropy(make([]float64, 10), 2, -1); err == nil {
		t.Error("negative tolerance should error")
	}
}

func TestBitSeriesApEn(t *testing.T) {
	bits := make([]uint8, 128)
	for i := range bits {
		bits[i] = uint8(i % 2)
	}
	ap, err := BitSeriesApEn(bits)
	if err != nil {
		t.Fatal(err)
	}
	if ap > 0.05 {
		t.Errorf("alternating bit series ApEn = %v, want near 0", ap)
	}
}
