// Package rng supplies the random-number machinery used across the
// Stochastic-HMD reproduction:
//
//   - SplitMix64, a fast splittable generator used to derive independent
//     deterministic streams for every program, fold, and repeat so that
//     experiments are exactly reproducible;
//   - the Lewis–Goodman–Miller "minimal standard" PRNG (IBM Systems
//     Journal 1969), the PRNG the paper benchmarks against a TRNG in the
//     Section VIII noise-injection overhead comparison;
//   - a simulated off-core TRNG that models the Intel DRNG's query
//     latency and energy, used only for overhead accounting.
package rng

import "math/rand"

// SplitMix64 is a tiny splittable PRNG (Steele et al., OOPSLA 2014).
// Its main job here is deriving well-decorrelated child seeds: every
// synthetic program, detector, and experiment repeat gets its own
// stream derived from a root seed, which keeps every figure exactly
// reproducible while avoiding accidental stream overlap.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a generator seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next 64-bit output.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// DeriveSeed mixes a label into the stream and returns a child seed.
// Calling it repeatedly with different labels yields independent seeds.
func DeriveSeed(root uint64, labels ...uint64) uint64 {
	s := NewSplitMix64(root)
	out := s.Next()
	for _, l := range labels {
		child := NewSplitMix64(out ^ (l * 0x9E3779B97F4A7C15))
		out = child.Next()
	}
	return out
}

// NewRand returns a math/rand generator on a derived stream. All
// simulation code receives *rand.Rand this way; nothing reads global
// rand state, so tests and figures never interfere with each other.
func NewRand(root uint64, labels ...uint64) *rand.Rand {
	return rand.New(rand.NewSource(int64(DeriveSeed(root, labels...))))
}

// NewSource64 returns the raw source behind NewRand with the same
// derivation: rand.New(NewSource64(root, labels...)) draws the stream
// NewRand(root, labels...) would. Hot samplers (the batch fault
// planner) take the source directly to skip the *rand.Rand call
// wrapper on their fused per-fault draws.
func NewSource64(root uint64, labels ...uint64) rand.Source64 {
	src := rand.NewSource(int64(DeriveSeed(root, labels...)))
	if s64, ok := src.(rand.Source64); ok {
		return s64
	}
	// math/rand's source has implemented Source64 since Go 1.8; if that
	// ever changes, fall back to the exact expansion rand.Rand.Uint64
	// uses for non-64-bit sources so streams stay identical.
	return int63Source{src}
}

// int63Source lifts a Source to Source64 with the same two-Int63
// expansion math/rand uses internally.
type int63Source struct{ rand.Source }

func (s int63Source) Uint64() uint64 {
	return uint64(s.Int63())>>31 | uint64(s.Int63())<<32
}
