package rng

import (
	"testing"
	"testing/quick"
)

func TestSplitMix64Deterministic(t *testing.T) {
	a := NewSplitMix64(42)
	b := NewSplitMix64(42)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference outputs for seed 0 from the SplitMix64 reference
	// implementation (Vigna).
	g := NewSplitMix64(0)
	want := []uint64{
		0xE220A8397B1DCDAF,
		0x6E789E6AA1B965F4,
		0x06C45D188009454F,
	}
	for i, w := range want {
		if got := g.Next(); got != w {
			t.Errorf("output %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestDeriveSeedIndependence(t *testing.T) {
	seen := map[uint64]bool{}
	for label := uint64(0); label < 1000; label++ {
		s := DeriveSeed(1, label)
		if seen[s] {
			t.Fatalf("seed collision at label %d", label)
		}
		seen[s] = true
	}
	if DeriveSeed(1, 2, 3) == DeriveSeed(1, 3, 2) {
		t.Error("label order must matter")
	}
	if DeriveSeed(1, 2) == DeriveSeed(2, 2) {
		t.Error("root seed must matter")
	}
}

func TestNewRandDeterministic(t *testing.T) {
	a := NewRand(9, 1)
	b := NewRand(9, 1)
	c := NewRand(9, 2)
	same, diff := true, false
	for i := 0; i < 32; i++ {
		av := a.Uint64()
		if av != b.Uint64() {
			same = false
		}
		if av != c.Uint64() {
			diff = true
		}
	}
	if !same {
		t.Error("same labels must give identical streams")
	}
	if !diff {
		t.Error("different labels must give different streams")
	}
}

func TestLGMSequence(t *testing.T) {
	// The minimal-standard generator has the classic check value:
	// starting from 1, the 10000th output is 1043618065 (Park & Miller).
	g := NewLGM(1)
	var v int64
	for i := 0; i < 10000; i++ {
		v = g.Next()
	}
	if v != 1043618065 {
		t.Fatalf("10000th LGM output = %d, want 1043618065", v)
	}
}

func TestLGMSeedNormalization(t *testing.T) {
	if NewLGM(0).state != 1 {
		t.Error("zero seed must be remapped to 1")
	}
	if s := NewLGM(-5).state; s <= 0 || s >= lgmModulus {
		t.Errorf("negative seed normalized to %d, want in [1, m-1]", s)
	}
	if s := NewLGM(lgmModulus).state; s != 1 {
		t.Errorf("seed == modulus normalized to %d, want 1", s)
	}
}

func TestLGMRange(t *testing.T) {
	f := func(seed int64) bool {
		g := NewLGM(seed)
		for i := 0; i < 50; i++ {
			v := g.Next()
			if v < 1 || v >= lgmModulus {
				return false
			}
			f := g.Float64()
			if f <= 0 || f >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLGMNoiseBit(t *testing.T) {
	g := NewLGM(123)
	pos, neg := 0, 0
	for i := 0; i < 1000; i++ {
		switch g.NoiseBit() {
		case 1:
			pos++
		case -1:
			neg++
		default:
			t.Fatal("NoiseBit outside {-1,+1}")
		}
	}
	if pos < 400 || neg < 400 {
		t.Errorf("noise bits badly unbalanced: +%d -%d", pos, neg)
	}
}

func TestTRNGAccounting(t *testing.T) {
	tr := NewTRNG(5)
	if tr.Queries() != 0 {
		t.Fatal("fresh TRNG must have 0 queries")
	}
	for i := 0; i < 10; i++ {
		tr.Next()
	}
	tr.NoiseBit()
	if tr.Queries() != 11 {
		t.Errorf("Queries = %d, want 11", tr.Queries())
	}
	if got := tr.TotalLatency(); got != 11*DefaultTRNGLatency {
		t.Errorf("TotalLatency = %v", got)
	}
	if got := tr.TotalEnergyNJ(); got != 11*DefaultTRNGEnergyNJ {
		t.Errorf("TotalEnergyNJ = %v", got)
	}
}

func TestTRNGDeterministicStream(t *testing.T) {
	a, b := NewTRNG(7), NewTRNG(7)
	for i := 0; i < 20; i++ {
		if a.Next() != b.Next() {
			t.Fatal("TRNG model must be reproducible for tests")
		}
	}
}
