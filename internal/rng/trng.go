package rng

import "time"

// TRNG models Intel's digital random number generator (DRNG): a true
// random number generator implemented as a shared off-core block that
// every core reaches over the uncore fabric. The paper's Section VIII
// comparison charges one TRNG query per MAC operation for the
// noise-injection defense; what matters for that comparison is the
// per-query latency and energy, not the entropy itself, so this model
// produces deterministic pseudo-random values while accounting for the
// cost a real DRNG query would incur.
//
// Cost constants follow Intel's DRNG implementation guide: RDRAND has a
// measured latency of roughly 460 core cycles under contention, far
// slower than on-core arithmetic, because the request crosses the
// uncore to the shared entropy source.
type TRNG struct {
	src *SplitMix64

	// QueryLatency is the modeled per-query latency.
	QueryLatency time.Duration
	// QueryEnergyNJ is the modeled per-query energy in nanojoules.
	QueryEnergyNJ float64

	queries uint64
}

// Default DRNG query costs at 2.2 GHz (the characterization frequency):
// ~460 cycles ≈ 209 ns, and roughly 25 nJ per off-core round trip.
const (
	DefaultTRNGLatency  = 209 * time.Nanosecond
	DefaultTRNGEnergyNJ = 25.0
)

// NewTRNG returns a simulated TRNG with the default cost model.
func NewTRNG(seed uint64) *TRNG {
	return &TRNG{
		src:           NewSplitMix64(seed),
		QueryLatency:  DefaultTRNGLatency,
		QueryEnergyNJ: DefaultTRNGEnergyNJ,
	}
}

// Next performs one query and returns 64 random bits.
func (t *TRNG) Next() uint64 {
	t.queries++
	return t.src.Next()
}

// NoiseBit performs one query and returns a sample in {-1, +1}.
func (t *TRNG) NoiseBit() int64 {
	if t.Next()&1 == 0 {
		return -1
	}
	return 1
}

// Queries returns the number of queries issued so far.
func (t *TRNG) Queries() uint64 { return t.queries }

// TotalLatency returns the modeled cumulative query latency.
func (t *TRNG) TotalLatency() time.Duration {
	return time.Duration(t.queries) * t.QueryLatency
}

// TotalEnergyNJ returns the modeled cumulative query energy in nJ.
func (t *TRNG) TotalEnergyNJ() float64 {
	return float64(t.queries) * t.QueryEnergyNJ
}
