package rng

// LGM is the Lewis–Goodman–Miller multiplicative congruential generator
// from "A pseudo-random number generator for the System/360" (IBM
// Systems Journal, 1969) — reference [25] of the paper, which uses it as
// the PRNG in the TRNG-vs-PRNG noise-injection overhead comparison of
// Section VIII. It is the classic "minimal standard" generator:
//
//	x_{n+1} = 16807 * x_n mod (2^31 - 1)
//
// The state must stay in [1, 2^31-2]; zero is a fixed point and is
// remapped at construction.
type LGM struct {
	state int64
}

const (
	lgmMultiplier = 16807      // 7^5
	lgmModulus    = 2147483647 // 2^31 - 1, a Mersenne prime
)

// NewLGM returns a generator seeded with seed. A seed of 0 (the
// degenerate fixed point) is replaced with 1; seeds are reduced mod m.
func NewLGM(seed int64) *LGM {
	s := seed % lgmModulus
	if s < 0 {
		s += lgmModulus
	}
	if s == 0 {
		s = 1
	}
	return &LGM{state: s}
}

// Next advances the generator and returns a value in [1, 2^31-2].
func (g *LGM) Next() int64 {
	g.state = (g.state * lgmMultiplier) % lgmModulus
	return g.state
}

// Float64 returns a uniform value in (0, 1).
func (g *LGM) Float64() float64 {
	return float64(g.Next()) / float64(lgmModulus)
}

// NoiseBit returns one centered noise sample in {-1, +1}, the form the
// per-MAC noise-injection defense consumes.
func (g *LGM) NoiseBit() int64 {
	if g.Next()&1 == 0 {
		return -1
	}
	return 1
}
